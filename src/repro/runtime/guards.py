"""Run guards: bounded, honest reconciliation runs.

The iterate loop of :class:`~repro.core.engine.Reconciler` is a
fixpoint computation whose cost depends on the data; on adversarial or
merely huge corpora it can run long past any operational budget. A
:class:`RunGuard` is checked once per loop iteration and enforces

* a wall-clock **deadline**,
* a **recomputation budget** (the same unit as
  ``EngineConfig.max_recomputations``, but trip-recorded),
* **growth ceilings** on the active queue and the pair-node count
  (runaway propagation / node creation).

Every trip is recorded as a structured :class:`DegradationEvent` and
raised as a typed exception (:class:`BudgetExceeded` /
:class:`DeadlineExceeded`); the engine turns the trip into a partial —
but honest — :class:`~repro.core.result.ReconciliationResult` whose
``stop_reason`` and ``degradations`` say exactly what was cut short.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

from .errors import BudgetExceeded, DeadlineExceeded

__all__ = ["DegradationEvent", "RunGuard"]


@dataclass(frozen=True)
class DegradationEvent:
    """One recorded instance of the run degrading from the ideal.

    ``kind`` is a stable machine-readable tag: ``"deadline"``,
    ``"budget"``, ``"queue_ceiling"``, ``"graph_ceiling"``,
    ``"weak_fanout"`` (build-time weak-edge pruning), ``"fallback"``
    (baseline substitution by the resilient wrapper),
    ``"parallel_fallback"`` (the build lost its worker pool and ran
    serially), or one of the supervised-execution kinds —
    ``"task_retry"``, ``"task_timeout"``, ``"pool_rebuild"``,
    ``"pair_poisoned"`` (see :mod:`repro.runtime.supervisor` and the
    "Degradation taxonomy" table in DESIGN.md).
    """

    kind: str
    detail: str
    recomputations: int = 0
    elapsed_seconds: float = 0.0


class RunGuard:
    """Limits checked inside the engine's iterate loop.

    All limits default to ``None`` (unlimited). ``clock`` is injectable
    for deterministic tests; it must be monotone.
    """

    def __init__(
        self,
        *,
        deadline_seconds: float | None = None,
        max_recomputations: int | None = None,
        max_queue_size: int | None = None,
        max_graph_nodes: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.deadline_seconds = deadline_seconds
        self.max_recomputations = max_recomputations
        self.max_queue_size = max_queue_size
        self.max_graph_nodes = max_graph_nodes
        self.events: list[DegradationEvent] = []
        self._clock = clock
        self._started: float | None = None

    def start(self) -> None:
        """Anchor the deadline; idempotent (resumed runs keep the first
        anchor of this guard instance)."""
        if self._started is None:
            self._started = self._clock()

    def elapsed(self) -> float:
        if self._started is None:
            return 0.0
        return self._clock() - self._started

    def _trip(self, exc_class, kind: str, detail: str, recomputations: int):
        event = DegradationEvent(
            kind=kind,
            detail=detail,
            recomputations=recomputations,
            elapsed_seconds=self.elapsed(),
        )
        self.events.append(event)
        raise exc_class(detail, event=event)

    def check(
        self,
        *,
        recomputations: int = 0,
        queue_size: int = 0,
        graph_nodes: int = 0,
    ) -> None:
        """Raise a typed error if any limit is exceeded; no-op otherwise."""
        if self._started is None:
            self.start()
        if (
            self.deadline_seconds is not None
            and self.elapsed() >= self.deadline_seconds
        ):
            self._trip(
                DeadlineExceeded,
                "deadline",
                f"wall-clock deadline of {self.deadline_seconds}s exceeded "
                f"after {recomputations} recomputations",
                recomputations,
            )
        if (
            self.max_recomputations is not None
            and recomputations >= self.max_recomputations
        ):
            self._trip(
                BudgetExceeded,
                "budget",
                f"recomputation budget of {self.max_recomputations} exhausted "
                f"with {queue_size} nodes still queued",
                recomputations,
            )
        if self.max_queue_size is not None and queue_size > self.max_queue_size:
            self._trip(
                BudgetExceeded,
                "queue_ceiling",
                f"active queue grew to {queue_size} keys "
                f"(ceiling {self.max_queue_size})",
                recomputations,
            )
        if self.max_graph_nodes is not None and graph_nodes > self.max_graph_nodes:
            self._trip(
                BudgetExceeded,
                "graph_ceiling",
                f"dependency graph grew to {graph_nodes} pair nodes "
                f"(ceiling {self.max_graph_nodes})",
                recomputations,
            )
