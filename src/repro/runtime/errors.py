"""The runtime error taxonomy.

Every failure mode the reconciliation runtime can surface is a typed
:class:`ReproError` subclass, so callers can distinguish "the data is
bad" (:class:`DataError`) from "the run hit a resource ceiling"
(:class:`BudgetExceeded` / :class:`DeadlineExceeded`) from "a saved
state is unusable" (:class:`CheckpointError`) — and handle each
differently (fail fast, degrade gracefully, fall back to an older
checkpoint). Bare ``KeyError`` / ``IndexError`` /
``json.JSONDecodeError`` escapes from ``core/`` and ``datasets/`` are
considered bugs.

This module is deliberately import-free (stdlib only, no ``repro``
imports): ``repro.core`` itself raises these types, so anything heavier
would be a circular import.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DataError",
    "QueueEmpty",
    "GuardTripped",
    "BudgetExceeded",
    "DeadlineExceeded",
    "CheckpointError",
    "InjectedFault",
]


class ReproError(Exception):
    """Base class of every typed error raised by the runtime."""


class DataError(ReproError):
    """A record or file could not be parsed or validated.

    Carries the offending file ``path`` and 1-based ``line`` number
    whenever they are known, so a strict loader failure names exactly
    the record that killed it.
    """

    def __init__(
        self, reason: str, *, path: str | None = None, line: int | None = None
    ) -> None:
        self.reason = reason
        self.path = str(path) if path is not None else None
        self.line = line
        location = ""
        if self.path is not None:
            location = self.path if line is None else f"{self.path}:{line}"
            location += ": "
        elif line is not None:
            location = f"line {line}: "
        super().__init__(location + reason)


class QueueEmpty(ReproError):
    """Popping an active queue that holds no live keys."""


class GuardTripped(ReproError):
    """A :class:`~repro.runtime.guards.RunGuard` limit was hit.

    ``event`` holds the structured
    :class:`~repro.runtime.guards.DegradationEvent` describing the trip.
    """

    def __init__(self, message: str, *, event=None) -> None:
        super().__init__(message)
        self.event = event


class BudgetExceeded(GuardTripped):
    """A work budget (recomputations, queue size, graph size) ran out."""


class DeadlineExceeded(GuardTripped):
    """The wall-clock deadline of the run passed."""


class CheckpointError(ReproError):
    """A checkpoint could not be written, read, or trusted (bad
    checksum, wrong version, mismatched configuration)."""


class InjectedFault(ReproError):
    """A deliberate failure raised by the fault-injection harness."""
