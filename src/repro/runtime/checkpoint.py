"""Checkpoint / resume for the reconciliation engine.

A checkpoint is one JSON document::

    {"version": 1, "checksum": "<sha256 of canonical payload>", "payload": {...}}

where the payload captures the *complete* mutable engine state at an
iterate-step boundary: union-find parents/sizes/enemies, the active
queue in pop order, every pair node with its scores, statuses, edges
and value evidence, the alias table from enrichment fusion, cluster
membership, and the run counters. Restoring it into a fresh
:class:`~repro.core.engine.Reconciler` (over the same store, domain and
configuration) therefore continues the run exactly where it stopped,
and — because iteration is deterministic — converges to the same
partition an uninterrupted run produces.

Writes are atomic: the document goes to a temporary file in the target
directory, is fsynced, then renamed over the previous checkpoint, so a
crash mid-write can never corrupt the last good checkpoint. Reads
verify the checksum and raise a typed :class:`CheckpointError` on any
damage.

Telemetry is deliberately *absent* from checkpoints: nothing the
:mod:`repro.obs` sinks produce (event timestamps, span ids, decision
sequence numbers) enters :func:`engine_state` or
:func:`config_fingerprint`, so a run checkpointed with telemetry on
resumes cleanly with it off (and vice versa), and byte-identical
engine state fingerprints identically regardless of observability.
File-backed sinks open in append mode, so a resumed run continues the
original run's event log and audit trail coherently.

Convergence samples (:attr:`EngineStats.convergence_samples`, feeding
the run manifest) are *engine* state, not telemetry: they ride through
checkpoints inside the stats dict, and because sampling is keyed by
the checkpointed recomputation counter — never steps or wall-clock —
a resumed run reproduces an uninterrupted run's samples exactly. That
is what lets ``run.json`` manifests satisfy their invariance contract
(:func:`repro.obs.manifest.invariant_view`) across interruptions.
Checkpoints written before the field existed restore with an empty
sample list (the dataclass default), so old checkpoint files stay
loadable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

from ..core.engine import EngineStats, Reconciler
from ..core.graph import DependencyGraph
from ..core.partition import UnionFind
from ..core.queue import ActiveQueue
from .errors import CheckpointError
from .fsutil import atomic_write_text
from .guards import DegradationEvent

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpointer",
    "config_fingerprint",
    "engine_state",
    "load_checkpoint",
    "restore_engine",
    "save_checkpoint",
]

CHECKPOINT_VERSION = 1


def config_fingerprint(config) -> dict:
    """Canonical form of an EngineConfig, for mismatch detection."""
    return {
        "propagate": config.propagate,
        "enrich": config.enrich,
        "constraints": config.constraints,
        "premerge_keys": config.premerge_keys,
        "epsilon": config.epsilon,
        "disabled_channels": sorted(config.disabled_channels),
        "disabled_strong": sorted(list(pair) for pair in config.disabled_strong),
        "disabled_weak": sorted(config.disabled_weak),
        "max_recomputations": config.max_recomputations,
        "max_block_size": config.max_block_size,
        "strong_to_front": config.strong_to_front,
    }


def engine_state(engine: Reconciler) -> dict:
    """Snapshot every piece of mutable engine state as JSON-ready data."""
    return {
        "config": config_fingerprint(engine.config),
        "built": engine._built,
        "stop_reason": engine.stop_reason,
        "uf": engine.uf.state_dict(),
        "queue": engine.queue.snapshot(),
        "graph": engine.graph.snapshot(),
        "members": {
            root: list(members) for root, members in engine._members.items()
        },
        "stats": asdict(engine.stats),
    }


def restore_engine(engine: Reconciler, state: dict) -> None:
    """Load *state* (from :func:`load_checkpoint`) into *engine*.

    The engine must be freshly constructed over the same store, domain
    and configuration as the checkpointed run; a configuration mismatch
    raises :class:`CheckpointError` because resuming under different
    switches would silently change the semantics of already-taken
    decisions.
    """
    fingerprint = config_fingerprint(engine.config)
    if state["config"] != fingerprint:
        raise CheckpointError(
            "checkpoint was written under a different engine configuration; "
            "resume with the original config"
        )
    engine.uf = UnionFind.from_state_dict(state["uf"])
    engine.queue = ActiveQueue.from_snapshot(state["queue"])
    engine.graph = DependencyGraph.from_snapshot(state["graph"])
    stats_data = dict(state["stats"])
    stats_data["degradations"] = [
        DegradationEvent(**event) for event in stats_data.get("degradations", [])
    ]
    engine.stats = EngineStats(**stats_data)
    engine._members = {
        root: list(members) for root, members in state["members"].items()
    }
    engine._values_cache = {}
    engine._contacts_cache = {}
    engine._contacts_rdeps = {}
    engine._pair_score_memo = {}
    # The restored union-find is a fresh object: re-attach the engine's
    # cache-invalidation listener (listeners are runtime state and are
    # deliberately not serialised).
    engine.uf.add_union_listener(engine._invalidate_contacts)
    engine.stop_reason = state.get("stop_reason", "converged")
    engine._built = state["built"]
    engine._per_class_nodes = {}
    for node in engine.graph.nodes():
        engine._per_class_nodes.setdefault(node.class_name, []).append(node)
    _rebuild_block_indexes(engine)


def _rebuild_block_indexes(engine: Reconciler) -> None:
    """Re-derive the per-class blocking indexes from the store.

    The indexes only matter for incremental adds after the resume;
    they are keyed by the *current* cluster roots (the original run
    keyed them by pre-iterate roots), which `IncrementalReconciler`
    already tolerates by re-resolving roots on every candidate pair.
    """
    from ..core.blocking import BlockingIndex

    for class_name in engine.domain.class_order():
        index = BlockingIndex(max_block_size=engine.config.max_block_size)
        for reference in engine.store.of_class(class_name):
            index.add(
                engine._elem(reference.ref_id),
                engine.domain.blocking_keys(reference),
            )
        engine._block_indexes[class_name] = index


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def save_checkpoint(engine: Reconciler, path: str | Path) -> Path:
    """Atomically write *engine*'s state to *path*; returns the path."""
    path = Path(path)
    payload = engine_state(engine)
    body = _canonical(payload)
    document = _canonical(
        {
            "version": CHECKPOINT_VERSION,
            "checksum": hashlib.sha256(body.encode()).hexdigest(),
            "payload": json.loads(body),
        }
    )
    return atomic_write_text(path, document)


def load_checkpoint(path: str | Path) -> dict:
    """Read and verify a checkpoint; returns its payload.

    Raises :class:`CheckpointError` for anything untrustworthy: missing
    or unreadable file, invalid JSON, a version from a different code
    generation, or a checksum mismatch (truncated / bit-flipped file).
    """
    path = Path(path)
    try:
        text = path.read_text()
    except (OSError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path} is not valid JSON (corrupt or truncated): {exc}"
        ) from exc
    if (
        not isinstance(document, dict)
        or "payload" not in document
        or "checksum" not in document
    ):
        raise CheckpointError(f"checkpoint {path} is missing its envelope")
    if document.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {document.get('version')!r}, "
            f"expected {CHECKPOINT_VERSION}"
        )
    body = _canonical(document["payload"])
    if hashlib.sha256(body.encode()).hexdigest() != document["checksum"]:
        raise CheckpointError(
            f"checkpoint {path} failed its checksum (corrupt or truncated)"
        )
    return document["payload"]


class Checkpointer:
    """Periodic checkpoint writer handed to :meth:`Reconciler.run`.

    Saves to ``<directory>/<filename>`` every ``every`` iterate steps
    (including step 0, so even a run killed on its first step leaves a
    resumable checkpoint behind). Each save atomically replaces the
    previous one.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        every: int = 200,
        filename: str = "checkpoint.json",
    ) -> None:
        self.directory = Path(directory)
        self.every = max(1, int(every))
        self.path = self.directory / filename
        self.saves = 0

    def maybe_save(self, engine: Reconciler, step: int) -> Path | None:
        if step % self.every == 0:
            return self.save(engine)
        return None

    def save(self, engine: Reconciler) -> Path:
        save_checkpoint(engine, self.path)
        self.saves += 1
        return self.path
