"""Fault-tolerant reconciliation runtime.

Five parts make every run bounded, interruptible, resumable and honest
about degradation:

* :mod:`~repro.runtime.errors` — the typed exception taxonomy
  (:class:`ReproError` and friends),
* :mod:`~repro.runtime.guards` — :class:`RunGuard` deadline / budget /
  growth ceilings and :class:`DegradationEvent`,
* :mod:`~repro.runtime.checkpoint` — atomic, checksummed engine-state
  checkpoints and :class:`Checkpointer`,
* :mod:`~repro.runtime.degrade` — :class:`ResilientReconciler`, the
  guard-and-fall-back wrapper,
* :mod:`~repro.runtime.supervisor` — :class:`SupervisedScorer`, the
  retrying / bisecting / ladder-degrading wrapper around parallel
  scoring (plus :class:`RetryPolicy`),
* :mod:`~repro.runtime.fsutil` — :func:`atomic_write_text`, the
  crash-safe write primitive shared by checkpoints, quarantine files
  and poisoned-pair logs,
* :mod:`~repro.runtime.faults` — the deterministic fault-injection
  harness (including :class:`ChaosInjector`) used by the tests, the
  CI smoke jobs and the chaos soak harness.

Only the error taxonomy is imported eagerly: ``repro.core`` raises
these types itself, so the heavier modules (which import ``repro.core``
back) load lazily on first attribute access.
"""

from .errors import (
    BudgetExceeded,
    CheckpointError,
    DataError,
    DeadlineExceeded,
    GuardTripped,
    InjectedFault,
    QueueEmpty,
    ReproError,
)

_LAZY = {
    "DegradationEvent": "guards",
    "RunGuard": "guards",
    "CHECKPOINT_VERSION": "checkpoint",
    "Checkpointer": "checkpoint",
    "config_fingerprint": "checkpoint",
    "engine_state": "checkpoint",
    "load_checkpoint": "checkpoint",
    "restore_engine": "checkpoint",
    "save_checkpoint": "checkpoint",
    "ResilientReconciler": "degrade",
    "ChaosInjector": "faults",
    "CrashAtStep": "faults",
    "corrupt_checkpoint": "faults",
    "inject_malformed_lines": "faults",
    "atomic_write_text": "fsutil",
    "RetryPolicy": "supervisor",
    "SupervisedScorer": "supervisor",
}

__all__ = [
    "ReproError",
    "DataError",
    "QueueEmpty",
    "GuardTripped",
    "BudgetExceeded",
    "DeadlineExceeded",
    "CheckpointError",
    "InjectedFault",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(f".{module_name}", __name__), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
