"""Deterministic fault injection for exercising the recovery paths.

Four injectors, all seeded or deterministic so failures replay exactly:

* :class:`CrashAtStep` — a ``step_hook`` for
  :meth:`Reconciler.run` that raises :class:`InjectedFault` at a chosen
  iterate step, simulating a mid-run crash (the checkpoint on disk is
  whatever the checkpointer last wrote).
* :func:`corrupt_checkpoint` — flips bytes of a checkpoint file in
  place, so tests can prove :func:`load_checkpoint` refuses damaged
  state with a :class:`CheckpointError` instead of resuming from garbage.
* :func:`inject_malformed_lines` — corrupts a sample of a JSONL file's
  lines (invalid JSON, missing keys, truncation), the input for the
  strict-fails-fast / lenient-quarantines ingestion tests.
* :class:`ChaosInjector` — build-time chaos for the supervised scorer:
  kill a worker at its Nth chunk, hang it for a duration, or raise
  deterministically when a chosen pair is scored (a "comparator bug").
  Installed via ``Reconciler.chaos`` / the scorer's ``chaos`` argument.

Nothing here is imported by production code paths; the chaos objects
only act when a test or the soak harness explicitly installs them, so
the suite (and the CI smoke jobs) can prove every recovery path works.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import signal
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from .errors import CheckpointError, InjectedFault

__all__ = [
    "ChaosInjector",
    "CrashAtStep",
    "corrupt_checkpoint",
    "inject_malformed_lines",
]


@dataclass
class CrashAtStep:
    """Step hook raising :class:`InjectedFault` at iterate step *step*.

    Fires at most once, so the same instance can be left installed on a
    resumed run to prove the resume survives.
    """

    step: int
    fired: bool = field(default=False, init=False)

    def __call__(self, engine, step: int) -> None:
        if not self.fired and step >= self.step:
            self.fired = True
            raise InjectedFault(f"injected crash at iterate step {step}")


#: True only inside a raw-forked iterate worker (set by the child right
#: after fork). Lets ``before_chunk`` tell such children apart from the
#: parent, which multiprocessing's parentage check cannot.
_FORKED_WORKER = False


def mark_forked_worker() -> None:
    """Record that this process is a forked iterate worker; kill/hang
    chaos families may fire here, never in the parent."""
    global _FORKED_WORKER
    _FORKED_WORKER = True


@dataclass(frozen=True)
class ChaosInjector:
    """Deterministic build-time chaos for the supervised scorer.

    The scorer's workers call ``before_chunk(class_name, pairs,
    chunk_index)`` before scoring each chunk (``chunk_index`` is the
    *worker-local* 0-based chunk counter; the serial fallback passes
    ``-1`` with one pair at a time). Three fault families:

    * **kill** — the worker SIGKILLs itself at its ``kill_at_chunk``-th
      chunk, surfacing as ``BrokenProcessPool`` in the parent;
    * **hang** — the worker sleeps ``hang_seconds`` at its
      ``hang_at_chunk``-th chunk, tripping the per-task deadline;
    * **raise** — :class:`InjectedFault` whenever the chunk contains a
      pair in ``raise_pairs`` (order-insensitive) or whose
      ``crc32("l|r") % raise_pair_crc_mod == raise_pair_crc_rem`` — a
      deterministic comparator bug that fails identically everywhere,
      including the serial fallback.

    Kill and hang only fire inside worker processes (never the parent)
    and, when ``marker_dir`` is set, at most once across all workers:
    the first worker to claim the marker file (``O_EXCL``) fires, so
    "crash once then recover" replays exactly. Without a marker the
    fault is persistent — every fresh worker fires again, which drives
    the scorer down its full degradation ladder.

    The speculative iterate executor reuses the same seam under the
    pseudo class name ``__iterate__``: each forked iterate child calls
    ``before_chunk`` once, with the parent's monotone submission index.
    Because every child sees exactly one chunk, ``kill_every`` (kill
    when ``chunk_index % kill_every == 0``) expresses persistent kills
    there — ``kill_at_chunk`` alone would fire once and let the retry
    (a fresh index) through.

    Frozen and built from plain values, so it pickles into workers.
    """

    kill_at_chunk: int | None = None
    kill_every: int | None = None
    hang_at_chunk: int | None = None
    hang_seconds: float = 30.0
    raise_pairs: tuple = ()
    raise_pair_crc_mod: int | None = None
    raise_pair_crc_rem: int = 0
    marker_dir: str | None = None
    #: shard-runner faults: SIGKILL the engine process of shard N
    #: (child processes only), or raise :class:`InjectedFault` before
    #: shard N runs (any process). Both marker-claimed, so they fire at
    #: most once and the supervisor ladder's retry goes through.
    shard_kill: int | None = None
    shard_raise: int | None = None

    def _claim(self, name: str) -> bool:
        if self.marker_dir is None:
            return True
        try:
            fd = os.open(
                os.path.join(self.marker_dir, name),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def _raises_on(self, left: str, right: str) -> bool:
        key = tuple(sorted((str(left), str(right))))
        for pair in self.raise_pairs:
            if tuple(sorted((str(pair[0]), str(pair[1])))) == key:
                return True
        if self.raise_pair_crc_mod:
            digest = zlib.crc32(f"{key[0]}|{key[1]}".encode())
            return digest % self.raise_pair_crc_mod == self.raise_pair_crc_rem
        return False

    def before_shard(self, shard_index: int, *, in_child: bool) -> None:
        """Shard-runner seam, consulted before a shard engine runs.

        ``shard_kill`` fires only inside a shard child process (the
        in-parent serial rung must always survive); ``shard_raise``
        fires wherever the shard is about to run — the runner's retry
        ladder is what recovers."""
        if (
            self.shard_kill is not None
            and shard_index == self.shard_kill
            and in_child
            and self._claim(f"shard_kill_{shard_index}")
        ):
            os.kill(os.getpid(), signal.SIGKILL)
        if (
            self.shard_raise is not None
            and shard_index == self.shard_raise
            and self._claim(f"shard_raise_{shard_index}")
        ):
            raise InjectedFault(f"injected shard fault for shard {shard_index}")

    def before_chunk(self, class_name: str, pairs, chunk_index: int) -> None:
        # Iterate children are raw os.fork() processes, invisible to
        # multiprocessing's parentage check — they announce themselves
        # via mark_forked_worker() instead.
        in_worker = _FORKED_WORKER or multiprocessing.parent_process() is not None
        if (
            in_worker
            and self.kill_at_chunk is not None
            and chunk_index == self.kill_at_chunk
            and self._claim("kill")
        ):
            # Claim the marker *before* dying or it would never stick.
            os.kill(os.getpid(), signal.SIGKILL)
        if (
            in_worker
            and self.kill_every is not None
            and chunk_index >= 0
            and chunk_index % self.kill_every == 0
        ):
            # Deliberately marker-free: persistent by construction.
            os.kill(os.getpid(), signal.SIGKILL)
        if (
            in_worker
            and self.hang_at_chunk is not None
            and chunk_index == self.hang_at_chunk
            and self._claim("hang")
        ):
            time.sleep(self.hang_seconds)
        for left, right in pairs:
            if self._raises_on(left, right):
                raise InjectedFault(
                    f"injected comparator fault for pair {left}|{right} "
                    f"({class_name})"
                )


def corrupt_checkpoint(path: str | Path, *, seed: int = 0, flips: int = 8) -> Path:
    """Deterministically flip *flips* bytes of the file at *path*."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise CheckpointError(f"cannot corrupt empty checkpoint {path}")
    rng = random.Random(seed)
    for _ in range(max(1, flips)):
        data[rng.randrange(len(data))] ^= 0xFF
    path.write_bytes(bytes(data))
    return path


def inject_malformed_lines(
    path: str | Path, *, rate: float = 0.05, seed: int = 0
) -> list[int]:
    """Corrupt roughly *rate* of the JSONL lines at *path* in place.

    Each corrupted line gets one of three deterministic defects:
    truncation (invalid JSON), a dropped ``"id"`` key (schema
    violation), or outright garbage. Returns the 1-based numbers of the
    corrupted lines; at least one line is always corrupted.
    """
    path = Path(path)
    rng = random.Random(seed)
    lines = path.read_text().splitlines()
    candidates = [i for i, line in enumerate(lines) if line.strip()]
    if not candidates:
        return []
    chosen = [i for i in candidates if rng.random() < rate]
    if not chosen:
        chosen = [rng.choice(candidates)]
    for index in chosen:
        line = lines[index]
        mode = rng.choice(("truncate", "drop_id", "garbage"))
        if mode == "truncate":
            lines[index] = line[: max(1, len(line) // 2)]
        elif mode == "drop_id":
            record = json.loads(line)
            record.pop("id", None)
            lines[index] = json.dumps(record)
        else:
            lines[index] = "%% not json %%"
    path.write_text("\n".join(lines) + "\n")
    return [index + 1 for index in chosen]
