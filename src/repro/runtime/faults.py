"""Deterministic fault injection for exercising the recovery paths.

Three injectors, all seeded so failures replay exactly:

* :class:`CrashAtStep` — a ``step_hook`` for
  :meth:`Reconciler.run` that raises :class:`InjectedFault` at a chosen
  iterate step, simulating a mid-run crash (the checkpoint on disk is
  whatever the checkpointer last wrote).
* :func:`corrupt_checkpoint` — flips bytes of a checkpoint file in
  place, so tests can prove :func:`load_checkpoint` refuses damaged
  state with a :class:`CheckpointError` instead of resuming from garbage.
* :func:`inject_malformed_lines` — corrupts a sample of a JSONL file's
  lines (invalid JSON, missing keys, truncation), the input for the
  strict-fails-fast / lenient-quarantines ingestion tests.

Nothing here is imported by production code paths; it exists so the
test suite (and the CI smoke job) can prove every recovery path works.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path

from .errors import CheckpointError, InjectedFault

__all__ = ["CrashAtStep", "corrupt_checkpoint", "inject_malformed_lines"]


@dataclass
class CrashAtStep:
    """Step hook raising :class:`InjectedFault` at iterate step *step*.

    Fires at most once, so the same instance can be left installed on a
    resumed run to prove the resume survives.
    """

    step: int
    fired: bool = field(default=False, init=False)

    def __call__(self, engine, step: int) -> None:
        if not self.fired and step >= self.step:
            self.fired = True
            raise InjectedFault(f"injected crash at iterate step {step}")


def corrupt_checkpoint(path: str | Path, *, seed: int = 0, flips: int = 8) -> Path:
    """Deterministically flip *flips* bytes of the file at *path*."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise CheckpointError(f"cannot corrupt empty checkpoint {path}")
    rng = random.Random(seed)
    for _ in range(max(1, flips)):
        data[rng.randrange(len(data))] ^= 0xFF
    path.write_bytes(bytes(data))
    return path


def inject_malformed_lines(
    path: str | Path, *, rate: float = 0.05, seed: int = 0
) -> list[int]:
    """Corrupt roughly *rate* of the JSONL lines at *path* in place.

    Each corrupted line gets one of three deterministic defects:
    truncation (invalid JSON), a dropped ``"id"`` key (schema
    violation), or outright garbage. Returns the 1-based numbers of the
    corrupted lines; at least one line is always corrupted.
    """
    path = Path(path)
    rng = random.Random(seed)
    lines = path.read_text().splitlines()
    candidates = [i for i, line in enumerate(lines) if line.strip()]
    if not candidates:
        return []
    chosen = [i for i in candidates if rng.random() < rate]
    if not chosen:
        chosen = [rng.choice(candidates)]
    for index in chosen:
        line = lines[index]
        mode = rng.choice(("truncate", "drop_id", "garbage"))
        if mode == "truncate":
            lines[index] = line[: max(1, len(line) // 2)]
        elif mode == "drop_id":
            record = json.loads(line)
            record.pop("id", None)
            lines[index] = json.dumps(record)
        else:
            lines[index] = "%% not json %%"
    path.write_text("\n".join(lines) + "\n")
    return [index + 1 for index in chosen]
