"""Crash-safe filesystem primitives shared by the runtime.

One function, one contract: :func:`atomic_write_text` either leaves
the previous file contents fully intact or replaces them with the
complete new text — never a truncated hybrid. The pattern (temp file
in the destination directory, flush + fsync, ``os.replace``) is the
same one checkpoints have always used; it lives here so every durable
artifact (checkpoints, quarantine files, poisoned-pair logs) gets the
identical guarantee instead of a hand-rolled ``open(..., "w")``.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_text"]


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomically replace *path*'s contents with *text*.

    The temporary file is created in *path*'s directory so the final
    ``os.replace`` is a same-filesystem rename (atomic on POSIX). On
    any failure the temporary file is removed and the original file —
    if one existed — is untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise
    return path
