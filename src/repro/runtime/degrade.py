"""Graceful degradation: answer something honest when the run can't finish.

:class:`ResilientReconciler` wraps the engine with a
:class:`~repro.runtime.guards.RunGuard` and, when the guard trips
(budget or deadline), finalizes the *partial* partition instead of
crashing — every merge already taken is transitively closed, so the
partial answer is valid, just conservative. With
``fallback="indepdec"`` the classes that still had work queued are
re-resolved with the InDepDec baseline (single-pass, no propagation —
cheap and bounded), in the spirit of query-time entity resolution
degrading to attribute-wise matching under pressure. The result is
tagged with what degraded and why: ``completed=False``, the guard's
``stop_reason``, and a ``DegradationEvent`` per substitution.
"""

from __future__ import annotations

from ..baselines import indepdec_config
from ..core.engine import Reconciler
from ..core.model import DomainModel, EngineConfig
from ..core.references import ReferenceStore
from ..core.result import ReconciliationResult
from .errors import BudgetExceeded, DeadlineExceeded
from .guards import DegradationEvent, RunGuard

__all__ = ["ResilientReconciler"]


class ResilientReconciler:
    """Run DepGraph under guards; degrade instead of dying.

    ``fallback`` is ``"partial"`` (keep the truncated DepGraph
    partition as-is) or ``"indepdec"`` (replace the partitions of
    classes with unfinished work by the InDepDec baseline's answer).
    """

    def __init__(
        self,
        store: ReferenceStore,
        domain: DomainModel,
        config: EngineConfig | None = None,
        *,
        guard: RunGuard | None = None,
        checkpointer=None,
        fallback: str = "partial",
        telemetry=None,
    ) -> None:
        if fallback not in ("partial", "indepdec"):
            raise ValueError(f"unknown fallback {fallback!r}")
        self.store = store
        self.domain = domain
        self.config = config or EngineConfig()
        self.guard = guard
        self.checkpointer = checkpointer
        self.fallback = fallback
        self.reconciler = Reconciler(store, domain, self.config, telemetry=telemetry)

    def run(self) -> ReconciliationResult:
        engine = self.reconciler
        try:
            return engine.run(
                guard=self.guard,
                checkpointer=self.checkpointer,
                raise_on_trip=True,
            )
        except (BudgetExceeded, DeadlineExceeded):
            pass
        unresolved = self._unresolved_classes(engine)
        result = engine.partial_result()
        if self.fallback == "indepdec" and unresolved:
            baseline = Reconciler(
                self.store, self.domain, indepdec_config(self.domain)
            ).run()
            for class_name in sorted(unresolved):
                result.partitions[class_name] = baseline.partitions[class_name]
            event = DegradationEvent(
                kind="fallback",
                detail=(
                    f"classes {sorted(unresolved)} re-resolved with the "
                    f"InDepDec baseline after stop_reason="
                    f"{result.stop_reason!r}"
                ),
                recomputations=engine.stats.recomputations,
            )
            engine.stats.degradations.append(event)
            result.degradations.append(event)
            engine.telemetry.emit(
                "warning", "degradation", kind=event.kind, detail=event.detail
            )
        return result

    def _unresolved_classes(self, engine: Reconciler) -> set[str]:
        """Classes that still had live queued work when the run stopped."""
        unresolved: set[str] = set()
        for entry in engine.queue.snapshot()["entries"]:
            node = engine.graph.get_key(tuple(entry))
            if node is not None:
                unresolved.add(node.class_name)
        return unresolved
