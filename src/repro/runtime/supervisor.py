"""Supervised execution of parallel scoring: retries, deadlines,
poisoned-pair quarantine, and a degradation ladder.

:class:`~repro.perf.parallel.ParallelScorer` is fast but brittle: one
worker crash, hang, or comparator exception aborts the whole build.
:class:`SupervisedScorer` keeps the exact same interface (and the
exact same chunk boundaries, so results stay byte-identical to a
serial build) while containing every failure to the work unit that
caused it:

* each chunk of an optimistic parallel pass that fails is re-executed
  under a :class:`RetryPolicy` — exponential backoff with seeded
  jitter, a per-task deadline enforced with ``Future.result(timeout)``;
* a task timeout or ``BrokenProcessPool`` kills the pool outright
  (terminating hung workers, so nothing leaks) and rebuilds it;
* a chunk that keeps failing with an *error* or *timeout* is bisected
  until the poisoned pair is isolated; that pair is scored as
  no-merge (empty evidence), appended to ``poisoned_pairs.jsonl``
  (atomic rewrite) and recorded as a ``pair_poisoned`` degradation —
  one bad comparator input degrades one decision, never the run;
* repeated worker *crashes* walk a degradation ladder — full workers
  → halved workers → serial in-parent scoring — so even a pool that
  cannot stay alive ends in a correct (if slower) build instead of an
  escaping exception.

Retries, rebuilds, bisection and ladder descent cannot change what is
computed: comparator scores are pure functions of the shipped values,
and chunk boundaries are derived from the *configured* worker count,
never from the current ladder rung. The only way a supervised build's
output differs from a clean serial build is through poisoned pairs,
and those are reported precisely so callers (and the chaos soak
harness) can verify the damage is exactly the quarantined pairs.
"""

from __future__ import annotations

import gc
import os
import pickle
import random
import select
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path

from ..perf.parallel import (
    _init_worker,
    _score_chunk,
    domain_spec,
    iterate_chunk,
    make_chunks,
)
from ..perf.scoring import pair_evidence
from .fsutil import atomic_write_text
from .guards import DegradationEvent

__all__ = ["IterateSupervisor", "RetryPolicy", "SupervisedScorer"]


@dataclass(frozen=True)
class RetryPolicy:
    """How failed scoring tasks are retried.

    ``max_retries`` supervised re-executions are attempted per failed
    chunk before it is bisected (errors / timeouts) or the ladder
    descends (crashes). Backoff for retry *n* is
    ``min(backoff_max, backoff_base * 2**(n-1))`` stretched by up to
    ``jitter`` of itself; the jitter stream is seeded so runs replay
    exactly.
    """

    max_retries: int = 2
    task_timeout: float | None = None
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def backoff(self, attempt: int, rng: random.Random) -> float:
        base = min(self.backoff_max, self.backoff_base * (2 ** max(0, attempt - 1)))
        return base * (1.0 + self.jitter * rng.random())


class SupervisedScorer:
    """Drop-in replacement for :class:`ParallelScorer` with supervision.

    Same constructor contract: raises ``ValueError`` when the domain is
    not rebuildable in workers or ``workers < 2`` (the engine records a
    ``parallel_fallback`` degradation and runs serially). *telemetry*
    is an optional :class:`~repro.obs.telemetry.Telemetry`; *on_degrade*
    an optional callback receiving each
    :class:`~repro.runtime.guards.DegradationEvent`; *poison_path* the
    JSONL file poisoned pairs are quarantined to; *chaos* an opaque
    fault injector forwarded to workers (tests / soak harness only).
    """

    def __init__(
        self,
        domain,
        workers: int,
        policy: RetryPolicy | None = None,
        *,
        telemetry=None,
        on_degrade=None,
        poison_path: str | Path | None = None,
        chaos=None,
        relay=None,
        flight=None,
    ) -> None:
        spec = domain_spec(domain)
        if spec is None:
            raise ValueError(
                f"domain {type(domain).__qualname__} is not reconstructible "
                "in worker processes (needs a module-level class with a "
                "no-argument constructor)"
            )
        if workers < 2:
            raise ValueError("SupervisedScorer needs at least 2 workers")
        self.domain = domain
        self.workers = workers
        self.policy = policy or RetryPolicy()
        self.telemetry = telemetry
        self.on_degrade = on_degrade
        self.poison_path = Path(poison_path) if poison_path else None
        self.chaos = chaos
        # Cross-process telemetry relay (obs.relay.TelemetryRelay) or
        # None; workers record spans/counters only when it is attached.
        self._relay = relay
        # Engine flight recorder (obs.flight.FlightRecorder) or None;
        # chunk timings and pool teardowns land in its rings.
        self._flight = flight
        metrics = getattr(telemetry, "metrics", None)
        self._chunk_hist = (
            metrics.histogram(
                "repro_supervised_chunk_seconds",
                "parent-observed seconds from chunk submission to harvest",
            )
            if metrics is not None
            else None
        )
        self._spec = spec
        # Degradation ladder: full pool → halved pool → serial. Chunk
        # boundaries always use the *configured* worker count, so a
        # descent changes throughput, never results.
        self._ladder = [workers]
        half = workers // 2
        if half >= 2 and half != workers:
            self._ladder.append(half)
        self._rung = 0
        self._serial = False
        self._pool: ProcessPoolExecutor | None = None
        self._pools_built = 0
        self._rng = random.Random(self.policy.seed)
        self.counters = {
            "task_retry": 0,
            "task_timeout": 0,
            "pool_rebuild": 0,
            "pair_poisoned": 0,
        }
        #: ``{"pair": [l, r], "class": ..., "reason": ...}`` per poison.
        self.poisoned: list[dict] = []
        self._poisoned_keys: set = set()
        # Serial-fallback state: channels by (class, names) + score memo,
        # mirroring a worker's process-local state.
        self._serial_channels: dict = {}
        self._serial_memo: dict = {}

    # -- reporting ------------------------------------------------------
    @property
    def current_workers(self) -> int:
        """Workers the ladder currently grants (1 after serial descent)."""
        return 1 if self._serial else self._ladder[self._rung]

    def _emit(self, level: str, event: str, **fields) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(level, event, **fields)

    def _degrade(self, kind: str, detail: str) -> None:
        if self.on_degrade is not None:
            self.on_degrade(DegradationEvent(kind=kind, detail=detail))

    # -- pool lifecycle -------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing

            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - platform without fork
                context = multiprocessing.get_context()
            self._pool = ProcessPoolExecutor(
                max_workers=self._ladder[self._rung],
                mp_context=context,
                initializer=_init_worker,
                initargs=(self._spec, self.chaos, self._relay is not None),
            )
            self._pools_built += 1
            if self._pools_built > 1:
                self.counters["pool_rebuild"] += 1
                self._emit(
                    "warning",
                    "pool_rebuild",
                    workers=self._ladder[self._rung],
                    rebuilds=self.counters["pool_rebuild"],
                )
                self._degrade(
                    "pool_rebuild",
                    f"worker pool rebuilt with {self._ladder[self._rung]} "
                    f"workers (rebuild #{self.counters['pool_rebuild']})",
                )
        return self._pool

    def _kill_pool(self, reason: str | None = None) -> None:
        """Tear the pool down *now*, terminating hung or dead workers.

        When a *reason* is given and a relay is attached, the teardown
        is attributed to the lane(s) that caused it: workers already
        dead get the blame; if every worker is still alive (a hang),
        all of them are marked, since the hung one cannot be told apart
        from the parent.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if self._flight is not None and reason is not None:
            self._flight.note_event("pool_kill", reason=reason)
        try:
            processes = list(getattr(pool, "_processes", {}).values())
        except Exception:  # pragma: no cover - interpreter internals moved
            processes = []
        if self._relay is not None and reason is not None:
            dead = [process for process in processes if not process.is_alive()]
            for process in dead or processes:
                self._relay.lane_died(process.pid, reason)
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already reaped
                pass
        for process in processes:
            try:
                process.join(1.0)
                if process.is_alive():
                    process.kill()
                    process.join(1.0)
            except Exception:  # pragma: no cover - already reaped
                pass

    def _descend(self, reason: str) -> None:
        """Walk the ladder one rung down: fewer workers, then serial."""
        self._kill_pool(reason)
        if self._rung + 1 < len(self._ladder):
            self._rung += 1
            self._emit(
                "warning",
                "pool_rebuild",
                workers=self._ladder[self._rung],
                cause="ladder_descent",
            )
            self._degrade(
                "pool_rebuild",
                f"degraded to {self._ladder[self._rung]} workers: {reason}",
            )
        else:
            self._serial = True
            self._emit("warning", "degradation", kind="parallel_fallback", cause=reason)
            self._degrade(
                "parallel_fallback",
                f"supervised scoring degraded to serial: {reason}",
            )

    def shutdown(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "SupervisedScorer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- scoring --------------------------------------------------------
    def score(
        self,
        class_name: str,
        channel_names: tuple[str, ...],
        pairs: list[tuple[str, str]],
        values: dict[str, dict[str, tuple[str, ...]]],
    ) -> list[list[tuple[str, str, str, float]]]:
        """Evidence lists for *pairs*, in order; never raises for
        worker crashes, hangs, or comparator exceptions."""
        if not pairs:
            return []
        chunk_count = min(len(pairs), self.workers * 4)
        chunks = make_chunks(class_name, channel_names, pairs, values, chunk_count)
        results: list = [None] * len(chunks)
        failed = (
            list(range(len(chunks)))
            if self._serial
            else self._optimistic(chunks, results)
        )
        for index in failed:
            results[index] = self._supervised(chunks[index])
        flattened: list = []
        for chunk_result in results:
            flattened.extend(chunk_result)
        return flattened

    def _absorb_chunk(self, outcome, elapsed: float) -> list:
        """Unpack one ``_score_chunk`` result: relay the piggybacked
        telemetry payload, record the parent-observed latency, return
        the evidence lists."""
        chunk_result, telemetry_payload = outcome
        if telemetry_payload is not None and self._relay is not None:
            self._relay.absorb(telemetry_payload)
        if self._chunk_hist is not None:
            self._chunk_hist.observe(elapsed)
        if self._flight is not None:
            self._flight.note_chunk(
                "build pool", elapsed, pairs=len(chunk_result)
            )
        return chunk_result

    def _optimistic(self, chunks: list, results: list) -> list[int]:
        """Submit every chunk to the pool at once; harvest what
        succeeds, return the indices that need supervision."""
        try:
            pool = self._ensure_pool()
            submitted = time.perf_counter()
            futures = [pool.submit(_score_chunk, chunk) for chunk in chunks]
        except Exception:
            self._kill_pool()
            return list(range(len(chunks)))
        failed: list[int] = []
        dead = False
        for index, future in enumerate(futures):
            if dead:
                # The pool is gone; salvage chunks that finished first.
                if future.done():
                    try:
                        results[index] = self._absorb_chunk(
                            future.result(), time.perf_counter() - submitted
                        )
                        continue
                    except Exception:
                        pass
                failed.append(index)
                continue
            try:
                results[index] = self._absorb_chunk(
                    future.result(timeout=self.policy.task_timeout),
                    time.perf_counter() - submitted,
                )
            except FuturesTimeout:
                self._note_timeout(chunks[index])
                self._kill_pool("task timeout")
                failed.append(index)
                dead = True
            except BrokenProcessPool:
                self._kill_pool("worker crash (BrokenProcessPool)")
                failed.append(index)
                dead = True
            except Exception:
                failed.append(index)
        return failed

    def _note_timeout(self, chunk) -> None:
        class_name, _, pairs, _ = chunk
        self.counters["task_timeout"] += 1
        self._emit(
            "warning",
            "task_timeout",
            class_name=class_name,
            pairs=len(pairs),
            timeout=self.policy.task_timeout,
        )
        self._degrade(
            "task_timeout",
            f"a {len(pairs)}-pair chunk of class {class_name} exceeded its "
            f"{self.policy.task_timeout}s deadline",
        )

    def _supervised(self, chunk) -> list:
        """Score one failed chunk to completion, whatever it takes."""
        class_name, channel_names, pairs, values = chunk
        while True:
            if self._serial:
                return self._score_serial(chunk)
            outcome, detail = self._attempt(chunk)
            if outcome == "ok":
                return detail
            if outcome == "crash":
                # A dying pool is a pool-level pathology: step down the
                # ladder (ending at serial, which cannot crash) and
                # re-run the whole chunk.
                self._descend(detail)
                continue
            # Repeated error or timeout: bisect to isolate the poison.
            if len(pairs) == 1:
                self._poison(class_name, pairs[0], detail)
                return [[]]
            mid = len(pairs) // 2
            halves = []
            for sub_pairs in (pairs[:mid], pairs[mid:]):
                elements = {element for pair in sub_pairs for element in pair}
                sub_values = {element: values[element] for element in elements}
                halves.append((class_name, channel_names, sub_pairs, sub_values))
            return self._supervised(halves[0]) + self._supervised(halves[1])

    def _attempt(self, chunk):
        """Retry one chunk under the policy.

        Returns ``("ok", results)``, or the terminal failure as
        ``("error" | "timeout" | "crash", reason)`` once retries are
        exhausted. Timeouts and crashes kill (and later rebuild) the
        pool; plain errors leave it alive.
        """
        class_name, _, pairs, _ = chunk
        failure = ("error", "never attempted")
        for attempt in range(1, self.policy.max_retries + 1):
            self.counters["task_retry"] += 1
            self._emit(
                "warning",
                "task_retry",
                class_name=class_name,
                pairs=len(pairs),
                attempt=attempt,
                max_retries=self.policy.max_retries,
            )
            self._degrade(
                "task_retry",
                f"retry {attempt}/{self.policy.max_retries} for a "
                f"{len(pairs)}-pair chunk of class {class_name}",
            )
            time.sleep(self.policy.backoff(attempt, self._rng))
            try:
                pool = self._ensure_pool()
                submitted = time.perf_counter()
                outcome = pool.submit(_score_chunk, chunk).result(
                    timeout=self.policy.task_timeout
                )
                return "ok", self._absorb_chunk(
                    outcome, time.perf_counter() - submitted
                )
            except FuturesTimeout:
                self._note_timeout(chunk)
                self._kill_pool("task timeout")
                failure = (
                    "timeout",
                    f"timed out after {self.policy.task_timeout}s",
                )
            except BrokenProcessPool:
                self._kill_pool("worker crash (BrokenProcessPool)")
                failure = ("crash", "worker process died (BrokenProcessPool)")
            except Exception as exc:
                failure = ("error", f"{type(exc).__name__}: {exc}")
        return failure

    # -- serial fallback ------------------------------------------------
    def _channels_for(self, class_name: str, channel_names: tuple[str, ...]):
        key = (class_name, channel_names)
        channels = self._serial_channels.get(key)
        if channels is None:
            by_name = {
                channel.name: channel
                for channel in self.domain.atomic_channels(class_name)
            }
            channels = [by_name[name] for name in channel_names]
            self._serial_channels[key] = channels
        return channels

    def _score_serial(self, chunk) -> list:
        """In-parent scoring, pair by pair, poisoning what still fails.

        The chaos injector is consulted per pair so a deterministic
        comparator bug keeps failing here exactly as it did in workers
        (kill / hang injectors only fire inside worker processes).
        """
        class_name, channel_names, pairs, values = chunk
        channels = self._channels_for(class_name, channel_names)
        started = time.perf_counter()
        out = []
        for left, right in pairs:
            try:
                if self.chaos is not None:
                    self.chaos.before_chunk(class_name, [(left, right)], -1)
                out.append(
                    pair_evidence(
                        channels, values[left], values[right], self._serial_memo
                    )
                )
            except Exception as exc:
                self._poison(
                    class_name, (left, right), f"{type(exc).__name__}: {exc}"
                )
                out.append([])
        elapsed = time.perf_counter() - started
        if self._chunk_hist is not None:
            self._chunk_hist.observe(elapsed)
        if self._flight is not None:
            self._flight.note_chunk("build serial", elapsed, pairs=len(out))
        return out

    # -- poisoning ------------------------------------------------------
    def _poison(self, class_name: str, pair, reason: str) -> None:
        """Quarantine one pair: score it as no-merge, record why."""
        left, right = pair
        key = tuple(sorted((left, right)))
        if key in self._poisoned_keys:
            return
        self._poisoned_keys.add(key)
        self.counters["pair_poisoned"] += 1
        entry = {
            "pair": [key[0], key[1]],
            "class": class_name,
            "reason": reason,
        }
        self.poisoned.append(entry)
        self._emit(
            "error",
            "pair_poisoned",
            left=key[0],
            right=key[1],
            class_name=class_name,
            reason=reason,
        )
        self._degrade(
            "pair_poisoned",
            f"pair {key[0]}|{key[1]} ({class_name}) scored as no-merge: "
            f"{reason}",
        )
        if self.poison_path is not None:
            import json

            atomic_write_text(
                self.poison_path,
                "".join(json.dumps(item) + "\n" for item in self.poisoned),
            )


class IterateSupervisor:
    """Supervised fork-per-chunk execution of *speculative iterate*.

    Build-time scoring ships values to a long-lived pool because its
    inputs are immutable for a whole class pass. The iterate loop is
    the opposite: the state a speculation reads drifts with every
    commit, so a long-lived pool's snapshot ages within milliseconds
    and the hit rate collapses. Instead, every chunk **forks directly
    off the parent** at submission time — copy-on-write gives the
    child a perfectly current snapshot for the price of one ``fork``,
    the child scores its keys and streams the pickled payloads back
    over a pipe, then ``os._exit``\\ s (no interpreter teardown, so
    inherited telemetry buffers are never double-flushed).

    The supervision semantics mirror :class:`SupervisedScorer`'s —
    same :class:`RetryPolicy` (seeded backoff, per-task deadline),
    same degradation ladder (full concurrency → halved → serial) and
    the same counters/telemetry vocabulary — with one deliberate
    difference: a chunk that keeps failing is **dropped**, never
    poisoned. Speculation is an optimization layer; a dropped key is
    simply computed in-line by the parent, so no fault in this module
    can ever change a decision. The terminal ladder rung (serial)
    disables speculation outright instead of scoring in-parent, which
    would just run the loop twice.
    """

    def __init__(
        self,
        engine,
        workers: int,
        policy: RetryPolicy | None = None,
        *,
        telemetry=None,
        on_degrade=None,
        chaos=None,
        relay=None,
        flight=None,
    ) -> None:
        if workers < 2:
            raise ValueError("IterateSupervisor needs at least 2 workers")
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            raise ValueError(
                "speculative iterate needs os.fork (children inherit "
                "the engine snapshot copy-on-write)"
            )
        self.engine = engine
        self.workers = workers
        self.policy = policy or RetryPolicy()
        self.telemetry = telemetry
        self.on_degrade = on_degrade
        self.chaos = chaos
        self._relay = relay
        self._flight = flight
        metrics = getattr(telemetry, "metrics", None)
        self._chunk_hist = (
            metrics.histogram(
                "repro_supervised_chunk_seconds",
                "parent-observed seconds from chunk submission to harvest",
            )
            if metrics is not None
            else None
        )
        # Degradation ladder: full concurrency → halved → serial (= no
        # speculation). Descents change how much work is speculated,
        # never what the run computes.
        self._ladder = [workers]
        half = workers // 2
        if half >= 2 and half != workers:
            self._ladder.append(half)
        self._rung = 0
        self._serial = False
        self._rng = random.Random(self.policy.seed)
        self._chunk_index = 0
        #: pid → read fd of every child not yet reaped, so teardown can
        #: kill stragglers and close their pipes.
        self._live: dict[int, int] = {}
        self.counters = {
            "task_retry": 0,
            "task_timeout": 0,
            "speculation_dropped": 0,
        }

    # -- reporting ------------------------------------------------------
    @property
    def current_workers(self) -> int:
        """Concurrent chunk children the ladder currently grants."""
        return 1 if self._serial else self._ladder[self._rung]

    @property
    def speculation_enabled(self) -> bool:
        """False once the ladder bottomed out at serial."""
        return not self._serial

    def _emit(self, level: str, event: str, **fields) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(level, event, **fields)

    def _degrade(self, kind: str, detail: str) -> None:
        if self.on_degrade is not None:
            self.on_degrade(DegradationEvent(kind=kind, detail=detail))

    # -- chunk lifecycle ------------------------------------------------
    def submit(self, keys: list):
        """Fork one speculation chunk; ``None`` when the fork failed
        (the ladder has already reacted)."""
        try:
            return self._fork_chunk(list(keys))
        except OSError as exc:  # pragma: no cover - fork exhaustion
            self._descend(f"fork failed: {exc}")
            return None

    def _fork_chunk(self, keys: list) -> "_ChunkHandle":
        index = self._chunk_index
        self._chunk_index += 1
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # child: score, stream, vanish
            try:
                # A cyclic-GC pass in the child would COW-fault every
                # heap page just to collect garbage that os._exit is
                # about to reclaim wholesale.
                gc.disable()
                os.close(read_fd)
                payloads = iterate_chunk(
                    self.engine, keys, self.chaos, index, self._relay is not None
                )
                data = pickle.dumps(payloads, protocol=pickle.HIGHEST_PROTOCOL)
                view = memoryview(data)
                while view:
                    written = os.write(write_fd, view)
                    view = view[written:]
                os.close(write_fd)
            except BaseException:
                # Any failure (chaos raise included): die with the
                # payload unfinished; the parent's harvest treats the
                # short read as a chunk failure.
                pass
            finally:
                # Skip interpreter teardown entirely: inherited file
                # buffers must not be re-flushed from the child.
                os._exit(0)
        os.close(write_fd)
        self._live[pid] = read_fd
        handle = _ChunkHandle(keys, pid, read_fd, index)
        handle.forked_at = time.perf_counter()
        return handle

    def harvest(self, handle) -> list | None:
        """Per-key payloads for a submitted chunk, or ``None`` when
        the chunk was dropped after exhausting its retries.

        Every failure mode — child killed mid-chunk, deadline
        exceeded, truncated or unpicklable payload — funnels into the
        same retry-then-descend-then-drop path; nothing raises.
        """
        outcome, detail = self._read_chunk(handle)
        if outcome == "ok":
            return detail
        for attempt in range(1, self.policy.max_retries + 1):
            self.counters["task_retry"] += 1
            self._emit(
                "warning",
                "task_retry",
                class_name="__iterate__",
                pairs=len(handle.keys),
                attempt=attempt,
                max_retries=self.policy.max_retries,
            )
            self._degrade(
                "task_retry",
                f"retry {attempt}/{self.policy.max_retries} for a "
                f"{len(handle.keys)}-key iterate chunk",
            )
            time.sleep(self.policy.backoff(attempt, self._rng))
            try:
                # The retry forks a *fresh* child, so it speculates
                # against newer state than the original submission —
                # validation against the older epoch only
                # over-approximates, never under.
                retry = self._fork_chunk(handle.keys)
            except OSError as exc:  # pragma: no cover - fork exhaustion
                self._descend(f"fork failed: {exc}")
                return None
            outcome, detail = self._read_chunk(retry)
            if outcome == "ok":
                return detail
        self._descend(detail)
        self.counters["speculation_dropped"] += len(handle.keys)
        self._emit(
            "warning",
            "speculation_dropped",
            keys=len(handle.keys),
            reason=detail,
        )
        self._degrade(
            "speculation_dropped",
            f"dropped speculation for {len(handle.keys)} key(s): {detail}",
        )
        return None

    def _read_chunk(self, handle):
        """Drain one child's pipe: ``("ok", payloads)`` or a failure."""
        deadline = self.policy.task_timeout
        parts: list[bytes] = []
        failure = None
        try:
            while True:
                if deadline is not None:
                    ready, _, _ = select.select([handle.fd], [], [], deadline)
                    if not ready:
                        self._note_timeout(handle)
                        failure = (
                            "timeout",
                            f"timed out after {deadline}s",
                        )
                        self._kill(handle.pid)
                        break
                part = os.read(handle.fd, 1 << 16)
                if not part:
                    break
                parts.append(part)
        finally:
            os.close(handle.fd)
            self._reap(handle.pid)
        if failure is not None:
            self._note_lane_death(handle.pid, failure[1])
            return failure
        try:
            message = pickle.loads(b"".join(parts))
        except Exception:
            self._note_lane_death(handle.pid, "died mid-chunk")
            return ("crash", "iterate child died mid-chunk")
        if not (isinstance(message, tuple) and len(message) == 2):
            payloads, telemetry_payload = None, None
        else:
            payloads, telemetry_payload = message
        if not isinstance(payloads, list) or len(payloads) != len(handle.keys):
            self._note_lane_death(handle.pid, "malformed chunk")
            return ("crash", "iterate child returned a malformed chunk")
        if telemetry_payload is not None and self._relay is not None:
            self._relay.absorb(telemetry_payload)
        elapsed = time.perf_counter() - handle.forked_at
        if self._chunk_hist is not None:
            self._chunk_hist.observe(elapsed)
        if self._flight is not None:
            self._flight.note_chunk(
                "iterate fork", elapsed, keys=len(handle.keys)
            )
        return ("ok", payloads)

    def _note_lane_death(self, pid: int, reason: str) -> None:
        """One iterate child gave up: tell the relay and the recorder."""
        if self._relay is not None:
            self._relay.lane_died(pid, reason, lane="iterate child")
        if self._flight is not None:
            self._flight.note_event(
                "lane_died", pid=pid, reason=reason, lane="iterate child"
            )

    def _note_timeout(self, handle) -> None:
        self.counters["task_timeout"] += 1
        self._emit(
            "warning",
            "task_timeout",
            class_name="__iterate__",
            pairs=len(handle.keys),
            timeout=self.policy.task_timeout,
        )
        self._degrade(
            "task_timeout",
            f"a {len(handle.keys)}-key iterate chunk exceeded its "
            f"{self.policy.task_timeout}s deadline",
        )

    def _descend(self, reason: str) -> None:
        """Walk the ladder one rung down: fewer concurrent children,
        then no speculation at all."""
        if self._serial:
            return
        if self._rung + 1 < len(self._ladder):
            self._rung += 1
            self._emit(
                "warning",
                "pool_rebuild",
                workers=self._ladder[self._rung],
                cause="ladder_descent",
            )
            self._degrade(
                "pool_rebuild",
                f"degraded to {self._ladder[self._rung]} iterate "
                f"children: {reason}",
            )
        else:
            self._serial = True
            self._emit(
                "warning", "degradation", kind="parallel_fallback", cause=reason
            )
            self._degrade(
                "parallel_fallback",
                f"speculative iterate disabled, loop continues serially: "
                f"{reason}",
            )

    # -- teardown -------------------------------------------------------
    def _kill(self, pid: int) -> None:
        try:
            os.kill(pid, signal.SIGKILL)
        except OSError:  # pragma: no cover - already gone
            pass

    def _reap(self, pid: int) -> None:
        if pid not in self._live:
            return
        try:
            os.waitpid(pid, 0)
        except ChildProcessError:  # pragma: no cover - already reaped
            pass
        del self._live[pid]

    def shutdown(self) -> None:
        """Kill and reap any children still in flight (abandoned
        chunks whose keys were dropped from the queue, or an engine
        tearing down mid-run), closing their pipes."""
        for pid, fd in list(self._live.items()):
            self._kill(pid)
            self._reap(pid)
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed
                pass


class _ChunkHandle:
    """One in-flight speculation chunk: its keys, child, and pipe.

    ``fork_seq`` (the ledger sequence at fork), ``started`` (trace
    clock) and ``remaining`` (keys not yet claimed or forgotten) are
    stamped and maintained by the executor after submission.
    """

    __slots__ = (
        "keys",
        "pid",
        "fd",
        "index",
        "fork_seq",
        "started",
        "remaining",
        "forked_at",
    )

    def __init__(self, keys: list, pid: int, fd: int, index: int) -> None:
        self.keys = keys
        self.pid = pid
        self.fd = fd
        self.index = index
        self.fork_seq = 0
        self.started = 0.0
        self.remaining = len(keys)
        self.forked_at = 0.0
