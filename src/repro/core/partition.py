"""Union-find partition with hard exclusion ("enemy") constraints.

The reconciliation result is a partition of the references, built by
unioning pairs as reconciliation decisions fire and closed transitively
(§3, Fig 4). Negative evidence (§3.4) is modelled as *enemy* pairs:
two clusters that must never end up in one partition. Enemy sets are
inherited on union, so a union that would transitively violate a
constraint is refused.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

__all__ = ["UnionFind", "ConstraintViolation"]


class ConstraintViolation(RuntimeError):
    """Raised when a forced union would join two enemy clusters."""


class UnionFind:
    """Disjoint sets over hashable items, with path compression, union
    by size, and exclusion constraints.

    Items are registered lazily: any item passed to :meth:`find` or
    :meth:`union` becomes its own singleton first.
    """

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        self._enemies: dict[Hashable, set[Hashable]] = {}
        self.union_count = 0
        # Merge observers (fine-grained cache invalidation). Runtime
        # state, not part of the partition: deliberately excluded from
        # state_dict — a restored engine re-registers its listeners.
        self._listeners: list = []
        for item in items:
            self.find(item)

    def add_union_listener(self, listener) -> None:
        """Call ``listener(survivor_root, absorbed_root)`` after every
        effective union, once bookkeeping is complete."""
        self._listeners.append(listener)

    def remove_union_listener(self, listener) -> None:
        """Unregister *listener*; a no-op when it was never added (or
        already removed — teardown paths may run twice)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, item: Hashable) -> Hashable:
        """Return the canonical root of *item*, registering it if new."""
        parent = self._parent
        if item not in parent:
            parent[item] = item
            self._size[item] = 1
            return item
        # Iterative find with path compression.
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def connected(self, left: Hashable, right: Hashable) -> bool:
        return self.find(left) == self.find(right)

    def add_enemy(self, left: Hashable, right: Hashable) -> None:
        """Forbid *left*'s and *right*'s clusters from ever merging.

        A pair that is already connected cannot become enemies; the
        caller decides whether that situation is an error.
        """
        left_root = self.find(left)
        right_root = self.find(right)
        if left_root == right_root:
            raise ConstraintViolation(
                f"cannot mark {left!r} and {right!r} enemies: already merged"
            )
        self._enemies.setdefault(left_root, set()).add(right_root)
        self._enemies.setdefault(right_root, set()).add(left_root)

    def are_enemies(self, left: Hashable, right: Hashable) -> bool:
        left_root = self.find(left)
        right_root = self.find(right)
        return right_root in self._enemies.get(left_root, ())

    def union(self, left: Hashable, right: Hashable) -> Hashable | None:
        """Merge the two clusters; return the surviving root.

        Returns ``None`` (and does nothing) when the clusters are
        enemies. Returns the existing root when already connected.
        """
        left_root = self.find(left)
        right_root = self.find(right)
        if left_root == right_root:
            return left_root
        if right_root in self._enemies.get(left_root, ()):
            return None
        if self._size[left_root] < self._size[right_root]:
            left_root, right_root = right_root, left_root
        self._parent[right_root] = left_root
        self._size[left_root] += self._size[right_root]
        self.union_count += 1
        # The surviving root inherits the absorbed root's enemies.
        absorbed_enemies = self._enemies.pop(right_root, set())
        if absorbed_enemies:
            survivors = self._enemies.setdefault(left_root, set())
            for enemy in absorbed_enemies:
                enemy_root = self.find(enemy)
                enemy_set = self._enemies.setdefault(enemy_root, set())
                enemy_set.discard(right_root)
                enemy_set.add(left_root)
                survivors.add(enemy_root)
        for listener in self._listeners:
            listener(left_root, right_root)
        return left_root

    def enemies_of(self, item: Hashable) -> frozenset[Hashable]:
        """Current enemy roots of *item*'s cluster (roots may be stale
        for enemies that were themselves merged; they are re-resolved
        on demand by :meth:`are_enemies`)."""
        root = self.find(item)
        return frozenset(self.find(enemy) for enemy in self._enemies.get(root, ()))

    def groups(self) -> list[list[Hashable]]:
        """All clusters, each sorted, ordered deterministically."""
        clusters: dict[Hashable, list[Hashable]] = {}
        for item in self._parent:
            clusters.setdefault(self.find(item), []).append(item)
        result = [sorted(members, key=repr) for members in clusters.values()]
        result.sort(key=lambda members: repr(members[0]))
        return result

    def group_count(self) -> int:
        roots = {self.find(item) for item in self._parent}
        return len(roots)

    def members(self, item: Hashable) -> list[Hashable]:
        root = self.find(item)
        return sorted(
            (candidate for candidate in self._parent if self.find(candidate) == root),
            key=repr,
        )

    # -- checkpointing ---------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-ready snapshot of the partition and its constraints.

        Only valid for string items (the engine's reference ids); the
        generic Hashable case has no canonical serialisation.
        """
        return {
            "parent": sorted([item, parent] for item, parent in self._parent.items()),
            "size": sorted([item, size] for item, size in self._size.items()),
            "enemies": sorted(
                [item, sorted(enemies)]
                for item, enemies in self._enemies.items()
                if enemies
            ),
            "union_count": self.union_count,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "UnionFind":
        uf = cls()
        uf._parent = {item: parent for item, parent in state["parent"]}
        uf._size = {item: size for item, size in state["size"]}
        uf._enemies = {item: set(enemies) for item, enemies in state["enemies"]}
        uf.union_count = state["union_count"]
        return uf
