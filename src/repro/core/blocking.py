"""Candidate-pair generation by inverted-index blocking.

Building similarity nodes for *all* reference pairs is quadratic and,
as §3.1 notes, "unnecessarily wasteful". Following the canopy spirit of
McCallum et al. (§6), references are indexed by cheap domain-provided
blocking keys, and only pairs sharing at least one key become
candidates for a dependency-graph node.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

from .nodes import PairKey, pair_key
from .references import Reference

__all__ = ["BlockingIndex", "candidate_pairs"]


class BlockingIndex:
    """Inverted index from blocking key to reference ids."""

    def __init__(self, *, max_block_size: int | None = None) -> None:
        # Buckets are insertion-ordered sets (dicts with None values):
        # deduplicated at add time, so membership and size are exact.
        self._buckets: dict[str, dict[str, None]] = {}
        self._max_block_size = max_block_size
        self._oversized: set[str] = set()

    @property
    def oversized_blocks(self) -> int:
        """Number of *distinct* blocks ever skipped for being over
        ``max_block_size``. Counting keys (not skip events) keeps the
        counter stable when :meth:`pairs` is iterated more than once."""
        return len(self._oversized)

    def add(self, ref_id: str, keys: Iterable[str]) -> None:
        for key in keys:
            self._buckets.setdefault(key, {})[ref_id] = None

    def block_sizes(self) -> dict[str, int]:
        """Member count per block key — the raw material for skew
        statistics (Gini, max-block share) in the hotspot sketch."""
        return {key: len(bucket) for key, bucket in self._buckets.items()}

    def iter_blocks(self) -> Iterator[tuple[str, tuple[str, ...]]]:
        """Yield ``(key, members)`` per block in sorted key order.

        Members keep their insertion order. Oversized blocks are
        included — the shard planner needs every co-blocking link, even
        the ones :meth:`pairs` skips, so a block stays shard-pure and a
        shard's blocking index skips exactly the blocks the whole-graph
        index would."""
        for key in sorted(self._buckets):
            yield key, tuple(self._buckets[key])

    def add_and_pairs(self, ref_id: str, keys: Iterable[str]) -> list[PairKey]:
        """Add *ref_id* and return its candidate pairs against the
        previous members of its buckets (incremental reconciliation).

        Oversized buckets contribute no pairs, matching :meth:`pairs`.
        """
        pairs: set[PairKey] = set()
        for key in keys:
            bucket = self._buckets.setdefault(key, {})
            small_enough = (
                self._max_block_size is None or len(bucket) < self._max_block_size
            )
            if small_enough:
                for other in bucket:
                    if other != ref_id:
                        pairs.add(pair_key(ref_id, other))
            elif bucket:
                self._oversized.add(key)
            bucket[ref_id] = None
        return sorted(pairs)

    def __len__(self) -> int:
        return len(self._buckets)

    def pairs(self) -> Iterator[PairKey]:
        """Yield each co-blocked pair exactly once, deterministically.

        Blocks larger than ``max_block_size`` are skipped entirely (a
        key shared by half the dataset carries no signal and would
        dominate the quadratic cost); the distinct skipped blocks are
        recorded in :attr:`oversized_blocks`.
        """
        seen: set[PairKey] = set()
        for key in sorted(self._buckets):
            bucket = self._buckets[key]
            if self._max_block_size is not None and len(bucket) > self._max_block_size:
                self._oversized.add(key)
                continue
            ordered = sorted(bucket)
            for i, left in enumerate(ordered):
                for right in ordered[i + 1 :]:
                    candidate = pair_key(left, right)
                    if candidate not in seen:
                        seen.add(candidate)
                        yield candidate


def candidate_pairs(
    references: Iterable[Reference],
    key_function: Callable[[Reference], Iterable[str]],
    *,
    max_block_size: int | None = None,
) -> list[PairKey]:
    """All candidate pairs among *references* under *key_function*."""
    index = BlockingIndex(max_block_size=max_block_size)
    for reference in references:
        index.add(reference.ref_id, key_function(reference))
    return list(index.pairs())
