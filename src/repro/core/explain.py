"""Explanations: *why* did the engine reconcile two references?

Trust in an entity-resolution system comes from inspectable decisions.
:func:`explain_merge` reconstructs, from a finished
:class:`~repro.core.engine.Reconciler`, the chain of merge decisions
connecting two references and the evidence each decision rested on —
the attribute values that matched, the strong-boolean implications
(shared articles) and the weak-boolean support (common contacts).

When the engine ran with a merge-provenance audit log
(:class:`~repro.obs.provenance.ProvenanceLog`), each step *replays the
actual decision record* — the channel scores, threshold, boolean
supports and triggering propagation the engine saw at decision time —
instead of recomputing similarities against post-hoc cluster state.
Non-merged pairs get their last decision record too: what the score
was, how far below the threshold it stayed, and what evidence existed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .engine import Reconciler
from .nodes import NodeStatus

__all__ = ["MergeStep", "MergeExplanation", "explain_merge"]


@dataclass(frozen=True)
class MergeStep:
    """One merge decision along the chain."""

    left: str
    right: str
    class_name: str
    score: float
    #: channel -> (left value, right value, score) of the best evidence.
    evidence: dict[str, tuple[str, str, float]] = field(default_factory=dict)
    strong_support: int = 0
    weak_support: int = 0
    #: provenance replay fields (``None`` when no audit log was kept):
    #: the propagation that triggered the deciding recomputation and
    #: the pair whose merge propagated it.
    trigger: str | None = None
    trigger_pair: tuple[str, str] | None = None
    #: True when the step replays a recorded decision rather than
    #: recomputing against the finished engine.
    from_record: bool = False

    def describe(self) -> str:
        parts = [
            f"{self.left} == {self.right} (score {self.score:.2f})",
        ]
        for channel, (value_l, value_r, score) in sorted(self.evidence.items()):
            parts.append(f"    {channel}: {value_l!r} ~ {value_r!r} ({score:.2f})")
        if self.strong_support:
            parts.append(f"    + {self.strong_support} reconciled association(s)")
        if self.weak_support:
            parts.append(f"    + {self.weak_support} common contact(s)")
        if self.trigger is not None and self.trigger != "seed":
            via = (
                f" of {self.trigger_pair[0]} == {self.trigger_pair[1]}"
                if self.trigger_pair
                else ""
            )
            parts.append(f"    triggered by {self.trigger} propagation{via}")
        if self.from_record:
            parts.append("    [replayed from decision record]")
        return "\n".join(parts)


@dataclass(frozen=True)
class MergeExplanation:
    """The full chain from one reference to another."""

    source: str
    target: str
    connected: bool
    steps: tuple[MergeStep, ...] = ()
    #: for non-reconciled pairs with an audit log: the last recorded
    #: decision about the pair (why it stayed apart), as a dict.
    last_decision: dict | None = None

    def describe(self) -> str:
        if not self.connected:
            lines = [f"{self.source} and {self.target} were NOT reconciled"]
            if self.last_decision is not None:
                record = self.last_decision
                lines.append(
                    f"  last decision: {record['decision']} at score "
                    f"{record['score']:.2f} (threshold {record['threshold']:.2f})"
                )
                for channel, score in sorted(record.get("channels", {}).items()):
                    lines.append(f"    {channel}: {score:.2f}")
                if record.get("strong_support"):
                    lines.append(
                        f"    + {record['strong_support']} reconciled association(s)"
                    )
                if record.get("weak_support"):
                    lines.append(f"    + {record['weak_support']} common contact(s)")
                lines.append("  [replayed from decision record]")
            return "\n".join(lines)
        lines = [f"{self.source} == {self.target} via {len(self.steps)} decision(s):"]
        lines.extend(step.describe() for step in self.steps)
        return "\n".join(lines)


def _provenance_of(reconciler: Reconciler):
    telemetry = getattr(reconciler, "telemetry", None)
    return getattr(telemetry, "provenance", None)


def _step_from_node(reconciler: Reconciler, node) -> MergeStep:
    evidence: dict[str, tuple[str, str, float]] = {}
    for channel, value_nodes in node.value_evidence.items():
        best = max(value_nodes, key=lambda vn: vn.score, default=None)
        if best is not None:
            evidence[channel] = (best.left_value, best.right_value, best.score)
    prov = _provenance_of(reconciler)
    record = prov.merge_record(node.left, node.right) if prov is not None else None
    if record is not None:
        # Replay the audited decision: supports, score and trigger as
        # the engine saw them when it merged — not post-hoc state.
        return MergeStep(
            left=node.left,
            right=node.right,
            class_name=node.class_name,
            score=record.score,
            evidence=evidence,
            strong_support=record.strong_support,
            weak_support=record.weak_support,
            trigger=record.trigger,
            trigger_pair=record.trigger_pair,
            from_record=True,
        )
    return MergeStep(
        left=node.left,
        right=node.right,
        class_name=node.class_name,
        score=node.score,
        evidence=evidence,
        strong_support=reconciler._strong_count(node),
        weak_support=reconciler._weak_count(node),
    )


def explain_merge(reconciler: Reconciler, source: str, target: str) -> MergeExplanation:
    """Explain how *source* and *target* ended up in one cluster.

    Performs a breadth-first search over the merged pair nodes of the
    dependency graph restricted to the pair's cluster, so the returned
    steps form a shortest chain of actual merge decisions. Pre-merged
    references (key agreement before graph construction) contribute a
    synthetic "key" step. With a provenance log attached to the
    engine, every step replays its recorded decision, and a
    non-reconciled pair reports its last recorded decision.
    """
    uf = reconciler.uf
    if not uf.connected(source, target):
        prov = _provenance_of(reconciler)
        last = None
        if prov is not None:
            record = prov.last_decision(source, target)
            if record is None:
                # The raw pair may never have formed a node (enrich
                # mode keys nodes by cluster roots): try the roots.
                record = prov.last_decision(uf.find(source), uf.find(target))
            if record is not None:
                last = record.to_dict()
        return MergeExplanation(
            source=source, target=target, connected=False, last_decision=last
        )
    if source == target:
        return MergeExplanation(source=source, target=target, connected=True)

    # Collect merged nodes inside this cluster, as edges over elements.
    root = uf.find(source)
    adjacency: dict[str, list[tuple[str, object]]] = {}
    for node in reconciler.graph.nodes():
        if node.status is not NodeStatus.MERGED:
            continue
        if uf.find(node.left) != root:
            continue
        adjacency.setdefault(node.left, []).append((node.right, node))
        adjacency.setdefault(node.right, []).append((node.left, node))

    # Elements may be cluster roots (enrich mode): map each member
    # reference onto the element(s) representing it in the graph.
    def elements_for(ref_id: str) -> list[str]:
        candidates = {ref_id}
        # Any element whose key appears in the graph and whose cluster
        # contains ref_id works as a proxy.
        for element in adjacency:
            if element == ref_id:
                return [ref_id]
        for element in adjacency:
            members = reconciler._members.get(element, [element])
            if ref_id in members:
                candidates.add(element)
        return sorted(candidates)

    sources = elements_for(source)
    targets = set(elements_for(target))

    key_step = MergeStep(
        left=source,
        right=target,
        class_name=reconciler.store.get(source).class_name,
        score=1.0,
        evidence={"key": ("<shared key value>", "<shared key value>", 1.0)},
    )

    queue = deque((element, ()) for element in sources)
    seen: set[str] = set(sources)
    while queue:
        element, path = queue.popleft()
        if element in targets:
            steps = tuple(_step_from_node(reconciler, node) for node in path)
            if not steps:
                # Same element on both sides: the pair was unified by
                # the key pre-merge (e.g. an identical email address).
                steps = (key_step,)
            return MergeExplanation(
                source=source, target=target, connected=True, steps=steps
            )
        for neighbour, node in adjacency.get(element, ()):
            if neighbour not in seen:
                seen.add(neighbour)
                queue.append((neighbour, path + (node,)))

    # Connected but no merged-node path: the pair was unified by the
    # key pre-merge (or by enrichment-internal bookkeeping).
    return MergeExplanation(
        source=source, target=target, connected=True, steps=(key_step,)
    )
