"""Incremental reconciliation (the paper's §7 future work, item 1).

When new references arrive after a dataset has been reconciled, a full
re-run wastes all previous work. :class:`IncrementalReconciler` keeps a
live :class:`~repro.core.engine.Reconciler` and folds batches of new
references into it:

* new references are blocked against the retained per-class indexes,
  so candidate pairs form only between new references and their
  bucket-mates (new-vs-old and new-vs-new),
* new pair nodes are scored with enriched cluster values, so a new
  reference immediately benefits from everything already merged,
* only the new nodes enter the queue; propagation then touches exactly
  the region of the graph the new evidence can reach.

Key-value agreement is resolved through the normal key channel (score
1.0 forces a merge) rather than the build-time pre-merge, so no special
casing is needed.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .engine import Reconciler
from .model import DomainModel, EngineConfig
from .nodes import EdgeType, NodeStatus, PairNode, pair_key
from .references import Reference, ReferenceStore
from .result import ReconciliationResult

__all__ = ["IncrementalReconciler"]


class IncrementalReconciler:
    """Reconcile a base dataset once, then absorb updates cheaply."""

    def __init__(
        self,
        store: ReferenceStore,
        domain: DomainModel,
        config: EngineConfig | None = None,
    ) -> None:
        self._reconciler = Reconciler(store, domain, config)
        self._initialized = False

    @property
    def reconciler(self) -> Reconciler:
        return self._reconciler

    @property
    def store(self) -> ReferenceStore:
        return self._reconciler.store

    def initial(self) -> ReconciliationResult:
        """Run the base reconciliation; must be called exactly once."""
        if self._initialized:
            raise RuntimeError("initial() already ran; use add()")
        self._initialized = True
        return self._reconciler.run()

    def add(self, new_references: Sequence[Reference]) -> ReconciliationResult:
        """Fold *new_references* into the reconciled dataset.

        Returns the updated full partition. The amount of recomputation
        is proportional to the graph region the new references touch,
        not to the dataset size.
        """
        if not self._initialized:
            raise RuntimeError("call initial() before add()")
        engine = self._reconciler
        for reference in new_references:
            engine.store.add(reference)
            engine.uf.find(reference.ref_id)
            engine._members.setdefault(reference.ref_id, [reference.ref_id])
        engine.store.validate()

        new_nodes_by_class: dict[str, list[PairNode]] = {}
        for class_name in engine.domain.class_order():
            incoming = [
                reference
                for reference in new_references
                if reference.class_name == class_name
            ]
            if incoming:
                new_nodes_by_class[class_name] = self._build_new_nodes(
                    class_name, incoming
                )
        self._wire_new_nodes(new_nodes_by_class)
        if engine.config.constraints:
            self._install_new_constraints(new_references)
        for class_name in engine.domain.class_order():
            for node in new_nodes_by_class.get(class_name, ()):
                if node.status is NodeStatus.ACTIVE:
                    engine.queue.push_back(node.key)
        return engine.run()

    # ------------------------------------------------------------------
    def _build_new_nodes(
        self, class_name: str, incoming: Sequence[Reference]
    ) -> list[PairNode]:
        engine = self._reconciler
        index = engine._block_indexes.get(class_name)
        if index is None:
            raise RuntimeError(
                "incremental add requires a built engine with retained "
                "blocking indexes"
            )
        channels = engine.enabled_atomic_channels(class_name)
        nodes: list[PairNode] = []
        seen: set[tuple[str, str]] = set()
        for reference in incoming:
            element = engine._elem(reference.ref_id)
            raw_pairs = index.add_and_pairs(
                element, engine.domain.blocking_keys(reference)
            )
            for left, right in raw_pairs:
                # Index entries may be roots that were absorbed since;
                # resolve to current cluster roots.
                current = pair_key(engine.uf.find(left), engine.uf.find(right))
                if current[0] == current[1] or current in seen:
                    continue
                seen.add(current)
                engine.stats.candidate_pairs += 1
                existing = engine.graph.get_key(current)
                if existing is not None:
                    # The new reference hit a pre-existing pair (both
                    # sides already known): refresh handled elsewhere.
                    continue
                node = engine._make_pair_node(
                    class_name, current[0], current[1], channels
                )
                if node is not None:
                    nodes.append(node)
        return nodes

    def _wire_new_nodes(
        self, new_nodes_by_class: dict[str, list[PairNode]]
    ) -> None:
        engine = self._reconciler
        strong_templates: dict[str, list] = {}
        for dependency in engine.domain.strong_dependencies():
            if engine.config.strong_enabled(
                dependency.source_class, dependency.target_class
            ):
                strong_templates.setdefault(dependency.source_class, []).append(
                    dependency
                )
        for class_name, nodes in new_nodes_by_class.items():
            assoc_channels = [
                channel
                for channel in engine.domain.association_channels(class_name)
                if engine.config.channel_enabled(channel.name)
            ]
            for node in nodes:
                for channel in assoc_channels:
                    engine._wire_assoc_channel(node, channel.attr)
                for dependency in strong_templates.get(class_name, ()):
                    engine._wire_strong(node, dependency)
        self._wire_new_weak_edges(new_nodes_by_class)

    def _wire_new_weak_edges(
        self, new_nodes_by_class: dict[str, list[PairNode]]
    ) -> None:
        engine = self._reconciler
        for dependency in engine.domain.weak_dependencies():
            if not engine.config.weak_enabled(dependency.class_name):
                continue
            nodes = new_nodes_by_class.get(dependency.class_name)
            if not nodes:
                continue
            inverse: dict[str, set[str]] = {}
            for reference in engine.store.of_class(dependency.class_name):
                owner = engine._elem(reference.ref_id)
                for attribute in dependency.attrs:
                    for contact_id in reference.get(attribute):
                        inverse.setdefault(engine._elem(contact_id), set()).add(owner)
            for node in nodes:
                owners_left = inverse.get(node.left, ())
                owners_right = inverse.get(node.right, ())
                for owner_l in owners_left:
                    for owner_r in owners_right:
                        if owner_l == owner_r:
                            continue
                        owner_node = engine.graph.get(owner_l, owner_r)
                        if owner_node is None or owner_node is node:
                            continue
                        engine.graph.add_edge(node, owner_node, EdgeType.WEAK)
                        engine.graph.add_edge(owner_node, node, EdgeType.WEAK)

    def _install_new_constraints(self, new_references: Iterable[Reference]) -> None:
        engine = self._reconciler
        for left, right in engine.domain.distinct_pairs(new_references):
            element_l = engine._elem(left)
            element_r = engine._elem(right)
            if element_l == element_r or engine.uf.connected(element_l, element_r):
                continue
            engine.uf.add_enemy(element_l, element_r)
            engine.stats.constraint_pairs += 1
            node = engine.graph.get(element_l, element_r)
            if node is not None:
                node.status = NodeStatus.NON_MERGE
                engine.queue.discard(node.key)
