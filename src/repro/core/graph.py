"""The dependency graph (Definition 3.1) and its enrichment surgery.

The graph holds one :class:`~repro.core.nodes.PairNode` per pair of
elements (uniqueness is what lets reconciliation decisions influence
each other), plus a registry of :class:`~repro.core.nodes.ValueNode`
objects deduplicated per (channel, value, value) triple.

Enrichment (§3.3) re-keys and fuses pair nodes as clusters grow. Edges
between pair nodes are stored as pair *keys*; rather than rewriting
every neighbour list on fusion, the graph keeps an alias table mapping
dead keys to their successors, and :meth:`resolve` follows it (with
path compression). Neighbour iteration therefore always sees the live,
fused node.
"""

from __future__ import annotations

from collections.abc import Iterator

from .nodes import EdgeType, NodeStatus, PairKey, PairNode, ValueNode, pair_key

__all__ = ["DependencyGraph", "FusionReport"]


class FusionReport:
    """What a cluster merge did to the graph, for the engine to act on.

    ``reactivate`` lists nodes that gained evidence (new incoming
    neighbours or a grown cluster behind one of their sides) and should
    re-enter the queue (§3.3 step 3); ``removed`` counts fused-away
    nodes; ``intra`` lists nodes that became internal to one cluster
    and were marked merged.
    """

    def __init__(self) -> None:
        self.reactivate: list[PairNode] = []
        self.removed = 0
        self.intra: list[PairNode] = []


class DependencyGraph:
    """Registry of pair nodes, value nodes, edges and key aliases."""

    def __init__(self) -> None:
        self._nodes: dict[PairKey, PairNode] = {}
        self._alias: dict[PairKey, PairKey] = {}
        self._by_element: dict[str, set[PairKey]] = {}
        self._value_nodes: dict[tuple[str, str, str], ValueNode] = {}
        self.value_nodes_created = 0
        self.pair_nodes_created = 0
        self.fusions = 0

    # -- basic access -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, key: PairKey) -> bool:
        return self.resolve(key) in self._nodes

    def nodes(self) -> Iterator[PairNode]:
        return iter(self._nodes.values())

    def value_node_keys(self) -> list[tuple[str, str, str]]:
        """Registry keys ``(channel, left_value, right_value)`` of every
        value node. Value nodes deduplicate globally by this key, so a
        sharded run's merged value-node count is the size of the *union*
        of its shards' key sets — never the sum."""
        return list(self._value_nodes)

    def node_count(self) -> int:
        """Total element-pair nodes ever created (pair + value nodes),
        the graph-size statistic of Table 6."""
        return self.pair_nodes_created + self.value_nodes_created

    def resolve(self, key: PairKey) -> PairKey:
        """Follow the alias chain from *key* to the current key."""
        alias = self._alias
        if key not in alias:
            return key
        root = key
        while root in alias:
            root = alias[root]
        while alias.get(key, root) != root:
            alias[key], key = root, alias[key]
        return root

    def get(self, left: str, right: str) -> PairNode | None:
        return self._nodes.get(self.resolve(pair_key(left, right)))

    def get_key(self, key: PairKey) -> PairNode | None:
        return self._nodes.get(self.resolve(key))

    def pairs_of_element(self, element: str) -> set[PairKey]:
        return set(self._by_element.get(element, ()))

    # -- construction -----------------------------------------------------
    def add_pair_node(self, class_name: str, left: str, right: str) -> PairNode:
        """Create (or return) the unique node for this element pair."""
        key = pair_key(left, right)
        existing = self._nodes.get(key)
        if existing is not None:
            return existing
        node = PairNode(class_name=class_name, left=key[0], right=key[1])
        self._nodes[key] = node
        self._by_element.setdefault(key[0], set()).add(key)
        self._by_element.setdefault(key[1], set()).add(key)
        self.pair_nodes_created += 1
        return node

    def value_node(
        self, channel: str, left_value: str, right_value: str, score: float
    ) -> ValueNode:
        """Create (or return) the unique value node for this value pair."""
        ordered = (
            (left_value, right_value)
            if left_value <= right_value
            else (right_value, left_value)
        )
        registry_key = (channel, ordered[0], ordered[1])
        existing = self._value_nodes.get(registry_key)
        if existing is not None:
            return existing
        node = ValueNode(
            channel=channel, left_value=ordered[0], right_value=ordered[1], score=score
        )
        self._value_nodes[registry_key] = node
        self.value_nodes_created += 1
        return node

    def add_edge(self, source: PairNode, target: PairNode, edge_type: EdgeType) -> None:
        """Directed dependency: *target*'s score depends on *source*."""
        if edge_type is EdgeType.REAL:
            source.real_out.add(target.key)
            target.real_in.add(source.key)
        elif edge_type is EdgeType.STRONG:
            source.strong_out.add(target.key)
            target.strong_in.add(source.key)
        else:
            source.weak_out.add(target.key)
            target.weak_in.add(source.key)

    # -- neighbour iteration ------------------------------------------------
    def _resolve_neighbours(self, keys: set[PairKey]) -> Iterator[PairNode]:
        # Sorted so activation order — and with it the queue contents —
        # is identical between a fresh run and one resumed from a
        # checkpoint (sets rebuilt from a snapshot need not iterate in
        # their original insertion order).
        seen: set[PairKey] = set()
        for key in sorted(keys):
            resolved = self.resolve(key)
            if resolved in seen:
                continue
            seen.add(resolved)
            node = self._nodes.get(resolved)
            if node is not None:
                yield node

    def real_out_nodes(self, node: PairNode) -> Iterator[PairNode]:
        return self._resolve_neighbours(node.real_out)

    def strong_out_nodes(self, node: PairNode) -> Iterator[PairNode]:
        return self._resolve_neighbours(node.strong_out)

    def weak_out_nodes(self, node: PairNode) -> Iterator[PairNode]:
        return self._resolve_neighbours(node.weak_out)

    def strong_in_nodes(self, node: PairNode) -> Iterator[PairNode]:
        return self._resolve_neighbours(node.strong_in)

    def real_in_nodes(self, node: PairNode) -> Iterator[PairNode]:
        return self._resolve_neighbours(node.real_in)

    # -- enrichment (§3.3) ---------------------------------------------------
    def merge_elements(
        self, survivor: str, absorbed: str, *, same_cluster
    ) -> FusionReport:
        """Fold every node mentioning *absorbed* onto *survivor*.

        ``same_cluster(a, b)`` tells whether two elements now belong to
        one cluster (the engine passes a union-find ``connected``).
        Implements §3.3's local surgery: for each third element r3 with
        nodes m=(survivor, r3) and n=(absorbed, r3), connect n's
        neighbours to m, remove n; lone nodes are re-keyed. Nodes whose
        two sides fall into one cluster are marked merged.
        """
        report = FusionReport()
        absorbed_keys = self._by_element.pop(absorbed, set())
        survivor_index = self._by_element.setdefault(survivor, set())
        for old_key in sorted(absorbed_keys):
            node = self._nodes.get(old_key)
            if node is None or self.resolve(old_key) != old_key:
                continue
            other = node.left if node.right == absorbed else node.right
            if other == survivor or same_cluster(other, survivor):
                # The pair became internal to one cluster: it is merged
                # by definition. Keep the node (under its old key) so
                # neighbour counts still see a merged neighbour.
                if node.status is not NodeStatus.MERGED:
                    node.status = NodeStatus.MERGED
                    node.score = 1.0
                    report.intra.append(node)
                continue
            new_key = pair_key(survivor, other)
            target = self._nodes.get(self.resolve(new_key))
            if target is not None and target is not node:
                self._fuse(source=node, target=target, old_key=old_key, other=other)
                report.removed += 1
                report.reactivate.append(target)
            else:
                # Lone node: re-key in place.
                del self._nodes[old_key]
                node.left, node.right = new_key
                self._nodes[new_key] = node
                self._alias[old_key] = new_key
                self._by_element.setdefault(other, set()).discard(old_key)
                self._by_element.setdefault(other, set()).add(new_key)
                survivor_index.add(new_key)
                report.reactivate.append(node)
        self.fusions += 1
        return report

    def _fuse(
        self, *, source: PairNode, target: PairNode, old_key: PairKey, other: str
    ) -> None:
        """Merge *source*'s evidence and edges into *target* and retire
        *source* behind an alias."""
        for channel, value_nodes in source.value_evidence.items():
            existing = target.value_evidence.setdefault(channel, [])
            known = {id(vn) for vn in existing}
            for value_node in value_nodes:
                if id(value_node) not in known:
                    existing.append(value_node)
        target.real_in |= source.real_in
        target.strong_in |= source.strong_in
        target.weak_in |= source.weak_in
        target.real_out |= source.real_out
        target.strong_out |= source.strong_out
        target.weak_out |= source.weak_out
        target.recompute_count += source.recompute_count
        target.score = max(target.score, source.score)
        # Negative evidence sticks: if either side was non-merge, the
        # fused node is non-merge.
        if source.status is NodeStatus.NON_MERGE:
            target.status = NodeStatus.NON_MERGE
        del self._nodes[old_key]
        self._alias[old_key] = target.key
        self._by_element.setdefault(other, set()).discard(old_key)

    # -- checkpointing -------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready structural snapshot of the whole graph.

        Value nodes are serialised once (they are deduplicated by
        registry key) and referenced from pair nodes by index; edge
        sets become sorted key lists so the snapshot is byte-stable for
        identical graphs.
        """
        value_keys = sorted(self._value_nodes)
        value_index = {key: position for position, key in enumerate(value_keys)}
        nodes = []
        for key in sorted(self._nodes):
            node = self._nodes[key]
            nodes.append(
                {
                    "class": node.class_name,
                    "left": node.left,
                    "right": node.right,
                    "score": node.score,
                    "status": node.status.value,
                    "recompute_count": node.recompute_count,
                    "evidence": {
                        channel: [
                            value_index[
                                (vnode.channel, vnode.left_value, vnode.right_value)
                            ]
                            for vnode in vnodes
                        ]
                        for channel, vnodes in sorted(node.value_evidence.items())
                        if vnodes
                    },
                    "real_in": sorted(node.real_in),
                    "strong_in": sorted(node.strong_in),
                    "weak_in": sorted(node.weak_in),
                    "real_out": sorted(node.real_out),
                    "strong_out": sorted(node.strong_out),
                    "weak_out": sorted(node.weak_out),
                }
            )
        return {
            "value_nodes": [
                [key[0], key[1], key[2], self._value_nodes[key].score]
                for key in value_keys
            ],
            "nodes": nodes,
            "alias": sorted(
                [list(old), list(new)] for old, new in self._alias.items()
            ),
            "pair_nodes_created": self.pair_nodes_created,
            "value_nodes_created": self.value_nodes_created,
            "fusions": self.fusions,
        }

    @classmethod
    def from_snapshot(cls, data: dict) -> "DependencyGraph":
        graph = cls()
        values: list[ValueNode] = []
        for channel, left_value, right_value, score in data["value_nodes"]:
            node = ValueNode(
                channel=channel,
                left_value=left_value,
                right_value=right_value,
                score=score,
            )
            graph._value_nodes[(channel, left_value, right_value)] = node
            values.append(node)
        for entry in data["nodes"]:
            node = PairNode(
                class_name=entry["class"],
                left=entry["left"],
                right=entry["right"],
                score=entry["score"],
                status=NodeStatus(entry["status"]),
                recompute_count=entry["recompute_count"],
            )
            for channel, indices in entry["evidence"].items():
                node.value_evidence[channel] = [values[i] for i in indices]
            node.real_in = {tuple(k) for k in entry["real_in"]}
            node.strong_in = {tuple(k) for k in entry["strong_in"]}
            node.weak_in = {tuple(k) for k in entry["weak_in"]}
            node.real_out = {tuple(k) for k in entry["real_out"]}
            node.strong_out = {tuple(k) for k in entry["strong_out"]}
            node.weak_out = {tuple(k) for k in entry["weak_out"]}
            key = node.key
            graph._nodes[key] = node
            graph._by_element.setdefault(key[0], set()).add(key)
            graph._by_element.setdefault(key[1], set()).add(key)
        graph._alias = {tuple(old): tuple(new) for old, new in data["alias"]}
        graph.pair_nodes_created = data["pair_nodes_created"]
        graph.value_nodes_created = data["value_nodes_created"]
        graph.fusions = data["fusions"]
        return graph

    def drop_self_references(self, node: PairNode) -> None:
        """Remove edges that now point from *node* to itself (possible
        after fusion when two mutually-dependent nodes collapse)."""
        key = node.key
        for edge_set in (
            node.real_in,
            node.strong_in,
            node.weak_in,
            node.real_out,
            node.strong_out,
            node.weak_out,
        ):
            stale = {k for k in edge_set if self.resolve(k) == key}
            edge_set -= stale
