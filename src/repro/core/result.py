"""Reconciliation results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .partition import UnionFind

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.guards import DegradationEvent
    from .engine import EngineStats

__all__ = ["ReconciliationResult"]


@dataclass
class ReconciliationResult:
    """The output partition plus run statistics.

    ``partitions`` maps class name to the list of clusters, each a
    sorted list of reference ids; the partitioning is the transitive
    closure of all merge decisions (honouring non-merge constraints).

    ``completed`` distinguishes a converged fixpoint from a run that
    was cut short; when it is ``False``, ``stop_reason`` says why
    (``"budget"``, ``"deadline"``, ``"queue_ceiling"``,
    ``"graph_ceiling"``) and ``degradations`` carries the structured
    trail of everything that degraded on the way — a truncated run is
    still a valid partition, just not the fixpoint one.
    """

    partitions: dict[str, list[list[str]]]
    uf: UnionFind
    stats: "EngineStats"
    completed: bool = True
    stop_reason: str = "converged"
    degradations: list["DegradationEvent"] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when anything at all was cut short or pruned."""
        return not self.completed or bool(self.degradations)

    def clusters(self, class_name: str) -> list[list[str]]:
        return self.partitions[class_name]

    def partition_count(self, class_name: str) -> int:
        """Number of entities the algorithm believes exist (the count
        reported in Table 4 / Table 5 / Figure 6)."""
        return len(self.partitions[class_name])

    def same_entity(self, left: str, right: str) -> bool:
        return self.uf.connected(left, right)

    def entity_of(self, ref_id: str) -> str:
        return str(self.uf.find(ref_id))

    def matched_pairs(self, class_name: str) -> set[tuple[str, str]]:
        """All reconciled (unordered) reference pairs of one class.

        Quadratic in cluster size — exactly the pair universe that
        pairwise precision/recall is defined over.
        """
        pairs: set[tuple[str, str]] = set()
        for cluster in self.partitions[class_name]:
            for i, left in enumerate(cluster):
                for right in cluster[i + 1 :]:
                    pairs.add((left, right))
        return pairs
