"""References and the reference store.

A :class:`Reference` is what an extractor produces: a partial instance
of a schema class, holding a (possibly empty) *set* of values for each
attribute. Atomic values are strings; association values are the ids of
other references.

References are immutable; all merging state (which references currently
form one cluster, what the pooled attribute values of a cluster are)
lives in the engine, never in the data.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from .schema import AttributeKind, Schema, SchemaError

__all__ = ["Reference", "ReferenceStore"]


@dataclass(frozen=True)
class Reference:
    """One extracted reference.

    ``values`` maps attribute name to a tuple of values. Tuples keep
    the extractor's order, which keeps everything downstream
    deterministic; semantically they are sets.
    """

    ref_id: str
    class_name: str
    values: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    source: str = ""  # provenance tag, e.g. "email" or "bibtex"

    def get(self, attribute: str) -> tuple[str, ...]:
        return self.values.get(attribute, ())

    def first(self, attribute: str) -> str | None:
        values = self.get(attribute)
        return values[0] if values else None

    def has(self, attribute: str) -> bool:
        return bool(self.values.get(attribute))

    def __post_init__(self) -> None:
        # Freeze the mapping so hashing / sharing is safe.
        frozen = {
            name: tuple(values)
            for name, values in self.values.items()
            if values
        }
        object.__setattr__(self, "values", frozen)


class ReferenceStore:
    """All references of a dataset, indexed by id and by class.

    The store validates every reference against the schema: unknown
    classes, unknown attributes and dangling association targets are
    rejected (dangling targets only at :meth:`validate` time, since
    references may arrive in any order).
    """

    def __init__(
        self,
        schema: Schema,
        references: Iterable[Reference] = (),
        *,
        known_external: Iterable[str] = (),
    ) -> None:
        self.schema = schema
        self._by_id: dict[str, Reference] = {}
        self._by_class: dict[str, list[Reference]] = {
            name: [] for name in schema.class_names
        }
        #: ids that exist in a *parent* store this one was sliced from —
        #: association targets pointing at them are not dangling (the
        #: shard runner's sub-stores keep their cross-shard links).
        self.known_external = frozenset(known_external)
        for reference in references:
            self.add(reference)

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, ref_id: str) -> bool:
        return ref_id in self._by_id

    def __iter__(self):
        return iter(self._by_id.values())

    def add(self, reference: Reference) -> None:
        if reference.class_name not in self.schema:
            raise SchemaError(
                f"reference {reference.ref_id!r} has unknown class "
                f"{reference.class_name!r}"
            )
        if reference.ref_id in self._by_id:
            raise ValueError(f"duplicate reference id {reference.ref_id!r}")
        schema_class = self.schema.cls(reference.class_name)
        for attribute_name in reference.values:
            if not schema_class.has_attribute(attribute_name):
                raise SchemaError(
                    f"reference {reference.ref_id!r}: class "
                    f"{reference.class_name!r} has no attribute {attribute_name!r}"
                )
        self._by_id[reference.ref_id] = reference
        self._by_class[reference.class_name].append(reference)

    def replace(self, reference: Reference) -> None:
        """Swap in a repaired version of an already-stored reference.

        Used by lenient ingestion to drop dangling association values;
        the id and class must match the stored original.
        """
        existing = self._by_id.get(reference.ref_id)
        if existing is None:
            raise ValueError(f"unknown reference id {reference.ref_id!r}")
        if existing.class_name != reference.class_name:
            raise SchemaError(
                f"cannot replace {reference.ref_id!r}: class changed from "
                f"{existing.class_name!r} to {reference.class_name!r}"
            )
        self._by_id[reference.ref_id] = reference
        bucket = self._by_class[reference.class_name]
        bucket[bucket.index(existing)] = reference

    def get(self, ref_id: str) -> Reference:
        return self._by_id[ref_id]

    def of_class(self, class_name: str) -> list[Reference]:
        return list(self._by_class[class_name])

    def class_counts(self) -> dict[str, int]:
        return {name: len(refs) for name, refs in self._by_class.items()}

    def validate(self) -> None:
        """Check that every association value points at a stored reference
        of the right class; raises :class:`SchemaError` otherwise.
        Targets in :attr:`known_external` (left behind in the parent
        store this one was sliced from) are accepted as-is."""
        for reference in self._by_id.values():
            schema_class = self.schema.cls(reference.class_name)
            for attribute in schema_class.association_attributes:
                for target_id in reference.get(attribute.name):
                    target = self._by_id.get(target_id)
                    if target is None:
                        if target_id in self.known_external:
                            continue
                        raise SchemaError(
                            f"{reference.ref_id}.{attribute.name} points at "
                            f"missing reference {target_id!r}"
                        )
                    if target.class_name != attribute.target:
                        raise SchemaError(
                            f"{reference.ref_id}.{attribute.name} points at "
                            f"{target_id!r} of class {target.class_name!r}, "
                            f"expected {attribute.target!r}"
                        )

    def subset(self, ref_ids: Iterable[str]) -> "ReferenceStore":
        """A new store holding only *ref_ids*, in this store's order.

        Preserving iteration order matters: premerge buckets, blocking
        indexes and queue seeding all walk the store in order, and the
        shard-equivalence guarantee relies on a shard seeing its
        references in exactly the relative order the whole-graph run
        sees them. The parent's remaining ids become the subset's
        ``known_external`` set, so association targets left in the
        parent are not treated as dangling by :meth:`validate` —
        cross-shard links under a split plan survive intact."""
        wanted = set(ref_ids)
        return ReferenceStore(
            self.schema,
            (ref for ref in self._by_id.values() if ref.ref_id in wanted),
            known_external=self.known_external.union(
                ref_id for ref_id in self._by_id if ref_id not in wanted
            ),
        )

    def atomic_kind(self, class_name: str, attribute: str) -> bool:
        return (
            self.schema.cls(class_name).attribute(attribute).kind
            is AttributeKind.ATOMIC
        )
