"""The dependency-graph reconciliation engine (the paper's contribution).

Public surface:

* :class:`Schema` / :class:`SchemaClass` / :class:`Attribute` — §2.1's
  domain model with atomic and association attributes.
* :class:`Reference` / :class:`ReferenceStore` — extractor output.
* :class:`DomainModel` / :class:`EngineConfig` — domain wiring and
  algorithm switches.
* :class:`Reconciler` — the Figure-4 algorithm.
* :class:`IncrementalReconciler` — incremental updates (§7 future work).
"""

from .blocking import BlockingIndex, candidate_pairs
from .engine import EngineStats, Reconciler
from .explain import MergeExplanation, MergeStep, explain_merge
from .graph import DependencyGraph
from .incremental import IncrementalReconciler
from .model import (
    FULL,
    MERGE,
    PROPAGATION,
    TRADITIONAL,
    AssociationChannel,
    AtomicChannel,
    DomainModel,
    EngineConfig,
    Mode,
    StrongDependency,
    WeakDependency,
)
from .nodes import EdgeType, NodeStatus, PairNode, ValueNode, pair_key
from .partition import ConstraintViolation, UnionFind
from .queue import ActiveQueue
from .references import Reference, ReferenceStore
from .result import ReconciliationResult
from .schema import Attribute, AttributeKind, Schema, SchemaClass, SchemaError

__all__ = [
    "BlockingIndex",
    "candidate_pairs",
    "EngineStats",
    "Reconciler",
    "MergeExplanation",
    "MergeStep",
    "explain_merge",
    "DependencyGraph",
    "IncrementalReconciler",
    "FULL",
    "MERGE",
    "PROPAGATION",
    "TRADITIONAL",
    "AssociationChannel",
    "AtomicChannel",
    "DomainModel",
    "EngineConfig",
    "Mode",
    "StrongDependency",
    "WeakDependency",
    "EdgeType",
    "NodeStatus",
    "PairNode",
    "ValueNode",
    "pair_key",
    "ConstraintViolation",
    "UnionFind",
    "ActiveQueue",
    "Reference",
    "ReferenceStore",
    "ReconciliationResult",
    "Attribute",
    "AttributeKind",
    "Schema",
    "SchemaClass",
    "SchemaError",
]
