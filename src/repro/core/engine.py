"""The reconciliation engine (Figure 4 of the paper).

:class:`Reconciler` wires together the dependency graph, the active
queue, the union-find partition and a :class:`~repro.core.model.DomainModel`:

1. **Build** — pre-merge references that agree on key values, generate
   candidate pairs per class by blocking, create pair nodes with their
   atomic value evidence (two-pass construction of §3.1), wire
   association / strong / weak dependency edges, and install
   constraint (non-merge) nodes.
2. **Iterate** — pop active nodes, recompute S = S_rv + S_sb + S_wb,
   merge above threshold, propagate activations along typed edges
   (strong-boolean to the queue front), and enrich by fusing nodes as
   clusters grow (§3.2-§3.4).
3. **Close** — the union-find *is* the transitive closure; enemy sets
   carry the negative evidence through it.

The engine is deliberately configuration-driven so the §5.3 ablations
(TRADITIONAL / PROPAGATION / MERGE / FULL × evidence subsets) are pure
config changes, not separate code paths.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from pathlib import Path

from ..obs.flight import FlightRecorder
from ..obs.hotspots import HotspotSketch
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from ..perf.scoring import channel_value_pairs, pair_evidence
from ..runtime.errors import BudgetExceeded, DeadlineExceeded, GuardTripped, QueueEmpty
from ..runtime.guards import DegradationEvent
from .blocking import BlockingIndex
from .graph import DependencyGraph
from .model import DomainModel, EngineConfig
from .nodes import EdgeType, NodeStatus, PairNode, pair_key
from .partition import ConstraintViolation, UnionFind
from .queue import ActiveQueue
from .references import Reference, ReferenceStore
from .result import ReconciliationResult

__all__ = ["Reconciler", "EngineStats"]

# Guard against pathological weak-edge fan-out (popular contacts).
_MAX_WEAK_FANOUT = 20_000

# Iterate steps per progress event / trace chunk when telemetry is on.
_ITERATE_CHUNK = 1_000


@dataclass
class EngineStats:
    """Counters exposed for the efficiency experiments and Table 6."""

    pair_nodes: int = 0
    value_nodes: int = 0
    graph_nodes: int = 0
    candidate_pairs: int = 0
    recomputations: int = 0
    merges: int = 0
    non_merges: int = 0
    premerged_unions: int = 0
    constraint_pairs: int = 0
    fusions: int = 0
    queue_front_pushes: int = 0
    queue_back_pushes: int = 0
    build_seconds: float = 0.0
    iterate_seconds: float = 0.0
    skipped_weak_fanout: int = 0
    # Cache-effectiveness counters (all plain ints so checkpoints can
    # round-trip them through asdict/EngineStats(**...)).
    values_cache_hits: int = 0
    values_cache_misses: int = 0
    contacts_cache_hits: int = 0
    contacts_cache_misses: int = 0
    feature_cache_hits: int = 0
    feature_cache_misses: int = 0
    pair_memo_hits: int = 0
    pair_memo_misses: int = 0
    prefilter_skips: int = 0
    #: worker processes the build actually used (1 = serial).
    parallel_workers: int = 1
    # Supervised-execution counters (parallel build only; see
    # repro.runtime.supervisor). Plain ints for checkpoint round-trips.
    task_retries: int = 0
    task_timeouts: int = 0
    pool_rebuilds: int = 0
    pairs_poisoned: int = 0
    #: iterate worker processes actually used (1 = serial iterate).
    iterate_workers: int = 1
    # Speculative-iterate counters (see repro.perf.speculate). All
    # execution-dependent: they never appear in a manifest's invariant
    # view, and defaults keep old checkpoints loadable.
    speculated_nodes: int = 0
    speculation_hits: int = 0
    speculation_invalidated: int = 0
    speculation_dropped: int = 0
    #: ActiveQueue deque rebuilds triggered by stale-entry buildup.
    queue_compactions: int = 0
    per_class_nodes: dict[str, int] = field(default_factory=dict)
    #: convergence samples taken during iterate (plain dicts: keyed by
    #: the recomputation counter, never wall-clock, so a resumed run
    #: reproduces an uninterrupted run's samples exactly). Populated
    #: only when :meth:`Reconciler.attach_convergence` was called.
    convergence_samples: list[dict] = field(default_factory=list)
    #: structured trail of everything that degraded during the run
    #: (guard trips, pruned weak fan-out, baseline fallbacks).
    degradations: list[DegradationEvent] = field(default_factory=list)


class Reconciler:
    """Run the dependency-graph reconciliation over a reference store."""

    def __init__(
        self,
        store: ReferenceStore,
        domain: DomainModel,
        config: EngineConfig | None = None,
        *,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.store = store
        self.domain = domain
        self.config = config or EngineConfig()
        # Observability sinks; the shared null object costs one
        # attribute read per instrumented block and keeps partitions
        # byte-identical with telemetry on or off.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.graph = DependencyGraph()
        self.uf = UnionFind()
        self.queue = ActiveQueue()
        self.stats = EngineStats()
        # Cluster membership and pooled-value caches (enrichment state).
        self._members: dict[str, list[str]] = {}
        self._values_cache: dict[str, dict[str, tuple[str, ...]]] = {}
        # Contact-root cache with fine-grained invalidation: an entry
        # stays valid across merges that cannot change it. The reverse
        # index maps a cluster root to the elements whose cached contact
        # sets mention it; the union-find notifies us of every merge.
        self._contacts_cache: dict[str, frozenset[str]] = {}
        self._contacts_rdeps: dict[str, set[str]] = {}
        self.uf.add_union_listener(self._invalidate_contacts)
        # Value-pair score memo shared by every candidate pair of a
        # build (see perf.scoring.memoised_score for the semantics).
        self._pair_score_memo: dict = {}
        self._weak_attrs: dict[str, tuple[str, ...]] = {
            dep.class_name: dep.attrs for dep in domain.weak_dependencies()
        }
        # Blocking indexes are retained per class so new references can
        # be folded in later (incremental reconciliation).
        self._block_indexes: dict[str, BlockingIndex] = {}
        self._per_class_nodes: dict[str, list[PairNode]] = {}
        self._built = False
        #: why the last run stopped: "converged" or a degradation kind.
        self.stop_reason = "converged"
        #: fault-injection seam for the supervised build (mirrors the
        #: ``step_hook`` seam of :meth:`run`): an opaque object with a
        #: ``before_chunk`` method, forwarded to scoring workers. None
        #: in production.
        self.chaos = None
        #: pair keys scored as no-merge no matter what the evidence
        #: says. Populated from a supervised build's poisoned pairs;
        #: pre-populating it on a serial engine reproduces a poisoned
        #: run exactly (the soak harness's oracle).
        self.suppressed_pairs: set = set()
        # Set when a mid-build scorer failure disabled parallelism for
        # the remaining classes (the scorer is already shut down).
        self._parallel_disabled = False
        #: read-set capture hook for speculative iterate: ``None`` in
        #: the parent (zero overhead beyond one attribute test per
        #: evidence read); a :class:`~repro.perf.speculate.ReadRecorder`
        #: inside iterate workers while :meth:`_compute` runs.
        self._read_recorder = None
        # Convergence sampling (run manifests): (gold entity_of, every).
        self._convergence: tuple[dict[str, str], int] | None = None
        # Cross-process telemetry relay, created lazily the first time
        # a parallel scorer/speculator is built with live sinks; stays
        # None (zero cost) when telemetry is off or provenance-only.
        self._relay = None
        #: always-on black-box: bounded ring buffers of recent events,
        #: decisions, chunk timings and degradations, dumped as a crash
        #: bundle when a run dies. Strictly observational (set to None
        #: to prove byte-identity); never checkpointed or fingerprinted.
        self.flight = FlightRecorder()
        #: streaming heavy-hitter attribution (blocks/pairs/channels +
        #: blocking skew); observational like the recorder, surfaced in
        #: the manifest's execution section and `repro hotspots`.
        self.hotspots = HotspotSketch()

    def _get_relay(self):
        if self._relay is None and self.telemetry.active:
            from ..obs.relay import TelemetryRelay

            self._relay = TelemetryRelay.for_telemetry(self.telemetry)
        return self._relay

    def attach_convergence(
        self, gold_entity_of: Mapping[str, str], *, every: int = 250
    ) -> None:
        """Record convergence samples against a gold standard.

        Every *every* recomputations (and once at the end of the run)
        the engine appends ``{recomputations, merges, queued,
        precision, recall}`` to ``stats.convergence_samples`` — the
        per-iteration curve a run manifest embeds. Samples are keyed by
        the recomputation counter, which is checkpointed, so a resumed
        run continues the exact sample sequence an uninterrupted run
        produces. Sampling is read-only: it cannot change any decision.
        """
        if gold_entity_of:
            self._convergence = (dict(gold_entity_of), max(1, int(every)))

    def _sample_convergence(self, *, final: bool = False) -> None:
        gold, every = self._convergence
        n = self.stats.recomputations
        samples = self.stats.convergence_samples
        if not final and n % every:
            return
        if samples and samples[-1]["recomputations"] == n:
            if not final:
                return
            samples.pop()  # the final state supersedes the boundary sample
        from ..evaluation.metrics import combine_scores, pairwise_scores

        per_class: dict[str, dict[str, list[str]]] = {}
        for reference in self.store:
            if reference.ref_id not in gold:
                continue
            per_class.setdefault(reference.class_name, {}).setdefault(
                self.uf.find(reference.ref_id), []
            ).append(reference.ref_id)
        scores = combine_scores(
            pairwise_scores(groups.values(), gold) for groups in per_class.values()
        )
        point = {
            "recomputations": n,
            "merges": self.stats.merges,
            "queued": len(self.queue),
            "precision": round(scores.precision, 6),
            "recall": round(scores.recall, 6),
        }
        samples.append(point)
        self.telemetry.emit("debug", "convergence_sample", **point)

    def _sync_feature_cache_stats(self) -> None:
        """Mirror the domain's :class:`~repro.perf.features.FeatureCache`
        counters (when the domain has one) into the engine stats."""
        cache = getattr(self.domain, "feature_cache", None)
        if cache is not None:
            self.stats.feature_cache_hits = cache.hits
            self.stats.feature_cache_misses = cache.misses

    def enabled_atomic_channels(self, class_name: str):
        """The atomic channels active under the current config."""
        return [
            channel
            for channel in self.domain.atomic_channels(class_name)
            if self.config.channel_enabled(channel.name)
        ]

    # ------------------------------------------------------------------
    # element identity: in enrich mode nodes are keyed by cluster roots;
    # otherwise by raw reference ids.
    # ------------------------------------------------------------------
    def _elem(self, ref_id: str) -> str:
        if self.config.enrich:
            return self.uf.find(ref_id)
        return ref_id

    def _element_refs(self, element: str) -> list[Reference]:
        if self.config.enrich:
            members = self._members.get(element)
            if members is None:
                members = [element]
            return [self.store.get(ref_id) for ref_id in members]
        return [self.store.get(element)]

    def _element_values(self, element: str) -> Mapping[str, tuple[str, ...]]:
        """Pooled attribute values of the element's cluster (enrichment)
        or the single reference's own values."""
        if self._read_recorder is not None:
            # In enrich mode an element *is* a cluster root and its
            # pooled values can only change when that root merges; in
            # non-enrich mode values are immutable and the entry is
            # harmless. Either way, recording the element makes a
            # speculative score invalid the moment the cluster moves.
            self._read_recorder.roots.add(element)
        if not self.config.enrich:
            return self.store.get(element).values
        cached = self._values_cache.get(element)
        if cached is not None:
            self.stats.values_cache_hits += 1
            return cached
        self.stats.values_cache_misses += 1
        pooled: dict[str, list[str]] = {}
        for reference in self._element_refs(element):
            for attribute, values in reference.values.items():
                bucket = pooled.setdefault(attribute, [])
                for value in values:
                    if value not in bucket:
                        bucket.append(value)
        frozen = {attribute: tuple(values) for attribute, values in pooled.items()}
        self._values_cache[element] = frozen
        return frozen

    def _element_assoc(self, element: str, attribute: str) -> tuple[str, ...]:
        return self._element_values(element).get(attribute, ())

    def _contact_roots(self, element: str, class_name: str) -> frozenset[str]:
        """Roots of all contacts of the element (for weak counts).

        Cached per element with *dirty-root* invalidation: the cached
        set can only change when one of the roots it contains is
        absorbed by a merge (the contact's root moved) or when the
        element itself merges (its pooled contact list grew). The
        union-find notifies :meth:`_invalidate_contacts` on every
        union, which evicts exactly those entries — merges elsewhere in
        the dataset leave the cache warm.
        """
        cached = self._contacts_cache.get(element)
        if cached is not None:
            self.stats.contacts_cache_hits += 1
            return cached
        self.stats.contacts_cache_misses += 1
        attrs = self._weak_attrs.get(class_name, ())
        roots: set[str] = set()
        for attribute in attrs:
            for contact_id in self._element_assoc(element, attribute):
                roots.add(self.uf.find(contact_id))
        frozen = frozenset(roots)
        self._contacts_cache[element] = frozen
        for root in frozen:
            self._contacts_rdeps.setdefault(root, set()).add(element)
        return frozen

    def _invalidate_contacts(self, survivor: str, absorbed: str) -> None:
        """Union-find merge hook: evict exactly the contact-root cache
        entries the merge invalidated — those whose set contains the
        absorbed root (it stopped being a root) and the merged elements
        themselves (their pooled contact lists grew). Sets containing
        only the survivor stay valid: it is still the root and the set
        membership is unchanged. Spurious evictions would merely cost a
        recompute; missing one would be a correctness bug, hence the
        reverse index is append-only and may over-approximate."""
        for dependent in self._contacts_rdeps.pop(absorbed, ()):
            self._contacts_cache.pop(dependent, None)
        self._contacts_cache.pop(survivor, None)
        self._contacts_cache.pop(absorbed, None)

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def build(self) -> None:
        """Construct the dependency graph (two passes of §3.1)."""
        started = time.perf_counter()
        tel = self.telemetry
        tel.emit("info", "build_start", references=len(self.store))
        if self.flight is not None:
            self.flight.note_event("build_start", references=len(self.store))
        with tel.span("build"):
            self.store.validate()
            if self.config.premerge_keys:
                with tel.span("premerge"):
                    self._premerge_by_keys()
            self._register_members()
            class_order = self.domain.class_order()
            per_class_nodes: dict[str, list[PairNode]] = {}
            scorer = self._make_scorer()
            try:
                for class_name in class_order:
                    with tel.span(f"build_class:{class_name}", class_name=class_name):
                        per_class_nodes[class_name] = self._build_class_nodes(
                            class_name, scorer=scorer
                        )
                    if self.hotspots is not None:
                        # The index is filled and iterated by now, so
                        # sizes and oversized counts are both final.
                        self.hotspots.note_blocks(
                            class_name, self._block_indexes[class_name]
                        )
                    tel.emit(
                        "debug",
                        "build_phase",
                        phase=f"class:{class_name}",
                        nodes=len(per_class_nodes[class_name]),
                    )
            finally:
                if scorer is not None:
                    scorer.shutdown()
                    self._absorb_supervision(scorer)
            self._per_class_nodes = per_class_nodes
            with tel.span("wire_association"):
                self._wire_association_edges(per_class_nodes)
            with tel.span("wire_weak"):
                self._wire_weak_edges(per_class_nodes)
            if self.config.constraints:
                with tel.span("constraints"):
                    self._install_distinct_pairs()
            # Seed the queue: class order already respects "values before
            # the references that depend on them".
            for class_name in class_order:
                for node in per_class_nodes[class_name]:
                    if node.status is NodeStatus.ACTIVE:
                        self.queue.push_back(node.key)
        self.stats.pair_nodes = self.graph.pair_nodes_created
        self.stats.value_nodes = self.graph.value_nodes_created
        self.stats.graph_nodes = self.graph.node_count()
        self.stats.per_class_nodes = {
            class_name: len(nodes) for class_name, nodes in per_class_nodes.items()
        }
        self.stats.build_seconds = time.perf_counter() - started
        self._sync_feature_cache_stats()
        if self.stats.skipped_weak_fanout:
            self._degrade(
                DegradationEvent(
                    kind="weak_fanout",
                    detail=(
                        f"skipped {self.stats.skipped_weak_fanout} weak-edge "
                        f"bundles over the {_MAX_WEAK_FANOUT} fan-out ceiling"
                    ),
                )
            )
        tel.emit(
            "info",
            "build_end",
            seconds=round(self.stats.build_seconds, 6),
            candidate_pairs=self.stats.candidate_pairs,
            pair_nodes=self.stats.pair_nodes,
            value_nodes=self.stats.value_nodes,
            queued=len(self.queue),
        )
        if self.flight is not None:
            self.flight.note_event(
                "build_end",
                seconds=round(self.stats.build_seconds, 6),
                pair_nodes=self.stats.pair_nodes,
                queued=len(self.queue),
            )
        self._built = True

    def _degrade(self, event: DegradationEvent) -> None:
        """Record a degradation in the stats *and* the event stream."""
        self.stats.degradations.append(event)
        if self.flight is not None:
            self.flight.note_degradation(event.kind, event.detail)
        self.telemetry.emit("warning", "degradation", kind=event.kind, detail=event.detail)

    def _premerge_by_keys(self) -> None:
        """§3.4's cheap pre-processing: union references that share a
        key value (e.g. the exact same email address)."""
        buckets: dict[str, list[str]] = {}
        for reference in self.store:
            for key_value in self.domain.key_values(reference):
                buckets.setdefault(key_value, []).append(reference.ref_id)
        for key_value in sorted(buckets):
            bucket = buckets[key_value]
            first = bucket[0]
            for other in bucket[1:]:
                if self.uf.union(first, other) is not None:
                    self.stats.premerged_unions += 1

    def _register_members(self) -> None:
        for reference in self.store:
            root = self.uf.find(reference.ref_id)
            self._members.setdefault(root, []).append(reference.ref_id)

    def _make_scorer(self):
        """A supervised worker pool for the build, or ``None`` to run
        serially (``workers=1``, or a domain workers cannot rebuild —
        recorded as a ``parallel_fallback`` degradation, never an
        error)."""
        self.stats.parallel_workers = 1
        self._parallel_disabled = False
        if self.config.workers <= 1:
            return None
        from ..runtime.supervisor import RetryPolicy, SupervisedScorer

        try:
            scorer = SupervisedScorer(
                self.domain,
                self.config.workers,
                RetryPolicy(
                    max_retries=self.config.max_task_retries,
                    task_timeout=self.config.task_timeout,
                    backoff_base=self.config.retry_backoff,
                ),
                telemetry=self.telemetry,
                on_degrade=self._degrade,
                poison_path=self.config.poison_log,
                chaos=self.chaos,
                relay=self._get_relay(),
                flight=self.flight,
            )
        except Exception as exc:
            self._degrade(
                DegradationEvent(
                    kind="parallel_fallback",
                    detail=f"serial build: {exc}",
                )
            )
            return None
        self.stats.parallel_workers = self.config.workers
        return scorer

    def _absorb_supervision(self, scorer) -> None:
        """Fold a supervised scorer's outcome into engine state: the
        retry / timeout / rebuild / poison counters, the suppressed
        pair keys (so force-created nodes respect poisons too), the
        provenance records, and the worker count actually achieved."""
        counters = getattr(scorer, "counters", None)
        if counters is None:
            return  # a bare ParallelScorer (tests) has no supervision
        self.stats.task_retries += counters["task_retry"]
        self.stats.task_timeouts += counters["task_timeout"]
        self.stats.pool_rebuilds += counters["pool_rebuild"]
        self.stats.pairs_poisoned += counters["pair_poisoned"]
        if not self._parallel_disabled:
            self.stats.parallel_workers = scorer.current_workers
        prov = self.telemetry.provenance
        for entry in scorer.poisoned:
            key = pair_key(entry["pair"][0], entry["pair"][1])
            self.suppressed_pairs.add(key)
            if prov is not None:
                prov.record(
                    pair=key,
                    class_name=entry["class"],
                    decision="pair_poisoned",
                    score=0.0,
                    threshold=self.domain.merge_threshold(entry["class"]),
                )

    def _build_class_nodes(
        self, class_name: str, scorer=None
    ) -> list[PairNode]:
        """Blocking + first-pass node construction for one class.

        With a *scorer*, candidate pairs are scored in worker processes
        but nodes are materialised here in the original pair order — a
        parallel build is byte-identical to a serial one. No union
        happens while a class's pairs are scored, so workers only need
        the (immutable during this loop) pooled attribute values.
        """
        references = self.store.of_class(class_name)
        index = BlockingIndex(max_block_size=self.config.max_block_size)
        self._block_indexes[class_name] = index
        for reference in references:
            element = self._elem(reference.ref_id)
            index.add(element, self.domain.blocking_keys(reference))
        channels = self.enabled_atomic_channels(class_name)
        nodes: list[PairNode] = []
        if self._parallel_disabled:
            scorer = None
        if scorer is not None:
            pair_list = list(index.pairs())
            evidences = self._score_pairs_parallel(
                scorer, class_name, channels, pair_list
            )
            if evidences is not None:
                for (left, right), evidence in zip(pair_list, evidences):
                    self.stats.candidate_pairs += 1
                    if self.uf.connected(left, right):
                        continue
                    node = self._node_from_evidence(class_name, left, right, evidence)
                    if node is not None:
                        nodes.append(node)
                return nodes
            pairs = iter(pair_list)  # worker failure: fall back serially
        else:
            pairs = index.pairs()
        for left, right in pairs:
            self.stats.candidate_pairs += 1
            node = self._make_pair_node(class_name, left, right, channels)
            if node is not None:
                nodes.append(node)
        return nodes

    def _score_pairs_parallel(
        self, scorer, class_name: str, channels, pair_list
    ):
        """Evidence lists for *pair_list* from the worker pool, or
        ``None`` (plus a degradation record) when the pool fails.

        A mid-build pool failure — including ``BrokenProcessPool``
        from a crashed worker — degrades to a serial build for this
        and every remaining class; it never escapes as an exception.
        The failed scorer is shut down immediately so no worker
        processes outlive the failure.
        """
        values: dict[str, dict[str, tuple[str, ...]]] = {}
        for pair in pair_list:
            for element in pair:
                if element not in values:
                    values[element] = dict(self._element_values(element))
        channel_names = tuple(channel.name for channel in channels)
        try:
            return scorer.score(class_name, channel_names, pair_list, values)
        except Exception as exc:
            self._degrade(
                DegradationEvent(
                    kind="parallel_fallback",
                    detail=f"class {class_name} scored serially: {exc}",
                )
            )
            self.stats.parallel_workers = 1
            self._parallel_disabled = True
            try:
                scorer.shutdown()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
            return None

    def _make_pair_node(
        self, class_name: str, left: str, right: str, channels, *, force: bool = False
    ) -> PairNode | None:
        """Create a pair node with its atomic value evidence; drop the
        node when no channel produced any evidence (§3.1 step 2).

        With ``force=True`` (strong dependencies that guarantee the
        pair "potentially refers to the same entity") the node is
        created regardless, and even weak value evidence is kept.

        Suppressed (poisoned) pairs never get a node — not even under
        ``force`` — so a supervised build's quarantine and the serial
        oracle that replays it take the same decisions everywhere.
        """
        if self.uf.connected(left, right):
            return None
        if self.suppressed_pairs and pair_key(left, right) in self.suppressed_pairs:
            return None
        evidence = pair_evidence(
            channels,
            self._element_values(left),
            self._element_values(right),
            self._pair_score_memo,
            floor=0.02 if force else None,
            stats=self.stats,
        )
        return self._node_from_evidence(class_name, left, right, evidence, force=force)

    def _node_from_evidence(
        self,
        class_name: str,
        left: str,
        right: str,
        evidence: list[tuple[str, str, str, float]],
        *,
        force: bool = False,
    ) -> PairNode | None:
        if not evidence and not force:
            return None
        node = self.graph.add_pair_node(class_name, left, right)
        for channel_name, value_l, value_r, score in evidence:
            node.add_value_evidence(
                self.graph.value_node(channel_name, value_l, value_r, score)
            )
        return node

    @staticmethod
    def _channel_value_pairs(channel, left_values, right_values):
        """All comparable value pairs of one channel, both orientations
        for cross-attribute channels (see perf.scoring)."""
        return channel_value_pairs(channel, left_values, right_values)

    def _wire_association_edges(self, per_class_nodes) -> None:
        """Second pass of §3.1: edges along association attributes."""
        strong_templates: dict[str, list] = {}
        for dependency in self.domain.strong_dependencies():
            if self.config.strong_enabled(
                dependency.source_class, dependency.target_class
            ):
                strong_templates.setdefault(dependency.source_class, []).append(
                    dependency
                )
        for class_name, nodes in per_class_nodes.items():
            assoc_channels = [
                channel
                for channel in self.domain.association_channels(class_name)
                if self.config.channel_enabled(channel.name)
            ]
            strongs = strong_templates.get(class_name, [])
            if not assoc_channels and not strongs:
                continue
            for node in nodes:
                for channel in assoc_channels:
                    self._wire_assoc_channel(node, channel.attr)
                for dependency in strongs:
                    self._wire_strong(node, dependency)

    def _linked_element_pairs(self, node: PairNode, attribute: str):
        """Element pairs linked from the two sides of *node* through
        *attribute*, with their existing pair node (or None)."""
        left_targets = self._element_assoc(node.left, attribute)
        right_targets = self._element_assoc(node.right, attribute)
        seen: set = set()
        for target_l in left_targets:
            element_l = self._elem(target_l)
            for target_r in right_targets:
                element_r = self._elem(target_r)
                if element_l == element_r:
                    continue
                key = pair_key(element_l, element_r)
                if key in seen:
                    continue
                seen.add(key)
                yield key, self.graph.get_key(key)

    def _wire_assoc_channel(self, node: PairNode, attribute: str) -> None:
        for _key, linked in self._linked_element_pairs(node, attribute):
            if linked is not None:
                self.graph.add_edge(linked, node, EdgeType.REAL)

    def _element_in_store(self, element: str) -> bool:
        """Whether every reference behind *element* is in this store.

        Always true for a whole-dataset run; false only for a sharded
        sub-store whose split plan left an association target in
        another shard — such elements carry no local evidence and no
        node may be forced for them (the cross-shard fixpoint supplies
        the global view instead)."""
        if self.config.enrich:
            members = self._members.get(element)
            if members is None:
                return element in self.store
            return all(ref_id in self.store for ref_id in members)
        return element in self.store

    def _wire_strong(self, node: PairNode, dependency) -> None:
        for key, linked in self._linked_element_pairs(node, dependency.attr):
            if (
                linked is None
                and dependency.ensure_target_nodes
                and not (
                    self._element_in_store(key[0])
                    and self._element_in_store(key[1])
                )
            ):
                continue
            if linked is None and dependency.ensure_target_nodes:
                linked = self._make_pair_node(
                    dependency.target_class,
                    key[0],
                    key[1],
                    self.enabled_atomic_channels(dependency.target_class),
                    force=True,
                )
                if linked is not None:
                    self._per_class_nodes.setdefault(
                        dependency.target_class, []
                    ).append(linked)
                    # The forced node also feeds the source's real-valued
                    # association channel, mirroring build-time wiring.
                    self.graph.add_edge(linked, node, EdgeType.REAL)
                    if self._built:
                        # Created after the initial seeding (incremental
                        # add): enqueue directly.
                        self.queue.push_back(linked.key)
            if linked is not None:
                self.graph.add_edge(node, linked, EdgeType.STRONG)

    def _wire_weak_edges(self, per_class_nodes) -> None:
        """Bidirectional weak-boolean edges between contact pairs and
        the pairs of references that list them (Figure 2(b))."""
        for dependency in self.domain.weak_dependencies():
            if not self.config.weak_enabled(dependency.class_name):
                continue
            nodes = per_class_nodes.get(dependency.class_name, [])
            inverse: dict[str, set[str]] = {}
            for reference in self.store.of_class(dependency.class_name):
                owner = self._elem(reference.ref_id)
                for attribute in dependency.attrs:
                    for contact_id in reference.get(attribute):
                        inverse.setdefault(self._elem(contact_id), set()).add(owner)
            for node in nodes:
                owners_left = inverse.get(node.left, ())
                owners_right = inverse.get(node.right, ())
                if not owners_left or not owners_right:
                    continue
                if len(owners_left) * len(owners_right) > _MAX_WEAK_FANOUT:
                    self.stats.skipped_weak_fanout += 1
                    continue
                for owner_l in owners_left:
                    for owner_r in owners_right:
                        if owner_l == owner_r:
                            continue
                        owner_node = self.graph.get(owner_l, owner_r)
                        if owner_node is None or owner_node is node:
                            continue
                        self.graph.add_edge(node, owner_node, EdgeType.WEAK)
                        self.graph.add_edge(owner_node, node, EdgeType.WEAK)

    def _install_distinct_pairs(self) -> None:
        """§3.4 modification 1: non-merge nodes and enemy constraints
        for pairs known distinct a priori."""
        for left, right in self.domain.distinct_pairs(self.store):
            element_l = self._elem(left)
            element_r = self._elem(right)
            if element_l == element_r:
                continue  # extraction noise: key-premerged "distinct" pair
            try:
                self.uf.add_enemy(element_l, element_r)
            except ConstraintViolation:
                continue
            self.stats.constraint_pairs += 1
            node = self.graph.get(element_l, element_r)
            if node is not None:
                node.status = NodeStatus.NON_MERGE
                self.queue.discard(node.key)

    # ------------------------------------------------------------------
    # iterate
    # ------------------------------------------------------------------
    def run(
        self,
        *,
        guard=None,
        checkpointer=None,
        step_hook: Callable[["Reconciler", int], None] | None = None,
        raise_on_trip: bool = False,
    ) -> ReconciliationResult:
        """Execute the full algorithm and return the partition.

        ``guard`` is an optional :class:`~repro.runtime.guards.RunGuard`
        checked once per iteration; a trip ends the run gracefully with
        ``completed=False`` and the trip's reason, unless
        ``raise_on_trip`` is set (the resilient wrapper catches the
        typed exception instead). ``checkpointer`` (a
        :class:`~repro.runtime.checkpoint.Checkpointer`) periodically
        serialises the full engine state so a killed run can continue
        via :meth:`resume`. ``step_hook`` is called with the engine and
        the iterate-step index before each step — the fault-injection
        seam; whatever it raises propagates (a simulated crash).
        """
        if not self._built:
            self.build()
        started = time.perf_counter()
        if guard is not None:
            guard.start()
        budget = self.config.max_recomputations
        self.stop_reason = "converged"
        trip: GuardTripped | None = None
        step = 0
        tel = self.telemetry
        if self.flight is not None:
            self.flight.note_event("iterate_start", queued=len(self.queue))
        # Per-step instrumentation is resolved once, outside the loop:
        # with telemetry off every extra is None and the loop body is
        # the exact pre-observability code path.
        instrumented = tel.active
        recompute_hist = queue_hist = chunk_queue_hist = None
        tracer = None
        chunk_start = 0.0
        chunk_step = chunk_merges = 0
        if instrumented:
            tel.emit("info", "iterate_start", queued=len(self.queue))
            if tel.metrics is not None:
                from ..obs.metrics import DEPTH_BUCKETS

                recompute_hist = tel.metrics.histogram(
                    "repro_recompute_seconds", "per-node recomputation latency"
                )
                queue_hist = tel.metrics.histogram(
                    "repro_queue_depth",
                    "active-queue depth sampled at each pop",
                    buckets=DEPTH_BUCKETS,
                )
                chunk_queue_hist = tel.metrics.histogram(
                    "repro_iterate_queue_depth",
                    "active-queue depth sampled once per iterate chunk",
                    buckets=DEPTH_BUCKETS,
                )
            tracer = tel.tracer
            if tracer is not None:
                chunk_start = tracer.now()
                iterate_offset = chunk_start
                chunk_merges = self.stats.merges
        if checkpointer is not None:
            # Always leave at least one checkpoint behind, even if the
            # run dies on its very first step.
            if checkpointer.maybe_save(self, 0) is not None:
                tel.emit("info", "checkpoint_saved", step=0)
                tel.instant("checkpoint", step=0)
        speculator = self._make_speculator()
        try:
            step, trip, chunk_start, chunk_step, chunk_merges = self._iterate_loop(
                guard=guard,
                checkpointer=checkpointer,
                step_hook=step_hook,
                speculator=speculator,
                budget=budget,
                instrumented=instrumented,
                recompute_hist=recompute_hist,
                queue_hist=queue_hist,
                chunk_queue_hist=chunk_queue_hist,
                tracer=tracer,
                chunk_start=chunk_start,
                chunk_step=chunk_step,
                chunk_merges=chunk_merges,
            )
        finally:
            # Close the pool (and unhook the ledger) on *every* exit
            # path — injected faults and guard trips included — so a
            # speculative run can never leak worker processes.
            if speculator is not None:
                speculator.close()
        if self._convergence is not None:
            self._sample_convergence(final=True)
        if tracer is not None:
            if step > chunk_step:
                tracer.complete(
                    "iterate_chunk",
                    chunk_start,
                    tracer.now() - chunk_start,
                    from_step=chunk_step,
                    to_step=step,
                    merges=self.stats.merges - chunk_merges,
                )
            tracer.complete(
                "iterate",
                iterate_offset,
                tracer.now() - iterate_offset,
                steps=step,
                stop_reason=self.stop_reason,
            )
        self.stats.iterate_seconds += time.perf_counter() - started
        self.stats.queue_front_pushes = self.queue.pushed_front
        self.stats.queue_back_pushes = self.queue.pushed_back
        self.stats.queue_compactions = self.queue.compactions
        self.stats.fusions = self.graph.fusions
        self._sync_feature_cache_stats()
        if instrumented:
            tel.emit(
                "info",
                "iterate_end",
                stop_reason=self.stop_reason,
                steps=step,
                seconds=round(self.stats.iterate_seconds, 6),
                merges=self.stats.merges,
                non_merges=self.stats.non_merges,
            )
            if tel.metrics is not None:
                tel.metrics.absorb_stats(self.stats)
                if self.hotspots is not None:
                    self.hotspots.export_metrics(tel.metrics)
        if self.flight is not None:
            self.flight.note_event(
                "iterate_end", stop_reason=self.stop_reason, steps=step
            )
        if trip is not None and raise_on_trip:
            raise trip
        return self._result()

    def _iterate_loop(
        self,
        *,
        guard,
        checkpointer,
        step_hook,
        speculator,
        budget,
        instrumented,
        recompute_hist,
        queue_hist,
        chunk_queue_hist,
        tracer,
        chunk_start,
        chunk_step,
        chunk_merges,
    ):
        """The §3.2 pop/process loop, extracted so :meth:`run` can hold
        the speculator in a try/finally.

        With *speculator* set, each pop first claims any validated
        speculative score for its key; the loop structure, pop order,
        push no-op semantics and every side effect stay exactly the
        serial ones — speculation only replaces the in-line
        :meth:`_compute` call with a proven-equal cached value. Returns
        ``(step, trip, chunk_start, chunk_step, chunk_merges)`` for the
        caller's final trace flush.
        """
        tel = self.telemetry
        # Hoisted like the telemetry extras: with the sketch detached
        # the loop body is the exact pre-observability code path.
        hotspots = self.hotspots
        step = 0
        trip: GuardTripped | None = None
        while self.queue:
            if self._convergence is not None:
                self._sample_convergence()
            if budget is not None and self.stats.recomputations >= budget:
                self.stop_reason = "budget"
                self._degrade(
                    DegradationEvent(
                        kind="budget",
                        detail=(
                            f"max_recomputations={budget} exhausted with "
                            f"{len(self.queue)} nodes still queued"
                        ),
                        recomputations=self.stats.recomputations,
                    )
                )
                break
            if guard is not None:
                try:
                    guard.check(
                        recomputations=self.stats.recomputations,
                        queue_size=len(self.queue),
                        graph_nodes=len(self.graph),
                    )
                except (BudgetExceeded, DeadlineExceeded) as exc:
                    self.stop_reason = exc.event.kind if exc.event else "guard"
                    if exc.event is not None:
                        self._degrade(exc.event)
                    trip = exc
                    break
            if step_hook is not None:
                step_hook(self, step)
            if speculator is not None:
                speculator.maybe_refill(self.queue)
            try:
                key = self.queue.pop()
            except QueueEmpty:  # lazy-discard race: only stale keys left
                break
            node = self.graph.get_key(key)
            if node is None or node.status is not NodeStatus.ACTIVE:
                # Drop (never block on) any in-flight speculation for a
                # key whose node died while queued — transitive merges
                # resolve whole swaths of queued pairs, and waiting on a
                # child for a result the loop won't use wastes the
                # wavefront.
                if speculator is not None:
                    speculator.forget(key)
                continue
            speculative = speculator.claim(key) if speculator is not None else None
            node.status = NodeStatus.INACTIVE
            pair_started = time.perf_counter() if hotspots is not None else 0.0
            if instrumented:
                if queue_hist is not None:
                    queue_hist.observe(len(self.queue) + 1)
                    step_started = time.perf_counter()
                changed = self._process(node, speculative=speculative)
                if recompute_hist is not None:
                    recompute_hist.observe(time.perf_counter() - step_started)
                if step % _ITERATE_CHUNK == _ITERATE_CHUNK - 1:
                    if chunk_queue_hist is not None:
                        chunk_queue_hist.observe(len(self.queue))
                    tel.emit(
                        "debug",
                        "iterate_progress",
                        step=step + 1,
                        queued=len(self.queue),
                        merges=self.stats.merges,
                        recomputations=self.stats.recomputations,
                    )
                    if tracer is not None:
                        now = tracer.now()
                        tracer.complete(
                            "iterate_chunk",
                            chunk_start,
                            now - chunk_start,
                            from_step=chunk_step,
                            to_step=step + 1,
                            merges=self.stats.merges - chunk_merges,
                        )
                        chunk_start = now
                        chunk_step = step + 1
                        chunk_merges = self.stats.merges
            else:
                changed = self._process(node, speculative=speculative)
            if hotspots is not None:
                hotspots.note_pair(
                    node.key, node.class_name, time.perf_counter() - pair_started
                )
            if speculator is not None and changed:
                speculator.note_commit(key, node.key)
            step += 1
            if checkpointer is not None:
                if checkpointer.maybe_save(self, step) is not None:
                    tel.emit("info", "checkpoint_saved", step=step)
                    tel.instant("checkpoint", step=step)
        return step, trip, chunk_start, chunk_step, chunk_merges

    def _make_speculator(self):
        """A speculative batched iterate executor, or ``None`` to run
        the loop serially (``iterate_workers=1``, or an environment
        the fork-based executor cannot run in — recorded as a
        ``speculation_fallback`` degradation, never an error)."""
        self.stats.iterate_workers = 1
        if self.config.iterate_workers <= 1:
            return None
        from ..perf.speculate import SpeculativeExecutor
        from ..runtime.supervisor import IterateSupervisor, RetryPolicy

        try:
            supervisor = IterateSupervisor(
                self,
                self.config.iterate_workers,
                RetryPolicy(
                    max_retries=self.config.max_task_retries,
                    task_timeout=self.config.task_timeout,
                    backoff_base=self.config.retry_backoff,
                ),
                telemetry=self.telemetry,
                on_degrade=self._degrade,
                chaos=self.chaos,
                relay=self._get_relay(),
                flight=self.flight,
            )
        except Exception as exc:
            self._degrade(
                DegradationEvent(
                    kind="speculation_fallback",
                    detail=f"serial iterate: {exc}",
                )
            )
            return None
        self.stats.iterate_workers = self.config.iterate_workers
        return SpeculativeExecutor(
            self,
            supervisor,
            batch=self.config.iterate_batch,
            telemetry=self.telemetry,
        )

    @classmethod
    def resume(
        cls,
        path: str | Path,
        *,
        store: ReferenceStore,
        domain: DomainModel,
        config: EngineConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> "Reconciler":
        """Rebuild an engine from a checkpoint written during a run.

        *store*, *domain* and *config* must match the original run (the
        checkpoint carries a configuration fingerprint and refuses a
        mismatch). Calling :meth:`run` on the returned engine continues
        from the checkpointed step and — because iteration is
        deterministic — converges to the same partition an
        uninterrupted run would have produced. *telemetry* is fresh
        runtime state, never part of the checkpoint: file-backed sinks
        open in append mode, so the continued run extends the original
        run's event log and audit trail coherently.
        """
        from ..runtime.checkpoint import load_checkpoint, restore_engine

        engine = cls(store, domain, config, telemetry=telemetry)
        restore_engine(engine, load_checkpoint(path))
        engine.telemetry.emit(
            "info",
            "resume",
            checkpoint=str(path),
            recomputations=engine.stats.recomputations,
            merges=engine.stats.merges,
        )
        return engine

    def _process(self, node: PairNode, speculative=None) -> bool:
        """Take the decision for one popped node.

        *speculative*, when given, is a validated
        :class:`~repro.perf.speculate.SpecResult` for this node: its
        score and capture stand in for :meth:`_compute` (every read the
        worker made is proven untouched since, so the value is exactly
        what the in-line compute would return). All side effects —
        marking, merging, propagation, provenance — always happen here,
        so a speculative step is byte-identical to a serial one.

        Returns True when the node's *observable* state changed (score
        or status), i.e. when neighbours that read this node during a
        speculation must be invalidated.
        """
        prov = self.telemetry.provenance
        # Flight-recorder decision ring: fed unconditionally (not just
        # under --provenance) so a crash bundle always carries the tail
        # of decisions leading up to the failure.
        fl = self.flight
        if self.uf.connected(node.left, node.right):
            node.status = NodeStatus.MERGED
            node.score = 1.0
            if fl is not None:
                fl.note_decision(node.key, node.class_name, "transitive_merge", 1.0)
            if prov is not None:
                trigger, trigger_pair = prov.take_activation(node.key)
                prov.record(
                    pair=node.key,
                    class_name=node.class_name,
                    decision="transitive_merge",
                    score=1.0,
                    threshold=self.domain.merge_threshold(node.class_name),
                    trigger=trigger,
                    trigger_pair=trigger_pair,
                    recompute_index=node.recompute_count,
                )
            return True
        old_score = node.score
        capture: dict | None = {} if prov is not None else None
        if speculative is not None:
            new_score = speculative.score
            if capture is not None and speculative.capture is not None:
                capture.update(speculative.capture)
        else:
            new_score = self._compute(node, capture)
        node.recompute_count += 1
        self.stats.recomputations += 1
        if new_score is None:  # a conflict: mark non-merge (or late merge)
            self._mark_non_merge(node)
            decision = (
                "transitive_merge"
                if node.status is NodeStatus.MERGED
                else "non_merge_conflict"
            )
            if fl is not None:
                fl.note_decision(node.key, node.class_name, decision, node.score)
            if prov is not None:
                self._record_decision(prov, node, capture, decision)
            return True
        # Monotone by construction; the max() enforces the §3.2
        # termination requirement even for imperfect domain functions.
        node.score = max(old_score, new_score)
        increased = node.score > old_score + self.config.epsilon
        if node.score >= self.domain.merge_threshold(node.class_name):
            self._merge(node)
            decision = (
                "merge" if node.status is NodeStatus.MERGED else "non_merge_enemy"
            )
            if fl is not None:
                fl.note_decision(node.key, node.class_name, decision, node.score)
            if prov is not None:
                self._record_decision(prov, node, capture, decision)
            return True
        if increased and self.config.propagate:
            for neighbour in self.graph.real_out_nodes(node):
                self._activate(neighbour, front=False, cause="real", source=node)
        if fl is not None:
            fl.note_decision(node.key, node.class_name, "defer", node.score)
        if prov is not None:
            self._record_decision(prov, node, capture, "defer")
        return node.score != old_score

    def _record_decision(
        self, prov, node: PairNode, capture: dict | None, decision: str
    ) -> None:
        """Append one audit record for the decision just taken."""
        capture = capture or {}
        trigger, trigger_pair = prov.take_activation(node.key)
        prov.record(
            pair=node.key,
            class_name=node.class_name,
            decision=decision,
            score=node.score,
            threshold=self.domain.merge_threshold(node.class_name),
            s_rv=capture.get("s_rv", 0.0),
            t_rv=self.domain.t_rv(node.class_name),
            strong_support=capture.get("strong", 0),
            weak_support=capture.get("weak", 0),
            channels=capture.get("channels", {}),
            trigger=trigger,
            trigger_pair=trigger_pair,
            recompute_index=node.recompute_count,
        )

    def _compute(self, node: PairNode, capture: dict | None = None) -> float | None:
        """S = S_rv + S_sb + S_wb (§4); None when marked non-merge.

        *capture*, when given (provenance enabled), is filled with the
        evidence the decision rested on — channel scores, S_rv and the
        boolean supports actually used — without computing anything the
        plain path would not.
        """
        config = self.config
        domain = self.domain
        left_values = self._element_values(node.left)
        right_values = self._element_values(node.right)
        if config.constraints and domain.conflict(
            node.class_name, left_values, right_values
        ):
            # Pure sentinel: the caller (:meth:`_process`) applies the
            # non-merge marking, so speculative workers can run
            # ``_compute`` without mutating their forked state.
            if capture is not None:
                capture["conflict"] = True
            return None
        evidence: dict[str, float] = {}
        key_match = False
        for channel in domain.atomic_channels(node.class_name):
            if not config.channel_enabled(channel.name):
                continue
            score = node.channel_score(channel.name)
            if score is None:
                continue
            evidence[channel.name] = score
            if channel.is_key and score >= 1.0:
                key_match = True
        for channel in domain.association_channels(node.class_name):
            if not config.channel_enabled(channel.name):
                continue
            score = self._assoc_score(node, channel)
            if score is not None:
                evidence[channel.name] = score
        s_rv = 1.0 if key_match else domain.rv_score(node.class_name, evidence)
        total = s_rv
        strong = weak = 0
        if s_rv >= domain.t_rv(node.class_name) and domain.boolean_evidence_allowed(
            node.class_name, left_values, right_values
        ):
            strong = self._strong_count(node)
            if strong:
                total += domain.beta(node.class_name) * strong
            if config.weak_enabled(node.class_name):
                weak = self._weak_count(node)
                if weak:
                    total += domain.gamma(node.class_name) * weak
        if capture is not None:
            capture["channels"] = dict(evidence)
            capture["s_rv"] = s_rv
            capture["strong"] = strong
            capture["weak"] = weak
        hotspots = self.hotspots
        if hotspots is not None:
            hotspots.note_channels(evidence)
        return min(total, 1.0)

    def _assoc_score(self, node: PairNode, channel) -> float | None:
        left_targets = self._element_assoc(node.left, channel.attr)
        right_targets = self._element_assoc(node.right, channel.attr)
        if not left_targets or not right_targets:
            return None
        left_elements = sorted({self._elem(t) for t in left_targets})
        right_elements = sorted({self._elem(t) for t in right_targets})
        recorder = self._read_recorder
        if recorder is not None:
            # The link structure read below is a function of the target
            # elements' roots and the linked nodes' scores; record the
            # roots once and every consulted pair node below.
            for element in left_elements:
                recorder.roots.add(self.uf.find(element))
            for element in right_elements:
                recorder.roots.add(self.uf.find(element))
        scored: list[tuple[float, str, str]] = []
        for element_l in left_elements:
            for element_r in right_elements:
                if self.uf.connected(element_l, element_r):
                    scored.append((1.0, element_l, element_r))
                    continue
                linked = self.graph.get(element_l, element_r)
                if recorder is not None:
                    recorder.pairs.add(
                        linked.key
                        if linked is not None
                        else self.graph.resolve(pair_key(element_l, element_r))
                    )
                if linked is not None and not linked.is_non_merge:
                    score = 1.0 if linked.is_merged else linked.score
                    if score > 0.0:
                        scored.append((score, element_l, element_r))
        if channel.aggregate == "max":
            return max((score for score, _, _ in scored), default=0.0)
        # mean_aligned: greedy one-to-one matching, normalised by the
        # larger link list so missing counterparts count against.
        scored.sort(key=lambda item: (-item[0], item[1], item[2]))
        used_left: set[str] = set()
        used_right: set[str] = set()
        total = 0.0
        for score, element_l, element_r in scored:
            if element_l in used_left or element_r in used_right:
                continue
            used_left.add(element_l)
            used_right.add(element_r)
            total += score
        return total / max(len(left_elements), len(right_elements))

    def _strong_count(self, node: PairNode) -> int:
        """|N_sb|: merged strong-boolean incoming neighbours, counted
        per *entity pair* — several citation-level pair nodes that all
        collapsed into one real-world article (or article pair) are one
        unit of evidence, not many."""
        seen_entity_pairs: set = set()
        recorder = self._read_recorder
        for neighbour in self.graph.strong_in_nodes(node):
            if recorder is not None:
                # The count depends on each neighbour's merged status
                # (flips via a commit on its key) and on its element
                # roots (the entity-pair dedup); record both.
                recorder.pairs.add(neighbour.key)
                recorder.roots.add(self.uf.find(neighbour.left))
                recorder.roots.add(self.uf.find(neighbour.right))
            if neighbour.is_merged:
                seen_entity_pairs.add(
                    pair_key(self.uf.find(neighbour.left), self.uf.find(neighbour.right))
                )
        return len(seen_entity_pairs)

    def _weak_count(self, node: PairNode) -> int:
        """Number of common contacts (distinct contact entities linked
        from both sides), the |N_wb| of §4."""
        if node.class_name not in self._weak_attrs:
            return 0
        left_roots = self._contact_roots(node.left, node.class_name)
        right_roots = self._contact_roots(node.right, node.class_name)
        recorder = self._read_recorder
        if recorder is not None:
            # Every contact root read feeds the common-contact count; a
            # later merge moving any of them must invalidate the score.
            recorder.roots.update(left_roots)
            recorder.roots.update(right_roots)
        if not left_roots or not right_roots:
            return 0
        common = left_roots & right_roots
        if not common:
            return 0
        exclude = {self.uf.find(node.left), self.uf.find(node.right)}
        if recorder is not None:
            recorder.roots.update(exclude)
        return len(common - exclude)

    def _mark_non_merge(self, node: PairNode) -> None:
        if self.uf.connected(node.left, node.right):
            # The clusters already merged through another path before
            # the conflict surfaced; negative evidence arrives too late.
            node.status = NodeStatus.MERGED
            node.score = 1.0
            return None
        node.status = NodeStatus.NON_MERGE
        self.stats.non_merges += 1
        self.telemetry.emit(
            "debug",
            "non_merge",
            left=node.left,
            right=node.right,
            class_name=node.class_name,
            reason="conflict",
        )
        try:
            self.uf.add_enemy(node.left, node.right)
        except ConstraintViolation:  # pragma: no cover - guarded above
            pass
        return None

    def _merge(self, node: PairNode) -> None:
        """A reconciliation decision: union, propagate, enrich."""
        if self.uf.are_enemies(node.left, node.right):
            node.status = NodeStatus.NON_MERGE
            self.stats.non_merges += 1
            return
        left_root = self.uf.find(node.left)
        right_root = self.uf.find(node.right)
        survivor = self.uf.union(left_root, right_root)
        if survivor is None:  # pragma: no cover - enemies checked above
            node.status = NodeStatus.NON_MERGE
            return
        absorbed = right_root if survivor == left_root else left_root
        node.status = NodeStatus.MERGED
        self.stats.merges += 1
        self.telemetry.emit(
            "debug",
            "merge",
            left=node.left,
            right=node.right,
            class_name=node.class_name,
            score=round(node.score, 6),
        )
        if self.config.propagate:
            self._propagate_merge(node)
        if self.config.enrich:
            self._enrich(survivor, absorbed)

    def _propagate_merge(self, node: PairNode) -> None:
        for neighbour in self.graph.strong_out_nodes(node):
            self._activate(
                neighbour,
                front=self.config.strong_to_front,
                cause="strong",
                source=node,
            )
        for neighbour in self.graph.weak_out_nodes(node):
            self._activate(neighbour, front=False, cause="weak", source=node)
        for neighbour in self.graph.real_out_nodes(node):
            self._activate(neighbour, front=False, cause="real", source=node)

    def _activate(
        self,
        node: PairNode,
        *,
        front: bool,
        cause: str = "seed",
        source: PairNode | None = None,
    ) -> None:
        if node.status in (NodeStatus.MERGED, NodeStatus.NON_MERGE):
            return
        if node.score >= 1.0:
            return
        prov = self.telemetry.provenance
        if prov is not None:
            prov.note_activation(
                node.key, cause, source.key if source is not None else None
            )
        node.status = NodeStatus.ACTIVE
        if front:
            self.queue.push_front(node.key)
        else:
            self.queue.push_back(node.key)

    def _enrich(self, survivor: str, absorbed: str) -> None:
        """§3.3: pool cluster state and fuse graph nodes locally."""
        members = self._members.setdefault(survivor, [survivor])
        members.extend(self._members.pop(absorbed, [absorbed]))
        self._values_cache.pop(survivor, None)
        self._values_cache.pop(absorbed, None)
        report = self.graph.merge_elements(
            survivor, absorbed, same_cluster=self.uf.connected
        )
        for intra_node in report.intra:
            # A pair that closed transitively is a merge decision too:
            # let it propagate like one.
            if self.config.propagate:
                self._propagate_merge(intra_node)
        for fused_node in report.reactivate:
            self.graph.drop_self_references(fused_node)
            self._activate(fused_node, front=False, cause="fusion")

    # ------------------------------------------------------------------
    # result
    # ------------------------------------------------------------------
    def partial_result(self) -> ReconciliationResult:
        """Finalize whatever has been decided so far.

        Every merge already taken is transitively closed by the
        union-find, so the partial partition is a valid (if
        conservative) answer; ``completed`` / ``stop_reason`` on the
        result say how far the run got. Used by the resilient wrapper
        after a guard trip.
        """
        return self._result()

    def _result(self) -> ReconciliationResult:
        clusters: dict[str, dict[str, list[str]]] = {
            class_name: {} for class_name in self.store.schema.class_names
        }
        for reference in self.store:
            root = self.uf.find(reference.ref_id)
            clusters[reference.class_name].setdefault(root, []).append(
                reference.ref_id
            )
        partitions = {
            class_name: sorted(
                (sorted(group) for group in groups.values()), key=lambda g: g[0]
            )
            for class_name, groups in clusters.items()
        }
        return ReconciliationResult(
            partitions=partitions,
            uf=self.uf,
            stats=self.stats,
            completed=self.stop_reason == "converged",
            stop_reason=self.stop_reason,
            degradations=list(self.stats.degradations),
        )
