"""Domain-model interface and engine configuration.

The dependency-graph engine is domain-agnostic (§4: "the similarity
functions are orthogonal to the dependency graph framework"). A
:class:`DomainModel` packages everything domain-specific:

* which atomic attribute pairs are *comparable* and how to compare
  them (:class:`AtomicChannel`, including cross-attribute channels
  such as name-vs-email),
* which association attributes feed real-valued evidence into which
  class (:class:`AssociationChannel`),
* which reconciliations *imply* which (:class:`StrongDependency`) and
  which merely *support* which (:class:`WeakDependency`),
* the S_rv combination function per class, the paper's per-class
  parameters (β, γ, t_rv), blocking keys, key attributes and
  constraints.

:class:`EngineConfig` holds the algorithm-level switches that the
experiments of §5.3 toggle (propagation, enrichment, constraints,
individual evidence channels).
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, replace

from .references import Reference
from .schema import Schema

__all__ = [
    "AtomicChannel",
    "AssociationChannel",
    "StrongDependency",
    "WeakDependency",
    "ClusterValues",
    "DomainModel",
    "EngineConfig",
    "Mode",
    "TRADITIONAL",
    "PROPAGATION",
    "MERGE",
    "FULL",
]

# Pooled attribute values of one cluster: attribute name -> values.
ClusterValues = Mapping[str, tuple[str, ...]]


@dataclass(frozen=True)
class AtomicChannel:
    """One stream of atomic-value evidence for pairs of one class.

    For symmetric channels ``left_attr == right_attr`` (name vs name).
    Cross channels compare different attributes (name vs email) and are
    evaluated in both directions.

    ``liberal_threshold`` is the low bar of §3.1: a value node is
    created only when the comparator scores at least this much, "in
    order not to lose important nodes" while pruning the graph.

    ``is_key`` marks channels whose exact match (score 1.0) alone
    implies reconciliation (§4: "some attributes serving as keys").

    The optional fast-path fields are pure optimisations wired by the
    domain (see :mod:`repro.perf`): ``features_left`` / ``features_right``
    map a raw value to precomputed features, ``fast_comparator(lf, rf,
    floor)`` must return the exact ``comparator`` score whenever that
    score is at least ``floor`` (anything below ``floor`` otherwise),
    and ``score_upper_bound(lf, rf)`` must never be below the true
    score. When ``fast_comparator`` is ``None`` the engine calls
    ``comparator`` directly.
    """

    name: str
    class_name: str
    left_attr: str
    right_attr: str
    comparator: Callable[[str, str], float]
    liberal_threshold: float = 0.5
    is_key: bool = False
    features_left: Callable[[str], object] | None = None
    features_right: Callable[[str], object] | None = None
    fast_comparator: Callable[[object, object, float], float] | None = None
    score_upper_bound: Callable[[object, object], float] | None = None

    @property
    def is_cross(self) -> bool:
        return self.left_attr != self.right_attr


@dataclass(frozen=True)
class AssociationChannel:
    """Real-valued evidence flowing from related pair nodes.

    For a pair of ``class_name`` references, the pair nodes of the
    references linked through ``attr`` feed the channel: e.g. Article
    pairs receive an ``authors`` channel aggregated over the aligned
    author pair nodes (Figure 2(a): m2..m4 -> m1) and a ``venue``
    channel from the venue pair node (m5 -> m1).

    ``aggregate`` is ``"mean_aligned"`` (greedy one-to-one alignment of
    linked references by current pair-node score, averaged over the
    smaller link list) or ``"max"`` (best single pair).
    """

    name: str
    class_name: str
    attr: str
    target_class: str
    aggregate: str = "mean_aligned"


@dataclass(frozen=True)
class StrongDependency:
    """Merging a ``source_class`` pair implies merging the pairs of
    references linked via ``attr`` (strong-boolean edges, §3.1).

    E.g. merging two Articles implies merging their aligned authors
    (attr ``authoredBy`` -> Person) and their venues (``publishedIn``
    -> Venue).

    ``ensure_target_nodes`` forces creation of the target pair node even
    when the targets share no similar atomic values. The paper needs
    this for venues: two venue mentions of reconciled articles
    "potentially refer to the same entity" (§3.1) no matter how their
    names look, and with t_rv = 0.1 the β boosts alone can carry them
    over the merge threshold (the Cora effect of §5.4). Author pairs,
    in contrast, are only merged "with similar names", so their
    dependency leaves the flag off.
    """

    source_class: str
    attr: str
    target_class: str
    ensure_target_nodes: bool = False


@dataclass(frozen=True)
class WeakDependency:
    """Shared associates boost a pair (weak-boolean edges, §3.1).

    For a pair of ``class_name`` references, every reconciled pair
    (x, y) with x linked from one side and y from the other through any
    attribute in ``attrs`` counts one unit of γ evidence — the paper's
    "common contact" count for persons via coAuthor and emailContact.
    """

    class_name: str
    attrs: tuple[str, ...]


class DomainModel(abc.ABC):
    """Everything the engine must know about one domain."""

    #: The domain schema (Figure 1(a) / Figure 5).
    schema: Schema

    # -- evidence wiring ------------------------------------------------
    @abc.abstractmethod
    def atomic_channels(self, class_name: str) -> tuple[AtomicChannel, ...]:
        """Atomic evidence channels for pairs of *class_name*."""

    @abc.abstractmethod
    def association_channels(self, class_name: str) -> tuple[AssociationChannel, ...]:
        """Real-valued association channels for pairs of *class_name*."""

    @abc.abstractmethod
    def strong_dependencies(self) -> tuple[StrongDependency, ...]:
        """All strong-boolean dependency templates of the domain."""

    @abc.abstractmethod
    def weak_dependencies(self) -> tuple[WeakDependency, ...]:
        """All weak-boolean dependency templates of the domain."""

    # -- scoring --------------------------------------------------------
    @abc.abstractmethod
    def rv_score(self, class_name: str, evidence: Mapping[str, float]) -> float:
        """Combine available channel scores into S_rv (Equation 1).

        *evidence* maps channel name to its (MAX-aggregated) score;
        missing channels are absent from the mapping. Implementations
        must be monotone: adding channels or raising scores never
        lowers the result (§3.2's termination requirement).
        """

    @abc.abstractmethod
    def merge_threshold(self, class_name: str) -> float:
        """Reference-pair merge threshold (paper: 0.85 for all)."""

    @abc.abstractmethod
    def beta(self, class_name: str) -> float:
        """Strong-boolean increment β (paper: 0.1; 0.2 for Venue)."""

    @abc.abstractmethod
    def gamma(self, class_name: str) -> float:
        """Weak-boolean increment γ (paper: 0.05)."""

    @abc.abstractmethod
    def t_rv(self, class_name: str) -> float:
        """Minimum S_rv for boolean evidence to apply (paper: 0.7 for
        Person/Article, 0.1 for Venue)."""

    # -- candidate generation & keys -------------------------------------
    @abc.abstractmethod
    def blocking_keys(self, reference: Reference) -> Iterable[str]:
        """Cheap keys; references sharing a key become candidate pairs
        (the canopy-style pruning of §3.1/§6)."""

    def key_values(self, reference: Reference) -> Iterable[str]:
        """Values whose exact equality identifies the entity (used for
        the §3.4 pre-merge optimisation). Default: none."""
        return ()

    def boolean_evidence_allowed(
        self, class_name: str, left: ClusterValues, right: ClusterValues
    ) -> bool:
        """Gate for S_sb / S_wb beyond the t_rv threshold (§4's
        "sophisticated function can require stricter conditions", e.g.
        rewarding person pairs only when both carry real names).
        Default: always allowed."""
        return True

    # -- negative evidence ------------------------------------------------
    def conflict(
        self, class_name: str, left: ClusterValues, right: ClusterValues
    ) -> bool:
        """Domain test for "these two clusters are distinct" given their
        pooled attribute values (constraints 2 and 3 of §5.3). Default:
        never."""
        return False

    def distinct_pairs(self, references: Iterable[Reference]) -> Iterable[tuple[str, str]]:
        """Pairs of reference ids guaranteed distinct a priori
        (constraint 1 of §5.3: co-authors of one paper). Default: none."""
        return ()

    # -- ordering ----------------------------------------------------------
    def class_order(self) -> tuple[str, ...]:
        """Order in which classes are seeded into the queue, chosen so a
        node precedes its outgoing real-valued neighbours (§3.2: compare
        authors and venues before articles). Default: schema order."""
        return self.schema.class_names


@dataclass(frozen=True)
class Mode:
    """One cell of the §5.3 mode dimension."""

    name: str
    propagate: bool
    enrich: bool


TRADITIONAL = Mode("Traditional", propagate=False, enrich=False)
PROPAGATION = Mode("Propagation", propagate=True, enrich=False)
MERGE = Mode("Merge", propagate=False, enrich=True)
FULL = Mode("Full", propagate=True, enrich=True)


@dataclass(frozen=True)
class EngineConfig:
    """Algorithm-level switches.

    The defaults are the full DepGraph configuration; the experiment
    harness derives InDepDec and the §5.3 ablation cells with
    :meth:`with_mode` and the ``disabled_*`` filters.
    """

    propagate: bool = True
    enrich: bool = True
    constraints: bool = True
    premerge_keys: bool = True
    #: minimum score increase that reactivates neighbours (§3.2's
    #: "small constant" that guarantees termination).
    epsilon: float = 1e-6
    #: evidence filters (by channel name / dependency endpoints).
    disabled_channels: frozenset[str] = frozenset()
    disabled_strong: frozenset[tuple[str, str]] = frozenset()
    disabled_weak: frozenset[str] = frozenset()
    #: safety valve for runaway propagation; None = unbounded.
    max_recomputations: int | None = None
    #: skip blocking buckets larger than this (a key shared by half the
    #: dataset carries no signal); None = unbounded.
    max_block_size: int | None = 1000
    #: §3.2's ordering heuristic: strong-boolean reactivations jump the
    #: queue. Disable to measure the heuristic's effect (plain FIFO).
    strong_to_front: bool = True
    #: worker processes for candidate-pair scoring during build; 1 runs
    #: serially. Any value yields byte-identical results (see
    #: :mod:`repro.perf.parallel`), so this is excluded from checkpoint
    #: fingerprints — a run may resume with a different worker count.
    workers: int = 1
    #: per-task deadline (seconds) for supervised parallel scoring; a
    #: chunk past it is treated as hung (pool rebuild + retry). None
    #: disables deadlines. Like ``workers``, the supervision knobs
    #: shape *how* the build executes, never *what* it computes, so
    #: none of them enter checkpoint fingerprints.
    task_timeout: float | None = None
    #: supervised re-executions of a failed scoring chunk before it is
    #: bisected to isolate the poisoned pair (see
    #: :mod:`repro.runtime.supervisor`).
    max_task_retries: int = 2
    #: base backoff delay (seconds) before the first retry; doubles per
    #: retry, with seeded jitter on top.
    retry_backoff: float = 0.05
    #: JSONL file poisoned (quarantined) pairs are written to during a
    #: supervised build; None skips the file (poisons still land in
    #: stats / degradations / provenance).
    poison_log: str | None = None
    #: worker processes for speculative scoring during *iterate*; 1 runs
    #: the plain serial loop. Speculation is a validated cache in front
    #: of ``_compute`` (see :mod:`repro.perf.speculate`), so any value
    #: yields byte-identical partitions, provenance, and merge counters;
    #: like ``workers`` it never enters checkpoint fingerprints.
    iterate_workers: int = 1
    #: in-flight speculation window: how many queue-head keys may be
    #: speculatively scored ahead of the commit cursor. Larger windows
    #: amortise IPC but speculate further past uncommitted merges
    #: (lower hit rate). Execution-shaping only — never affects results.
    iterate_batch: int = 64

    def with_mode(self, mode: Mode) -> "EngineConfig":
        return replace(self, propagate=mode.propagate, enrich=mode.enrich)

    def channel_enabled(self, channel_name: str) -> bool:
        return channel_name not in self.disabled_channels

    def strong_enabled(self, source_class: str, target_class: str) -> bool:
        return (source_class, target_class) not in self.disabled_strong

    def weak_enabled(self, class_name: str) -> bool:
        return class_name not in self.disabled_weak
