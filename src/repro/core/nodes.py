"""Dependency-graph nodes and edge types.

A node represents the similarity of a pair of *elements* (Definition
3.1). Two node flavours exist:

* **value nodes** — a pair of atomic attribute values (possibly of
  different attributes, e.g. a name against an email account). Their
  similarity is computed once by the attribute comparator and never
  changes.
* **pair nodes** — a pair of references of one class. Their similarity
  is recomputed as evidence accumulates; they carry the
  active/inactive/merged/non-merge status of §3.2 and §3.4.

Edges are directed and typed (§3.1's refinement): REAL (the target's
score depends on the source's *value*), STRONG (reconciling the source
implies reconciling the target), WEAK (reconciling the source merely
boosts the target).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["NodeStatus", "EdgeType", "PairKey", "pair_key", "ValueNode", "PairNode"]


class NodeStatus(enum.Enum):
    ACTIVE = "active"
    INACTIVE = "inactive"
    MERGED = "merged"
    NON_MERGE = "non-merge"


class EdgeType(enum.Enum):
    REAL = "real"
    STRONG = "strong-boolean"
    WEAK = "weak-boolean"


PairKey = tuple[str, str]


def pair_key(left: str, right: str) -> PairKey:
    """Canonical unordered key for an element pair."""
    return (left, right) if left <= right else (right, left)


@dataclass
class ValueNode:
    """Similarity of a pair of atomic attribute values.

    ``channel`` names the evidence channel this comparison feeds (e.g.
    ``"name"``, ``"email"``, ``"name_email"``); the channel determines
    which comparator produced ``score`` and which weight the S_rv
    function applies to it.
    """

    channel: str
    left_value: str
    right_value: str
    score: float

    @property
    def status(self) -> NodeStatus:
        # §3.2/§5.2: value nodes are merged only at exact similarity 1
        # (the paper sets the attribute merge-threshold to 1).
        return NodeStatus.MERGED if self.score >= 1.0 else NodeStatus.INACTIVE


@dataclass
class PairNode:
    """Similarity of a pair of references of one class.

    The node is keyed by the pair of *cluster roots*, so enrichment
    (§3.3) can re-key and fuse nodes as clusters grow. ``left`` and
    ``right`` always hold the current roots; ``key`` is their canonical
    unordered form.
    """

    class_name: str
    left: str
    right: str
    score: float = 0.0
    status: NodeStatus = NodeStatus.ACTIVE
    # Incoming dependencies by type. Value-node evidence is grouped per
    # channel; reference-pair dependencies reference PairKeys resolved
    # through the graph registry (so fusion updates them in one place).
    value_evidence: dict[str, list[ValueNode]] = field(default_factory=dict)
    real_in: set[PairKey] = field(default_factory=set)
    strong_in: set[PairKey] = field(default_factory=set)
    weak_in: set[PairKey] = field(default_factory=set)
    real_out: set[PairKey] = field(default_factory=set)
    strong_out: set[PairKey] = field(default_factory=set)
    weak_out: set[PairKey] = field(default_factory=set)
    recompute_count: int = 0

    @property
    def key(self) -> PairKey:
        return pair_key(self.left, self.right)

    @property
    def is_merged(self) -> bool:
        return self.status is NodeStatus.MERGED

    @property
    def is_non_merge(self) -> bool:
        return self.status is NodeStatus.NON_MERGE

    def add_value_evidence(self, value_node: ValueNode) -> None:
        self.value_evidence.setdefault(value_node.channel, []).append(value_node)

    def channel_score(self, channel: str) -> float | None:
        """MAX over the channel's value nodes (Equation 1's multi-value
        rule); ``None`` when the channel has no evidence."""
        nodes = self.value_evidence.get(channel)
        if not nodes:
            return None
        return max(node.score for node in nodes)

    def channels_present(self) -> frozenset[str]:
        return frozenset(
            channel for channel, nodes in self.value_evidence.items() if nodes
        )
