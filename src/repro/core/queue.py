"""The active-node queue driving similarity recomputation (§3.2).

The queue is a deque of pair-node keys with membership tracking:

* nodes reactivated as **strong-boolean** neighbours of a merge go to
  the *front* (the merge almost certainly implies theirs — resolve it
  before anything else),
* nodes reactivated as **real-valued** or **weak-boolean** neighbours
  go to the *back*,
* the initial seeding respects the heuristic that "a node always
  precedes its outgoing real-valued neighbours" (venues and persons
  before the articles whose scores depend on them).

Keys can be re-pointed by enrichment fusion; the queue therefore stores
keys, and the engine resolves them to live nodes (dropping keys whose
node was fused away).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from ..runtime.errors import QueueEmpty
from .nodes import PairKey

__all__ = ["ActiveQueue"]



# Below this many deque entries a compaction saves nothing measurable;
# skipping keeps tiny queues allocation-free.
_COMPACT_MIN_ENTRIES = 32


class ActiveQueue:
    """Deque of pair-node keys with O(1) membership tests."""

    def __init__(self, initial: Iterable[PairKey] = ()) -> None:
        self._deque: deque[PairKey] = deque()
        self._members: set[PairKey] = set()
        self.pushed_front = 0
        self.pushed_back = 0
        #: deque rebuilds triggered by stale-entry accumulation.
        self.compactions = 0
        #: monotone count of successful :meth:`discard` calls; lets the
        #: speculative executor skip dead-entry sweeps when nothing was
        #: discarded since its last sweep. Not persisted: both sides of
        #: that comparison restart from scratch on resume.
        self.discards = 0
        for key in initial:
            self.push_back(key)

    def __len__(self) -> int:
        # Live keys only: stale deque entries left behind by
        # :meth:`discard` don't count as pending work.
        return len(self._members)

    def __bool__(self) -> bool:
        return bool(self._members)

    def __contains__(self, key: PairKey) -> bool:
        return key in self._members

    def push_back(self, key: PairKey) -> bool:
        """Enqueue at the back; no-op (False) when already queued."""
        if key in self._members:
            return False
        self._members.add(key)
        self._deque.append(key)
        self.pushed_back += 1
        return True

    def push_front(self, key: PairKey) -> bool:
        """Enqueue at the front; no-op (False) when already queued.

        Used for strong-boolean reactivation: a merge that *implies*
        another merge should be resolved immediately so its
        consequences propagate before unrelated work.
        """
        if key in self._members:
            return False
        self._members.add(key)
        self._deque.appendleft(key)
        self.pushed_front += 1
        return True

    def pop(self) -> PairKey:
        """Dequeue the first *live* key.

        Stale entries — keys left in the deque by the lazy
        :meth:`discard` — are dropped silently on the way; an exhausted
        queue raises a typed :class:`~repro.runtime.errors.QueueEmpty`
        rather than a bare ``IndexError``.
        """
        entries = self._deque
        members = self._members
        while entries:
            key = entries.popleft()
            if key in members:
                members.discard(key)
                return key
        raise QueueEmpty("active queue has no live keys")

    def peek_batch(self, limit: int, max_scan: int | None = None) -> list[PairKey]:
        """The first *limit* live keys in pop order, without removing
        them.

        Non-destructive on purpose: the iterate loop's push no-op
        semantics (re-activating a queued key must not re-enqueue it)
        and front/back ordering only stay byte-identical to the serial
        run if the queue itself is never drained ahead of commits.
        Speculation peeks here, scores in parallel, and lets the
        ordinary :meth:`pop` loop consume the keys one by one.

        *max_scan* bounds how many deque entries are examined — a
        caller peeking every few pops cannot afford an unbounded stale
        sweep on a mostly-consumed queue. A short read is fine for the
        speculative executor: keys beyond the bound surface on a later
        peek once the head advances.
        """
        if limit <= 0:
            return []
        members = self._members
        seen: set[PairKey] = set()
        batch: list[PairKey] = []
        scanned = 0
        for key in self._deque:
            if max_scan is not None:
                scanned += 1
                if scanned > max_scan:
                    break
            if key in members and key not in seen:
                seen.add(key)
                batch.append(key)
                if len(batch) >= limit:
                    break
        return batch

    def discard(self, key: PairKey) -> None:
        """Remove *key* wherever it sits (used when fusion deletes its
        node). Lazy strategy: drop membership now; a stale key left in
        the deque is skipped at pop time by the engine's liveness
        check. When stale entries outnumber live ones the deque is
        compacted so a fusion-heavy run can't leak deque slots for its
        whole lifetime."""
        if key in self._members:
            self._members.discard(key)
            self.discards += 1
            self._maybe_compact()

    def _maybe_compact(self) -> None:
        entries = len(self._deque)
        if entries < _COMPACT_MIN_ENTRIES:
            return
        if (entries - len(self._members)) * 2 <= entries:
            return
        members = self._members
        seen: set[PairKey] = set()
        live: list[PairKey] = []
        for key in self._deque:
            if key in members and key not in seen:
                seen.add(key)
                live.append(key)
        self._deque = deque(live)
        self.compactions += 1

    def is_live(self, key: PairKey) -> bool:
        return key in self._members

    # -- checkpointing ---------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready snapshot: live keys in pop order, plus counters."""
        seen: set[PairKey] = set()
        entries: list[list[str]] = []
        for key in self._deque:
            if key in self._members and key not in seen:
                seen.add(key)
                entries.append(list(key))
        return {
            "entries": entries,
            "pushed_front": self.pushed_front,
            "pushed_back": self.pushed_back,
            "compactions": self.compactions,
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "ActiveQueue":
        queue = cls(tuple(entry) for entry in snapshot["entries"])
        queue.pushed_front = snapshot["pushed_front"]
        queue.pushed_back = snapshot["pushed_back"]
        # .get(): snapshots written before the compaction counter
        # existed restore cleanly as zero.
        queue.compactions = snapshot.get("compactions", 0)
        return queue
