"""The active-node queue driving similarity recomputation (§3.2).

The queue is a deque of pair-node keys with membership tracking:

* nodes reactivated as **strong-boolean** neighbours of a merge go to
  the *front* (the merge almost certainly implies theirs — resolve it
  before anything else),
* nodes reactivated as **real-valued** or **weak-boolean** neighbours
  go to the *back*,
* the initial seeding respects the heuristic that "a node always
  precedes its outgoing real-valued neighbours" (venues and persons
  before the articles whose scores depend on them).

Keys can be re-pointed by enrichment fusion; the queue therefore stores
keys, and the engine resolves them to live nodes (dropping keys whose
node was fused away).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from ..runtime.errors import QueueEmpty
from .nodes import PairKey

__all__ = ["ActiveQueue"]


class ActiveQueue:
    """Deque of pair-node keys with O(1) membership tests."""

    def __init__(self, initial: Iterable[PairKey] = ()) -> None:
        self._deque: deque[PairKey] = deque()
        self._members: set[PairKey] = set()
        self.pushed_front = 0
        self.pushed_back = 0
        for key in initial:
            self.push_back(key)

    def __len__(self) -> int:
        # Live keys only: stale deque entries left behind by
        # :meth:`discard` don't count as pending work.
        return len(self._members)

    def __bool__(self) -> bool:
        return bool(self._members)

    def __contains__(self, key: PairKey) -> bool:
        return key in self._members

    def push_back(self, key: PairKey) -> bool:
        """Enqueue at the back; no-op (False) when already queued."""
        if key in self._members:
            return False
        self._members.add(key)
        self._deque.append(key)
        self.pushed_back += 1
        return True

    def push_front(self, key: PairKey) -> bool:
        """Enqueue at the front; no-op (False) when already queued.

        Used for strong-boolean reactivation: a merge that *implies*
        another merge should be resolved immediately so its
        consequences propagate before unrelated work.
        """
        if key in self._members:
            return False
        self._members.add(key)
        self._deque.appendleft(key)
        self.pushed_front += 1
        return True

    def pop(self) -> PairKey:
        """Dequeue the first *live* key.

        Stale entries — keys left in the deque by the lazy
        :meth:`discard` — are dropped silently on the way; an exhausted
        queue raises a typed :class:`~repro.runtime.errors.QueueEmpty`
        rather than a bare ``IndexError``.
        """
        entries = self._deque
        members = self._members
        while entries:
            key = entries.popleft()
            if key in members:
                members.discard(key)
                return key
        raise QueueEmpty("active queue has no live keys")

    def discard(self, key: PairKey) -> None:
        """Remove *key* wherever it sits (used when fusion deletes its
        node). Lazy strategy: drop membership now; a stale key left in
        the deque is skipped at pop time by the engine's liveness
        check."""
        self._members.discard(key)

    def is_live(self, key: PairKey) -> bool:
        return key in self._members

    # -- checkpointing ---------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready snapshot: live keys in pop order, plus counters."""
        seen: set[PairKey] = set()
        entries: list[list[str]] = []
        for key in self._deque:
            if key in self._members and key not in seen:
                seen.add(key)
                entries.append(list(key))
        return {
            "entries": entries,
            "pushed_front": self.pushed_front,
            "pushed_back": self.pushed_back,
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "ActiveQueue":
        queue = cls(tuple(entry) for entry in snapshot["entries"])
        queue.pushed_front = snapshot["pushed_front"]
        queue.pushed_back = snapshot["pushed_back"]
        return queue
