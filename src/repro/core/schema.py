"""Schema model: classes with atomic and association attributes.

Mirrors §2.1 of the paper: a domain schema is a set of *classes*, each
with *atomic* attributes (string/int values) and *association*
attributes (links to instances of other classes). Figure 1(a) is
expressed as::

    PIM_SCHEMA = Schema([
        SchemaClass("Person", [
            Attribute.atomic("name"),
            Attribute.atomic("email"),
            Attribute.association("coAuthor", target="Person"),
            Attribute.association("emailContact", target="Person"),
        ]),
        ...
    ])
"""

from __future__ import annotations

import enum
from collections.abc import Iterable
from dataclasses import dataclass, field

__all__ = ["AttributeKind", "Attribute", "SchemaClass", "Schema", "SchemaError"]


class SchemaError(ValueError):
    """Raised for ill-formed schemas or schema lookups that fail."""


class AttributeKind(enum.Enum):
    ATOMIC = "atomic"
    ASSOCIATION = "association"


@dataclass(frozen=True)
class Attribute:
    """One attribute of a class.

    All attributes are multi-valued (a reference holds a *set* of
    values per attribute, possibly empty), matching the paper's model
    where e.g. a person reference may carry several email addresses.
    """

    name: str
    kind: AttributeKind
    target: str | None = None  # target class name, for associations

    @staticmethod
    def atomic(name: str) -> "Attribute":
        return Attribute(name=name, kind=AttributeKind.ATOMIC)

    @staticmethod
    def association(name: str, *, target: str) -> "Attribute":
        return Attribute(name=name, kind=AttributeKind.ASSOCIATION, target=target)

    @property
    def is_atomic(self) -> bool:
        return self.kind is AttributeKind.ATOMIC

    @property
    def is_association(self) -> bool:
        return self.kind is AttributeKind.ASSOCIATION


@dataclass(frozen=True)
class SchemaClass:
    """A class with an ordered set of attributes."""

    name: str
    attributes: tuple[Attribute, ...]

    def __init__(self, name: str, attributes: Iterable[Attribute]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", tuple(attributes))
        seen: set[str] = set()
        for attribute in self.attributes:
            if attribute.name in seen:
                raise SchemaError(
                    f"duplicate attribute {attribute.name!r} in class {name!r}"
                )
            seen.add(attribute.name)

    def attribute(self, name: str) -> Attribute:
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise SchemaError(f"class {self.name!r} has no attribute {name!r}")

    def has_attribute(self, name: str) -> bool:
        return any(attribute.name == name for attribute in self.attributes)

    @property
    def atomic_attributes(self) -> tuple[Attribute, ...]:
        return tuple(a for a in self.attributes if a.is_atomic)

    @property
    def association_attributes(self) -> tuple[Attribute, ...]:
        return tuple(a for a in self.attributes if a.is_association)


@dataclass(frozen=True)
class Schema:
    """A set of classes; association targets are validated on creation."""

    classes: tuple[SchemaClass, ...] = field(default_factory=tuple)

    def __init__(self, classes: Iterable[SchemaClass]):
        object.__setattr__(self, "classes", tuple(classes))
        names = {cls.name for cls in self.classes}
        if len(names) != len(self.classes):
            raise SchemaError("duplicate class names in schema")
        for cls in self.classes:
            for attribute in cls.association_attributes:
                if attribute.target not in names:
                    raise SchemaError(
                        f"{cls.name}.{attribute.name} targets unknown class "
                        f"{attribute.target!r}"
                    )

    def __iter__(self):
        return iter(self.classes)

    def __contains__(self, name: str) -> bool:
        return any(cls.name == name for cls in self.classes)

    def cls(self, name: str) -> SchemaClass:
        for schema_class in self.classes:
            if schema_class.name == name:
                return schema_class
        raise SchemaError(f"schema has no class {name!r}")

    @property
    def class_names(self) -> tuple[str, ...]:
        return tuple(cls.name for cls in self.classes)
