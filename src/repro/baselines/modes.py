"""The §5.3 ablation grid: evidence levels × algorithm modes.

Along the evidence dimension (cumulative, Person-focused):

* ``ATTR_WISE`` — person names and emails compared independently (this
  is InDepDec's evidence).
* ``NAME_EMAIL`` — adds the cross-attribute name-vs-email channel.
* ``ARTICLE`` — adds the person-article association (reconciled
  articles imply/boost author reconciliation).
* ``CONTACT`` — adds common email-contacts and co-authors.

Along the mode dimension: TRADITIONAL / PROPAGATION / MERGE / FULL as
defined in §5.3 (reconciliation propagation and reference enrichment
toggled independently).

``Attr-wise × Traditional`` equals InDepDec (minus constraints);
``Contact × Full`` equals DepGraph.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.model import FULL, MERGE, PROPAGATION, TRADITIONAL, EngineConfig, Mode

__all__ = [
    "EvidenceLevel",
    "ATTR_WISE",
    "NAME_EMAIL",
    "ARTICLE",
    "CONTACT",
    "EVIDENCE_LEVELS",
    "MODES",
    "ablation_config",
]


@dataclass(frozen=True)
class EvidenceLevel:
    """A cumulative evidence variation of §5.3."""

    name: str
    disable_cross: bool
    disable_article: bool
    disable_contact: bool


ATTR_WISE = EvidenceLevel(
    "Attr-wise", disable_cross=True, disable_article=True, disable_contact=True
)
NAME_EMAIL = EvidenceLevel(
    "Name&Email", disable_cross=False, disable_article=True, disable_contact=True
)
ARTICLE = EvidenceLevel(
    "Article", disable_cross=False, disable_article=False, disable_contact=True
)
CONTACT = EvidenceLevel(
    "Contact", disable_cross=False, disable_article=False, disable_contact=False
)

EVIDENCE_LEVELS: tuple[EvidenceLevel, ...] = (ATTR_WISE, NAME_EMAIL, ARTICLE, CONTACT)
MODES: tuple[Mode, ...] = (TRADITIONAL, PROPAGATION, MERGE, FULL)


def ablation_config(
    evidence: EvidenceLevel,
    mode: Mode,
    *,
    constraints: bool = True,
    base: EngineConfig | None = None,
) -> EngineConfig:
    """Engine config for one cell of the Table-5 / Figure-6 grid.

    Only Person-side evidence is varied; the article/venue machinery
    stays on in every cell (the experiment measures Person partitions).
    """
    config = base or EngineConfig()
    disabled_channels = set(config.disabled_channels)
    disabled_strong = set(config.disabled_strong)
    disabled_weak = set(config.disabled_weak)
    if evidence.disable_cross:
        disabled_channels.add("name_email")
    if evidence.disable_article:
        disabled_strong.add(("Article", "Person"))
    if evidence.disable_contact:
        disabled_weak.add("Person")
    config = replace(
        config,
        constraints=constraints,
        disabled_channels=frozenset(disabled_channels),
        disabled_strong=frozenset(disabled_strong),
        disabled_weak=frozenset(disabled_weak),
    )
    return config.with_mode(mode)
