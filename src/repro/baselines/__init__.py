"""Baselines and ablations: InDepDec (§5.2) and the §5.3 mode grid."""

from .indepdec import indepdec_config
from .modes import (
    ARTICLE,
    ATTR_WISE,
    CONTACT,
    EVIDENCE_LEVELS,
    MODES,
    NAME_EMAIL,
    EvidenceLevel,
    ablation_config,
)

__all__ = [
    "indepdec_config",
    "ARTICLE",
    "ATTR_WISE",
    "CONTACT",
    "EVIDENCE_LEVELS",
    "MODES",
    "NAME_EMAIL",
    "EvidenceLevel",
    "ablation_config",
]
