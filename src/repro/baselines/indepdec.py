"""The InDepDec baseline (§5.2).

InDepDec is "a candidate standard reference reconciliation approach"
(Hernandez & Stolfo's merge/purge, McCallum et al.'s reference
matching): every class reconciled in isolation, every pair decided
independently from the same attribute-wise similarity functions and
thresholds as DepGraph, followed by a transitive closure. Concretely
that means, relative to the full engine:

* no cross-attribute evidence (name-vs-email off),
* no association evidence (author/venue channels off),
* no strong- or weak-boolean dependencies,
* no reconciliation propagation, no reference enrichment,
* no constraints.

Key attributes are still honoured ("two references are reconciled if
they agree on key values", §5.4), which is why InDepDec keeps high
precision on Cora.
"""

from __future__ import annotations

from ..core.model import TRADITIONAL, DomainModel, EngineConfig

__all__ = ["indepdec_config"]


def indepdec_config(domain: DomainModel) -> EngineConfig:
    """Engine configuration realising InDepDec for *domain*.

    Derives the disable lists from the domain's own wiring, so the
    baseline stays in sync with whatever channels the domain defines.
    """
    cross_and_assoc: set[str] = set()
    for class_name in domain.schema.class_names:
        for channel in domain.atomic_channels(class_name):
            if channel.is_cross:
                cross_and_assoc.add(channel.name)
        for channel in domain.association_channels(class_name):
            cross_and_assoc.add(channel.name)
    strong = {
        (dependency.source_class, dependency.target_class)
        for dependency in domain.strong_dependencies()
    }
    weak = {dependency.class_name for dependency in domain.weak_dependencies()}
    return EngineConfig(
        constraints=False,
        disabled_channels=frozenset(cross_and_assoc),
        disabled_strong=frozenset(strong),
        disabled_weak=frozenset(weak),
    ).with_mode(TRADITIONAL)
