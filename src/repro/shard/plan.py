"""Shard planning: closure-atomic components of the interaction graph.

Rastogi et al. (*Large-Scale Collective Entity Matching*) scale
collective ER by running the collective algorithm per block and
exchanging messages across blocks until fixpoint. The DepGraph engine
can go one better: when shards are unions of *connected components of
the interaction graph*, no dependency edge, enemy constraint, enrichment
read or value-evidence read ever crosses a shard — each shard's engine
run is provably the projection of the whole-graph run onto its
references, so the merged result is byte-identical to serial and the
cross-shard fixpoint converges in its first round with zero messages.

The interaction graph links two references when the engine could ever
relate them:

* **co-blocking** — members of one blocking block (*including* blocks
  over ``max_block_size``: the engine skips their pairs, and keeping an
  oversized block shard-pure is exactly what makes each shard's index
  skip it too);
* **key premerge** — references sharing a ``key_values`` key are
  unioned before the build, so their clusters are one element;
* **association** — a reference and each reference it points at; this
  covers strong/weak dependency wiring and enrichment's contact pools,
  because both walk association attributes;
* **a-priori distinct pairs** — an enemy constraint is engine state the
  pair's shard must own.

Components are packed into ``shards`` balanced bins by greedy
longest-processing-time using candidate-pair counts from the per-class
``block_sizes`` skew data as weights — the same quadratic-cost model the
hotspot sketch uses. Packing is deterministic: components are ordered by
(weight desc, smallest reference id) and ties between bins break toward
the lowest bin index.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.blocking import BlockingIndex
from ..core.nodes import PairKey, pair_key
from ..core.partition import UnionFind

__all__ = ["ShardPlan", "plan_shards"]


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic assignment of every reference to one shard."""

    shards: int
    #: ref_id -> shard index.
    assignment: dict[str, int]
    component_count: int
    #: per-shard candidate-pair weight (the packing objective).
    weights: tuple[int, ...]
    #: per-shard reference counts.
    reference_counts: tuple[int, ...]
    #: candidate pairs straddling two shards — always empty under the
    #: component planner; non-empty only for hand-made split plans.
    cut_pairs: tuple[PairKey, ...] = ()
    #: True when every interaction-graph component lives inside one
    #: shard. This — not ``cut_pairs`` being empty — is the licence to
    #: skip the cross-shard fixpoint: a split plan can have zero
    #: candidate pairs on the cut while association or dependency links
    #: still cross shards.
    component_closed: bool = True
    #: interaction-graph components straddling two or more shards.
    split_components: int = 0
    #: total candidate pairs across all shards plus the cut.
    candidate_pairs: int = 0
    #: Gini coefficient of the per-shard weights (0 = perfectly even).
    gini: float = 0.0
    #: per-shard sorted reference-id lists, for workers and tests.
    members: tuple[tuple[str, ...], ...] = field(default=(), repr=False)

    def shard_of(self, ref_id: str) -> int:
        return self.assignment[ref_id]

    @property
    def cut_fraction(self) -> float:
        if not self.candidate_pairs:
            return 0.0
        return len(self.cut_pairs) / self.candidate_pairs

    def describe(self) -> dict:
        """The manifest / bench view of the plan."""
        return {
            "shards": self.shards,
            "components": self.component_count,
            "weights": list(self.weights),
            "references": list(self.reference_counts),
            "candidate_pairs": self.candidate_pairs,
            "cut_pairs": len(self.cut_pairs),
            "cut_fraction": round(self.cut_fraction, 6),
            "component_closed": self.component_closed,
            "split_components": self.split_components,
            "gini": round(self.gini, 6),
        }


def _gini(weights) -> float:
    """Mean absolute difference over twice the mean — 0 for perfectly
    balanced shards, approaching 1 when one shard holds everything."""
    values = sorted(weights)
    total = sum(values)
    n = len(values)
    if n < 2 or total == 0:
        return 0.0
    # Sorted form: sum_i (2i - n + 1) * x_i over (n * total).
    weighted = sum((2 * i - n + 1) * value for i, value in enumerate(values))
    return weighted / (n * total)


def _link_chain(uf: UnionFind, members) -> None:
    iterator = iter(members)
    first = next(iterator, None)
    if first is None:
        return
    for other in iterator:
        uf.union(first, other)


def _class_indexes(store, domain, max_block_size) -> dict[str, BlockingIndex]:
    indexes: dict[str, BlockingIndex] = {}
    for class_name in store.schema.class_names:
        index = BlockingIndex(max_block_size=max_block_size)
        for reference in store.of_class(class_name):
            index.add(reference.ref_id, domain.blocking_keys(reference))
        indexes[class_name] = index
    return indexes


def _interaction_union(store, domain, indexes) -> UnionFind:
    uf = UnionFind()
    for reference in store:
        uf.find(reference.ref_id)  # register singletons
    for class_name in store.schema.class_names:
        for _key, members in indexes[class_name].iter_blocks():
            _link_chain(uf, members)
    key_buckets: dict[str, list[str]] = {}
    for reference in store:
        for key_value in domain.key_values(reference):
            key_buckets.setdefault(key_value, []).append(reference.ref_id)
    for key_value in sorted(key_buckets):
        _link_chain(uf, key_buckets[key_value])
    for reference in store:
        schema_class = store.schema.cls(reference.class_name)
        for attribute in schema_class.association_attributes:
            for target in reference.get(attribute.name):
                uf.union(reference.ref_id, target)
    for left, right in domain.distinct_pairs(store):
        uf.union(left, right)
    return uf


def _component_weights(components, assignment_of_root, indexes) -> dict:
    """Candidate-pair weight per component root, from block sizes.

    Every block lives inside one component (its members are chained),
    so a block's pair count attributes cleanly to the component of its
    first member. Oversized blocks contribute nothing — the engine
    skips their pairs, so they cost nothing either."""
    weights = {root: 0 for root in components}
    for index in indexes.values():
        max_size = index._max_block_size
        for _key, members in index.iter_blocks():
            size = len(members)
            if size < 2 or (max_size is not None and size > max_size):
                continue
            root = assignment_of_root(members[0])
            weights[root] += size * (size - 1) // 2
    return weights


def plan_shards(
    store,
    domain,
    *,
    shards: int,
    max_block_size: int | None = None,
    assignment: dict[str, int] | None = None,
) -> ShardPlan:
    """Partition *store* into *shards* shards.

    Default: closure-atomic components packed by greedy LPT (see module
    docstring) — zero cut pairs, byte-identical to serial by
    construction. An explicit *assignment* (ref_id -> shard) overrides
    the packing — used by tests to force components apart and exercise
    the cross-shard fixpoint; everything else (weights, cut pairs,
    Gini) is still computed honestly for it.
    """
    shards = max(1, int(shards))
    indexes = _class_indexes(store, domain, max_block_size)
    uf = _interaction_union(store, domain, indexes)

    components: dict[str, list[str]] = {}
    for reference in store:
        components.setdefault(uf.find(reference.ref_id), []).append(
            reference.ref_id
        )
    component_weights = _component_weights(
        components, uf.find, indexes
    )

    if assignment is None:
        # Greedy LPT over (weight + member count): the member count
        # keeps pairless singletons flowing to the emptiest bin too.
        order = sorted(
            components,
            key=lambda root: (
                -(component_weights[root] + len(components[root])),
                min(components[root]),
            ),
        )
        loads = [0] * shards
        assignment = {}
        for root in order:
            target = min(range(shards), key=lambda i: (loads[i], i))
            loads[target] += component_weights[root] + len(components[root])
            for ref_id in components[root]:
                assignment[ref_id] = target
    else:
        assignment = dict(assignment)
        missing = [ref.ref_id for ref in store if ref.ref_id not in assignment]
        if missing:
            raise ValueError(
                f"explicit shard assignment misses {len(missing)} references "
                f"(first: {missing[0]!r})"
            )
        bad = [ref_id for ref_id, shard in assignment.items()
               if not 0 <= shard < shards]
        if bad:
            raise ValueError(
                f"shard assignment out of range for {bad[0]!r} "
                f"(shards={shards})"
            )

    shards_of_component: dict[str, set[int]] = {}
    for root, ref_ids in components.items():
        shards_of_component[root] = {assignment[ref_id] for ref_id in ref_ids}
    split_components = sum(
        1 for spread in shards_of_component.values() if len(spread) > 1
    )

    weights = [0] * shards
    counts = [0] * shards
    cut: list[PairKey] = []
    total_pairs = 0
    for index in indexes.values():
        for left, right in index.pairs():
            total_pairs += 1
            if assignment[left] == assignment[right]:
                weights[assignment[left]] += 1
            else:
                cut.append(pair_key(left, right))
    for ref_id, shard in assignment.items():
        counts[shard] += 1

    members: list[tuple[str, ...]] = [() for _ in range(shards)]
    grouped: dict[int, list[str]] = {}
    for reference in store:
        grouped.setdefault(assignment[reference.ref_id], []).append(
            reference.ref_id
        )
    for shard, refs in grouped.items():
        members[shard] = tuple(refs)

    return ShardPlan(
        shards=shards,
        assignment=assignment,
        component_count=len(components),
        weights=tuple(weights),
        reference_counts=tuple(counts),
        cut_pairs=tuple(sorted(cut)),
        component_closed=split_components == 0,
        split_components=split_components,
        candidate_pairs=total_pairs,
        gini=_gini(weights),
        members=tuple(members),
    )
