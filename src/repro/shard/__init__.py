"""Sharded reconciliation: partition, run per-shard engines, reconcile
the cut to fixpoint, merge back a serial-equivalent run.

See :mod:`repro.shard.plan` for the closure-atomic component argument
that makes the merged result byte-identical to serial, and DESIGN.md's
"Sharded execution" section for the full walkthrough.
"""

from .fixpoint import FixpointOutcome, cross_shard_fixpoint
from .merge import (
    MergedRun,
    build_sharded_manifest,
    canonical_provenance,
    merge_partitions,
    merge_provenance,
    merge_stats,
    merged_result,
)
from .plan import ShardPlan, plan_shards
from .runner import ShardOutcome, ShardedRun, run_sharded, shard_checkpoint_dir

__all__ = [
    "ShardPlan",
    "plan_shards",
    "ShardOutcome",
    "ShardedRun",
    "run_sharded",
    "shard_checkpoint_dir",
    "FixpointOutcome",
    "cross_shard_fixpoint",
    "merge_partitions",
    "merge_stats",
    "merge_provenance",
    "canonical_provenance",
    "merged_result",
    "MergedRun",
    "build_sharded_manifest",
]
