"""Sharded execution: one full DepGraph engine per shard.

The runner takes a :class:`~repro.shard.plan.ShardPlan`, slices the
reference store into per-shard sub-stores (preserving store order, the
determinism anchor), runs a complete engine per shard — serially
in-process, or each shard in its own forked worker process when
``shard_workers > 1`` — then reconciles the cut with
:func:`~repro.shard.fixpoint.cross_shard_fixpoint` and hands everything
to :mod:`repro.shard.merge`.

Supervision mirrors the build scorer's ladder: a shard process that
dies or raises is retried **in-process in the parent** (the rung that
cannot lose a process), recorded as a ``shard_fallback`` degradation.
Checkpoints nest one directory per shard (``<dir>/shard-<i>/``) and
``resume=True`` resumes every shard that left a checkpoint behind —
shards that already finished before a crash simply re-run from their
checkpointed tail or from scratch, converging to the identical result
either way.
"""

from __future__ import annotations

import resource
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path

from ..core.engine import EngineStats, Reconciler
from ..core.model import EngineConfig
from ..core.references import ReferenceStore
from ..obs.provenance import ProvenanceLog
from ..obs.telemetry import Telemetry
from ..perf.parallel import domain_spec, rebuild_domain
from ..runtime.guards import DegradationEvent
from .fixpoint import FixpointOutcome, cross_shard_fixpoint
from .plan import ShardPlan, plan_shards

__all__ = ["ShardOutcome", "ShardedRun", "run_sharded", "shard_checkpoint_dir"]


def shard_checkpoint_dir(root: str | Path, shard: int) -> Path:
    """Where shard *shard* checkpoints under a sharded run's root."""
    return Path(root) / f"shard-{shard}"


@dataclass
class ShardOutcome:
    """Everything one finished shard engine ships back to the parent.

    Plain data (dicts, tuples, dataclasses of ints) so the process path
    pickles it unchanged; ``provenance`` carries decision records as
    dicts in shard-local ``seq`` order — each pair lives in exactly one
    shard, so per-pair decision order survives any merge ordering.
    """

    shard: int
    references: int
    partitions: dict[str, list[list[str]]]
    stats: EngineStats
    provenance: list[dict]
    value_node_keys: list[tuple[str, str, str]]
    completed: bool
    stop_reason: str
    seconds: float
    peak_rss_kb: int
    resumed: bool = False
    attempts: int = 1
    ran_in_process: bool = True


@dataclass
class ShardedRun:
    """The full sharded execution: plan, shard outcomes, fixpoint."""

    plan: ShardPlan
    outcomes: list[ShardOutcome]
    fixpoint: FixpointOutcome
    shard_workers: int
    #: runner-level degradations (shard fallbacks), merged into the
    #: final stats alongside each shard's own degradation trail.
    degradations: list[DegradationEvent] = field(default_factory=list)
    resumed: bool = False


def _execute_shard(
    shard: int,
    sub_store: ReferenceStore,
    domain,
    config: EngineConfig,
    *,
    checkpoint_root: str | None,
    checkpoint_every: int,
    resume: bool,
    chaos,
    step_hook=None,
    in_child: bool,
) -> ShardOutcome:
    if chaos is not None:
        chaos.before_shard(shard, in_child=in_child)
    started = time.perf_counter()
    checkpointer = None
    provenance_path = None
    prior_provenance: list[dict] = []
    resumed = False
    if checkpoint_root:
        from ..runtime.checkpoint import Checkpointer

        shard_dir = shard_checkpoint_dir(checkpoint_root, shard)
        checkpointer = Checkpointer(shard_dir, every=checkpoint_every)
        # Shard provenance persists next to the shard checkpoint so a
        # resumed shard keeps the decisions its crashed attempt made
        # (the merge would otherwise hand an incomplete audit trail to
        # the run directory's provenance.jsonl).
        provenance_path = shard_dir / "provenance.jsonl"
        will_resume = resume and checkpointer.path.exists()
        if will_resume and provenance_path.exists():
            prior_provenance = [
                record.to_dict()
                for record in ProvenanceLog.from_jsonl(provenance_path).records
            ]
        elif not will_resume:
            provenance_path.unlink(missing_ok=True)
    telemetry = Telemetry(provenance=ProvenanceLog(jsonl_path=provenance_path))
    if (
        resume
        and checkpointer is not None
        and checkpointer.path.exists()
    ):
        engine = Reconciler.resume(
            checkpointer.path,
            store=sub_store,
            domain=domain,
            config=config,
            telemetry=telemetry,
        )
        resumed = True
    else:
        engine = Reconciler(sub_store, domain, config, telemetry=telemetry)
    if chaos is not None:
        # Build/iterate chunk chaos still applies inside a shard.
        engine.chaos = chaos
    try:
        result = engine.run(checkpointer=checkpointer, step_hook=step_hook)
    finally:
        telemetry.provenance.close()
    peak_rss_kb = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    provenance = prior_provenance + [
        record.to_dict() for record in telemetry.provenance.records
    ]
    for seq, row in enumerate(provenance):
        # An append-continued trail restarts seq mid-stream; re-number
        # positionally so per-pair order survives the canonical merge.
        row["seq"] = seq
    return ShardOutcome(
        shard=shard,
        references=len(sub_store),
        partitions=result.partitions,
        stats=engine.stats,
        provenance=provenance,
        value_node_keys=engine.graph.value_node_keys(),
        completed=result.completed,
        stop_reason=result.stop_reason,
        seconds=round(time.perf_counter() - started, 6),
        peak_rss_kb=peak_rss_kb,
        resumed=resumed,
        ran_in_process=not in_child,
    )


def _shard_worker(payload) -> ShardOutcome:
    """Top-level entry for the per-shard worker process."""
    (
        shard,
        spec,
        schema,
        references,
        known_external,
        config,
        checkpoint_root,
        checkpoint_every,
        resume,
        chaos,
    ) = payload
    domain = rebuild_domain(spec)
    sub_store = ReferenceStore(schema, references, known_external=known_external)
    return _execute_shard(
        shard,
        sub_store,
        domain,
        config,
        checkpoint_root=checkpoint_root,
        checkpoint_every=checkpoint_every,
        resume=resume,
        chaos=chaos,
        in_child=True,
    )


def run_sharded(
    store: ReferenceStore,
    domain,
    config: EngineConfig | None = None,
    *,
    shards: int,
    shard_workers: int = 1,
    plan: ShardPlan | None = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = 500,
    resume: bool = False,
    chaos=None,
    telemetry: Telemetry | None = None,
    step_hooks: dict[int, object] | None = None,
) -> ShardedRun:
    """Run the full reconciliation sharded; returns the raw outcomes.

    *telemetry* is the **parent's** sink: shard lifecycle events land
    there, while every shard engine records its own in-memory
    provenance (merged later). *step_hooks* maps shard index to a
    ``step_hook`` for that shard's engine — the fault-injection seam
    for mid-shard crash/resume tests; hooks force in-process execution
    and their exceptions propagate (only *process* failures ride the
    retry ladder).
    """
    config = config or EngineConfig()
    if plan is None:
        plan = plan_shards(
            store, domain, shards=shards, max_block_size=config.max_block_size
        )
    checkpoint_root = str(checkpoint_dir) if checkpoint_dir else None
    refs_by_shard = [
        [store.get(ref_id) for ref_id in members] for members in plan.members
    ]
    degradations: list[DegradationEvent] = []
    outcomes: dict[int, ShardOutcome] = {}

    def _emit(level, event, **fields):
        if telemetry is not None:
            telemetry.emit(level, event, **fields)

    _emit(
        "info",
        "shard_plan",
        shards=plan.shards,
        components=plan.component_count,
        cut_pairs=len(plan.cut_pairs),
        gini=round(plan.gini, 4),
    )

    use_processes = (
        shard_workers > 1 and plan.shards > 1 and not step_hooks
    )
    spec = domain_spec(domain) if use_processes else None
    if use_processes and spec is None:
        degradations.append(
            DegradationEvent(
                kind="shard_fallback",
                detail="domain not rebuildable in a worker process; "
                "all shards ran in-process",
            )
        )
        use_processes = False

    failed: list[int] = []
    if use_processes:
        all_ids = frozenset(reference.ref_id for reference in store)
        payloads = {
            shard: (
                shard,
                spec,
                store.schema,
                refs_by_shard[shard],
                all_ids.difference(plan.members[shard]),
                config,
                checkpoint_root,
                checkpoint_every,
                resume,
                chaos,
            )
            for shard in range(plan.shards)
        }
        with ProcessPoolExecutor(
            max_workers=min(shard_workers, plan.shards),
            mp_context=get_context("fork"),
        ) as pool:
            futures = {
                shard: pool.submit(_shard_worker, payload)
                for shard, payload in payloads.items()
            }
            for shard, future in futures.items():
                try:
                    outcomes[shard] = future.result()
                    _emit(
                        "info",
                        "shard_end",
                        shard=shard,
                        merges=outcomes[shard].stats.merges,
                        seconds=outcomes[shard].seconds,
                    )
                except BaseException as exc:
                    # A dead child poisons the pool (BrokenProcessPool
                    # for every pending future); each failed shard gets
                    # the in-process rung below.
                    failed.append(shard)
                    _emit(
                        "warning",
                        "shard_failed",
                        shard=shard,
                        error=f"{type(exc).__name__}: {exc}",
                    )
    else:
        failed = list(range(plan.shards))

    for shard in sorted(failed):
        attempts = 1
        if use_processes:
            # The ladder's bottom rung: rerun in-process in the parent,
            # which cannot lose a process. Recorded as a degradation so
            # the manifest and `repro doctor` say what happened.
            attempts = 2
            degradations.append(
                DegradationEvent(
                    kind="shard_fallback",
                    detail=f"shard {shard} worker failed; "
                    "re-ran in-process in the parent",
                )
            )
        _emit("info", "shard_start", shard=shard, in_process=True)
        outcome = _execute_shard(
            shard,
            store.subset(plan.members[shard]),
            domain,
            config,
            checkpoint_root=checkpoint_root,
            checkpoint_every=checkpoint_every,
            resume=resume,
            chaos=chaos,
            step_hook=(step_hooks or {}).get(shard),
            in_child=False,
        )
        outcome.attempts = attempts
        outcomes[shard] = outcome
        _emit(
            "info",
            "shard_end",
            shard=shard,
            merges=outcome.stats.merges,
            seconds=outcome.seconds,
        )

    ordered = [outcomes[shard] for shard in range(plan.shards)]
    fixpoint = cross_shard_fixpoint(store, domain, config, plan, ordered)
    _emit(
        "info",
        "shard_fixpoint",
        rounds=fixpoint.rounds,
        messages=fixpoint.messages,
        boundary_pairs=fixpoint.boundary_pairs,
    )
    return ShardedRun(
        plan=plan,
        outcomes=ordered,
        fixpoint=fixpoint,
        shard_workers=shard_workers,
        degradations=degradations,
        resumed=resume,
    )
