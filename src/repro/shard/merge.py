"""Merging per-shard outcomes back into one serial-equivalent run.

Every artifact the repo's tooling consumes — the partition, the
provenance log, the counter block of the manifest — has an exact merge
rule that reproduces the serial run byte-for-byte when shards are
closure-atomic:

* **partitions** — every global cluster lives inside one shard, so the
  merged partition is the per-class concatenation of shard clusters
  re-sorted by first member: exactly the serial engine's ``_result()``
  ordering.
* **counters** — additive counters sum; ``value_nodes`` is the size of
  the *union* of per-shard value-node registry keys (value nodes dedup
  globally by ``(channel, left, right)``, so summing double-counts any
  value pair seen by two shards) and ``graph_nodes`` is recomputed as
  ``pair_nodes + value_nodes``.
* **provenance** — decisions re-sequence in canonical order: sorted by
  (pair, phase, shard-local seq). Each pair is decided by exactly one
  shard, so per-pair decision order — the thing replay and `repro
  explain` rely on — is preserved no matter how shards interleaved.

When a hand-made split plan produced a non-empty cut, the cross-shard
fixpoint's boundary engine already holds the global result; the merge
then takes its partitions verbatim and appends its boundary decisions
as a ``boundary`` provenance phase.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.engine import EngineStats
from ..core.model import EngineConfig
from ..core.partition import UnionFind
from ..core.result import ReconciliationResult
from ..obs.manifest import _COUNTER_FIELDS, build_manifest
from ..obs.telemetry import NULL_TELEMETRY
from .fixpoint import FixpointOutcome
from .runner import ShardedRun

__all__ = [
    "merge_partitions",
    "merge_stats",
    "merge_provenance",
    "canonical_provenance",
    "merged_result",
    "MergedRun",
    "build_sharded_manifest",
]

#: stats fields that sum across shards beyond the manifest counters.
_SUMMED_EXECUTION_FIELDS = (
    "build_seconds",
    "iterate_seconds",
    "values_cache_hits",
    "values_cache_misses",
    "contacts_cache_hits",
    "contacts_cache_misses",
    "feature_cache_hits",
    "feature_cache_misses",
    "pair_memo_hits",
    "pair_memo_misses",
    "prefilter_skips",
    "task_retries",
    "task_timeouts",
    "pool_rebuilds",
    "pairs_poisoned",
    "speculated_nodes",
    "speculation_hits",
    "speculation_invalidated",
    "speculation_dropped",
    "queue_compactions",
)


def merge_partitions(
    outcomes, fixpoint: FixpointOutcome | None = None
) -> dict[str, list[list[str]]]:
    """The global partition, in the serial engine's exact ordering."""
    if fixpoint is not None and fixpoint.ran:
        return fixpoint.result.partitions
    merged: dict[str, list[list[str]]] = {}
    for outcome in sorted(outcomes, key=lambda item: item.shard):
        for class_name, clusters in outcome.partitions.items():
            merged.setdefault(class_name, []).extend(
                list(cluster) for cluster in clusters
            )
    return {
        class_name: sorted(clusters, key=lambda cluster: cluster[0])
        for class_name, clusters in merged.items()
    }


def merge_stats(sharded: ShardedRun) -> EngineStats:
    """One :class:`EngineStats` equivalent to the serial run's counters.

    Component-closed plans (the default planner) sum shard counters —
    each counter decomposes exactly over components. When a split
    plan's boundary engine ran, *its* stats are the global run's
    (shard counters would double-count pairs the repair re-decided);
    the shard engines' degradation trails and wall-clock still join in.
    """
    outcomes = sharded.outcomes
    if sharded.fixpoint.ran:
        merged = replace(sharded.fixpoint.stats)
        merged.degradations = (
            [
                event
                for outcome in outcomes
                for event in outcome.stats.degradations
            ]
            + list(merged.degradations)
            + list(sharded.degradations)
        )
        return merged
    merged = EngineStats()
    for name in _COUNTER_FIELDS:
        if name in ("value_nodes", "graph_nodes"):
            continue
        setattr(merged, name, sum(getattr(o.stats, name) for o in outcomes))
    value_keys = set()
    for outcome in outcomes:
        value_keys.update(tuple(key) for key in outcome.value_node_keys)
    merged.value_nodes = len(value_keys)
    merged.graph_nodes = merged.pair_nodes + merged.value_nodes
    for name in _SUMMED_EXECUTION_FIELDS:
        setattr(merged, name, sum(getattr(o.stats, name) for o in outcomes))
    merged.build_seconds = round(merged.build_seconds, 6)
    merged.iterate_seconds = round(merged.iterate_seconds, 6)
    merged.parallel_workers = max(
        (o.stats.parallel_workers for o in outcomes), default=1
    )
    merged.iterate_workers = max(
        (o.stats.iterate_workers for o in outcomes), default=1
    )
    per_class: dict[str, int] = {}
    for outcome in outcomes:
        for class_name, count in outcome.stats.per_class_nodes.items():
            per_class[class_name] = per_class.get(class_name, 0) + count
    merged.per_class_nodes = per_class
    # Convergence samples are keyed by the *global* recomputation
    # counter; per-shard counters don't compose into it, so a sharded
    # run records none rather than fabricating unreproducible ones.
    merged.convergence_samples = []
    merged.degradations = [
        event
        for outcome in outcomes
        for event in outcome.stats.degradations
    ] + list(sharded.degradations)
    return merged


_PHASE_ORDER = {"shard": 0, "boundary": 1}


def merge_provenance(sharded: ShardedRun) -> list[dict]:
    """All decision records, re-sequenced in canonical order.

    Records sort by (pair, phase, shard-local seq) and get fresh
    ``seq`` values; each carries ``shard`` and ``phase`` so `repro
    explain` can attribute a decision. For a component-closed plan the
    records are the shard engines' (each pair decided by exactly one
    shard). When a split plan's boundary engine ran, *its* decisions
    are the run's authoritative trail — shard-phase records would
    duplicate pairs the repair re-decided under different evidence, so
    they are dropped, exactly as their partitions are superseded.
    """
    records: list[dict] = []
    if sharded.fixpoint.ran:
        for record in sharded.fixpoint.provenance:
            row = dict(record)
            row["shard"] = None
            row["phase"] = "boundary"
            records.append(row)
    else:
        for outcome in sharded.outcomes:
            for record in outcome.provenance:
                row = dict(record)
                row["shard"] = outcome.shard
                row["phase"] = "shard"
                records.append(row)
    records.sort(
        key=lambda row: (
            tuple(row["pair"]),
            _PHASE_ORDER[row["phase"]],
            row["seq"],
        )
    )
    for seq, row in enumerate(records):
        row["seq"] = seq
    return records


def canonical_provenance(records) -> list[tuple]:
    """Execution-order-free view of a decision list, for equivalence
    tests: the sorted multiset of (pair, decision, score, channels) —
    ``seq``, timing and shard attribution dropped."""
    canonical = []
    for record in records:
        row = record if isinstance(record, dict) else record.to_dict()
        canonical.append(
            (
                tuple(row["pair"]),
                row["class_name"],
                row["decision"],
                row["score"],
                tuple(sorted((row.get("channels") or {}).items())),
            )
        )
    return sorted(canonical)


def merged_result(sharded: ShardedRun) -> ReconciliationResult:
    """A :class:`ReconciliationResult` for the whole sharded run."""
    partitions = merge_partitions(sharded.outcomes, sharded.fixpoint)
    uf = UnionFind()
    for clusters in partitions.values():
        for cluster in clusters:
            first = cluster[0]
            uf.find(first)
            for other in cluster[1:]:
                uf.union(first, other)
    stats = merge_stats(sharded)
    completed = all(outcome.completed for outcome in sharded.outcomes)
    stop_reason = "converged"
    for outcome in sharded.outcomes:
        if not outcome.completed:
            stop_reason = outcome.stop_reason
            break
    if sharded.fixpoint.ran and not sharded.fixpoint.result.completed:
        completed = False
        stop_reason = sharded.fixpoint.result.stop_reason
    return ReconciliationResult(
        partitions=partitions,
        uf=uf,
        stats=stats,
        completed=completed,
        stop_reason=stop_reason,
        degradations=list(stats.degradations),
    )


@dataclass
class MergedRun:
    """Duck-typed stand-in for a ``Reconciler`` in manifest building.

    :func:`repro.obs.manifest.build_manifest` only reads ``stats``,
    ``config`` and ``telemetry`` (plus optional relay/hotspots
    attributes via ``getattr`` defaults) from the reconciler it is
    given, so this thin shim lets a sharded run reuse the exact same
    manifest pipeline as a serial one.
    """

    stats: EngineStats
    config: EngineConfig
    telemetry: object = NULL_TELEMETRY
    hotspots: object | None = None


def build_sharded_manifest(
    *,
    dataset,
    sharded: ShardedRun,
    result: ReconciliationResult,
    config: EngineConfig,
    algorithm: str = "depgraph",
    artifacts: dict | None = None,
) -> dict:
    """The run manifest for a sharded run.

    Identical invariant core to the serial manifest (same fingerprint,
    digest, quality, counters); the shard plan, per-shard engine rows
    and fixpoint land in the execution section.
    """
    shard_rows = [
        {
            "shard": outcome.shard,
            "references": outcome.references,
            "merges": outcome.stats.merges,
            "recomputations": outcome.stats.recomputations,
            "seconds": outcome.seconds,
            "peak_rss_kb": outcome.peak_rss_kb,
            "completed": outcome.completed,
            "resumed": outcome.resumed,
            "attempts": outcome.attempts,
            "in_process": outcome.ran_in_process,
        }
        for outcome in sharded.outcomes
    ]
    return build_manifest(
        dataset=dataset,
        reconciler=MergedRun(stats=result.stats, config=config),
        result=result,
        algorithm=algorithm,
        artifacts=artifacts,
        resumed=sharded.resumed,
        shards={
            "count": sharded.plan.shards,
            "shard_workers": sharded.shard_workers,
            "plan": sharded.plan.describe(),
            "fixpoint": sharded.fixpoint.describe(),
            "per_shard": shard_rows,
        },
    )
