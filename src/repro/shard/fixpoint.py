"""Cross-shard reconciliation: the cut repaired, iterated to fixpoint.

After every shard engine has converged, decisions that needed evidence
from two shards remain unmade: candidate pairs on the cut, and —
subtler — pairs *inside* one shard whose strong/weak support would have
come from a dependency target in another shard. This module repairs
both the way §3 of the paper iterates the dependency graph: passes of a
boundary engine, each committing cross-shard merges ("messages" in
Rastogi et al.'s per-block scheme) that enrich both sides and
re-activate dependent pairs, until a pass commits nothing new.

Under the default component planner the plan is **component-closed by
construction** (shards are unions of interaction-graph components), so
the fixpoint converges in round 1 with zero messages and this module
does no engine work at all — the path a production run takes.

For a *split* plan (tests and diagnostics force components apart), the
boundary engine runs over the whole store **from scratch**. Replaying
shard-local unions into a fresh engine was tried and is unsound: a
pre-merged cluster suppresses the pair node whose merge decision
carried strong/weak boolean support downstream (the engine treats
replayed unions like a-priori premerges), so dependent pairs
under-merge. The DepGraph's evidence is a function of decision
*history*, not just of the partition — the only sound global repair is
to recompute the dependency graph with global evidence, which also
makes the repaired result exactly the serial one. Shard-local work is
not wasted: its partitions are the candidates the repair must confirm,
and the message counter below records exactly how much cross-shard
traffic a message-passing implementation would have needed. Split
plans should keep a-priori distinct pairs co-shard — a blinded shard
that merges an enemy pair leaves a state no global pass can unwind
(merges are monotone).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.engine import EngineStats, Reconciler
from ..obs.provenance import ProvenanceLog
from ..obs.telemetry import Telemetry

__all__ = ["FixpointOutcome", "cross_shard_fixpoint"]


@dataclass
class FixpointOutcome:
    """What the cross-shard reconciliation did.

    ``rounds`` counts boundary passes *including* the terminating pass
    that commits nothing (a component-closed plan converges in round 1
    without any pass). ``messages`` counts unions joining references
    assigned to different shards — the cross-shard traffic a
    message-passing implementation would have exchanged. ``result`` is
    the global fixpoint result when a boundary engine ran, ``None``
    when the plan was component-closed and the per-shard results are
    already final.
    """

    rounds: int
    messages: int
    boundary_pairs: int
    result: object | None = None
    stats: EngineStats | None = None
    provenance: list[dict] = field(default_factory=list)

    @property
    def ran(self) -> bool:
        return self.result is not None

    def describe(self) -> dict:
        return {
            "rounds": self.rounds,
            "messages": self.messages,
            "boundary_pairs": self.boundary_pairs,
            "boundary_engine": self.ran,
        }


def cross_shard_fixpoint(
    store, domain, config, plan, outcomes
) -> FixpointOutcome:
    """Reconcile the cut between the finished shard runs of *plan*.

    Fast path: a component-closed plan has no cross-shard edge of *any*
    kind — the per-shard partitions are the global fixpoint already.
    The gate is :attr:`ShardPlan.component_closed`, not an empty cut: a
    split plan can show zero candidate pairs on the cut while
    association or dependency links still cross shards, and those
    links carry evidence that changes decisions.
    """
    if plan.component_closed:
        return FixpointOutcome(rounds=1, messages=0, boundary_pairs=0)

    telemetry = Telemetry(provenance=ProvenanceLog())
    engine = Reconciler(store, domain, config, telemetry=telemetry)

    messages = 0

    def _count_cross(survivor: str, absorbed: str) -> None:
        nonlocal messages
        if plan.assignment.get(survivor) != plan.assignment.get(absorbed):
            messages += 1

    engine.uf.add_union_listener(_count_cross)

    rounds = 0
    result = None
    while True:
        merges_before = engine.stats.merges
        result = engine.run()
        rounds += 1
        if engine.stats.merges == merges_before:
            break

    return FixpointOutcome(
        rounds=rounds,
        messages=messages,
        boundary_pairs=len(plan.cut_pairs),
        result=result,
        stats=engine.stats,
        provenance=[
            record.to_dict() for record in telemetry.provenance.records
        ],
    )
