"""A synthetic Cora-like citation corpus (§5.1 / §5.4, Table 1).

The real Cora benchmark (McCallum's subset) is 1295 citations of 112
computer-science papers, 6107 extracted references, 338 entities, with
notoriously noisy citation strings. This generator reproduces that
regime with the same noise channels the paper calls out:

* citation counts per paper are heavily skewed (some papers cited
  ~40 times, many a handful);
* author mentions are initials-heavy and inconsistently formatted,
  with occasional "et al." truncation and typos;
* venue mentions vary across acronym / branded / full / proceedings
  forms, and — crucially — "citations of the same paper may mention
  different venues": a few systematically confused venue pairs inject
  wrong-venue mentions, which is what makes article→venue propagation
  double-edged (Table 7's venue precision drop);
* titles suffer typos and occasional truncation; pages and years are
  frequently missing or off by one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.references import ReferenceStore
from ..domains.cora import CORA_SCHEMA
from .dataset import Dataset
from .extract import extract_bib_references
from .generator.bibtex import BibEntry, render_venue
from .generator.names import format_name, typo
from .generator.world import (
    PaperEntity,
    PersonEntity,
    World,
    WorldConfig,
    build_world,
)
from .gold import GoldStandard

__all__ = ["CoraConfig", "generate_cora_dataset"]


@dataclass(frozen=True)
class CoraConfig:
    n_papers: int = 112
    n_citations: int = 1295
    n_authors: int = 205
    n_venues: int = 22
    seed: int = 97
    title_typo_rate: float = 0.05
    title_truncate_rate: float = 0.03
    author_typo_rate: float = 0.03
    author_drop_rate: float = 0.08
    pages_missing_rate: float = 0.45
    year_missing_rate: float = 0.25
    year_offby1_rate: float = 0.05
    #: fraction of papers that have an *alternate* venue in circulation
    #: (the tech-report vs conference phenomenon: "citations of the
    #: same paper may mention different venues"), and the fraction of
    #: such a paper's citations that name the alternate.
    alternate_venue_rate: float = 0.08
    alternate_citation_rate: float = 0.3


_CITATION_STYLES = (
    "last_comma_initials",
    "initials_last",
    "initial_last",
    "last_comma_first",
    "first_last",
)
#: Real citation corpora are dominated by the two initials styles;
#: fuller renderings are the minority.
_CITATION_STYLE_WEIGHTS = (0.45, 0.33, 0.08, 0.07, 0.07)

_VENUE_FORMS = ("acronym", "branded", "full", "proceedings", "dated")


def _citation_weights(n_papers: int, rng: random.Random) -> list[float]:
    """Zipf-ish popularity: a few heavily-cited papers, a long tail."""
    weights = [1.0 / (rank + 1) ** 0.7 for rank in range(n_papers)]
    rng.shuffle(weights)
    return weights


def _maybe_truncate(title: str, rng: random.Random) -> str:
    words = title.split()
    if len(words) > 5:
        return " ".join(words[: rng.randint(4, len(words) - 1)])
    return title


def generate_cora_dataset(config: CoraConfig | None = None) -> Dataset:
    """Generate the Cora-like benchmark dataset."""
    config = config or CoraConfig()
    rng = random.Random(config.seed)

    # Reuse the world builder for venues/papers; swap in a citation-
    # sized author pool with initials-friendly (US-heavy) names.
    world_config = WorldConfig(
        n_persons=config.n_authors,
        n_mailing_lists=0,
        n_venues=config.n_venues,
        n_papers=config.n_papers,
        culture_mix={"us": 0.8, "in": 0.1, "cn": 0.1},
        homonym_rate=0.01,
        extra_email_rate=0.0,
        prefer_obscure_venues=True,
    )
    world = build_world(world_config, rng)

    # Per-paper alternate venues: some papers circulate with a second
    # venue attributed to them (TR vs conference, workshop vs journal).
    venue_ids = sorted(world.venues)
    alternate_of: dict[str, str] = {}
    papers = sorted(world.papers.values(), key=lambda paper: paper.entity_id)
    for paper in papers:
        if rng.random() < config.alternate_venue_rate:
            alternate = rng.choice(venue_ids)
            if alternate != paper.venue_id:
                alternate_of[paper.entity_id] = alternate
    weights = _citation_weights(len(papers), rng)

    entries: list[BibEntry] = []
    for citation_index in range(config.n_citations):
        paper = rng.choices(papers, weights=weights)[0]
        entries.append(
            _render_citation(citation_index, paper, world, alternate_of, config, rng)
        )

    gold = GoldStandard()
    references = extract_bib_references(
        entries, gold, prefix="cora", source="citation"
    )
    store = ReferenceStore(CORA_SCHEMA, references)
    store.validate()
    return Dataset(name="Cora", store=store, gold=gold, world=world)


def _render_citation(
    citation_index: int,
    paper: PaperEntity,
    world: World,
    alternate_of: dict[str, str],
    config: CoraConfig,
    rng: random.Random,
) -> BibEntry:
    title = paper.title
    if rng.random() < config.title_truncate_rate:
        title = _maybe_truncate(title, rng)
    if rng.random() < config.title_typo_rate:
        title = typo(title, rng)

    author_ids = list(paper.author_ids)
    if len(author_ids) > 2 and rng.random() < config.author_drop_rate:
        author_ids = author_ids[:2]
    style = rng.choices(_CITATION_STYLES, weights=_CITATION_STYLE_WEIGHTS)[0]
    author_names: list[str] = []
    for author_id in author_ids:
        person: PersonEntity = world.persons[author_id]
        rendered = format_name(person.name, style)
        if rng.random() < config.author_typo_rate:
            rendered = typo(rendered, rng)
        author_names.append(rendered)

    venue_id = paper.venue_id
    alternate = alternate_of.get(paper.entity_id)
    if alternate is not None and rng.random() < config.alternate_citation_rate:
        venue_id = alternate
    venue = world.venues[venue_id]
    venue_name = render_venue(venue, rng.choice(_VENUE_FORMS), paper.year, rng)

    year = paper.year
    if rng.random() < config.year_offby1_rate:
        year += rng.choice((-1, 1))
    year_text = "" if rng.random() < config.year_missing_rate else str(year)
    pages = "" if rng.random() < config.pages_missing_rate else paper.pages

    return BibEntry(
        entry_id=f"c{citation_index:04d}",
        paper_id=paper.entity_id,
        title=title,
        author_names=tuple(author_names),
        author_ids=tuple(author_ids),
        venue_name=venue_name,
        venue_id=venue_id,
        year=year_text,
        pages=pages,
    )
