"""Dataset container: references + gold + provenance."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.references import ReferenceStore
from .generator.world import World
from .gold import GoldStandard

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """One benchmark dataset: a reference store with its gold standard."""

    name: str
    store: ReferenceStore
    gold: GoldStandard
    world: World | None = None
    #: records a lenient load set aside (QuarantinedRecord instances).
    quarantined: list = field(default_factory=list)

    def summary(self) -> dict[str, float | int | str]:
        """The Table-1 row for this dataset."""
        references = self.gold.reference_count()
        entities = self.gold.total_entity_count()
        return {
            "dataset": self.name,
            "references": references,
            "entities": entities,
            "ratio": round(references / entities, 1) if entities else 0.0,
        }
