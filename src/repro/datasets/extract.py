"""The extractor: corpora → references + gold standard.

Mirrors the extraction stage the paper assumes ("references to
real-world objects obtained by some extractor program", §2.1): every
email participant occurrence becomes a Person reference carrying
whatever that occurrence showed (display name, address) plus
emailContact links to its co-participants; every bibliography entry
becomes an Article reference, per-author Person references with
coAuthor links, and a Venue reference.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..core.references import Reference
from .generator.bibtex import BibEntry
from .generator.emails import Message
from .gold import GoldStandard

__all__ = ["extract_email_references", "extract_bib_references"]


def extract_email_references(
    messages: Iterable[Message],
    gold: GoldStandard,
    *,
    prefix: str = "em",
    n_buckets: int = 4,
) -> list[Reference]:
    """Person references from an email corpus.

    Mirrors how desktop extractors actually behave: identical
    (display name, address) occurrences within one stretch of the
    mailbox collapse into a single reference whose ``emailContact``
    list accumulates every co-participant seen. The corpus timeline is
    cut into *n_buckets* stretches, so long-lived presentations still
    yield several references (the paper's ~10-14 references per
    entity) while each message does not.

    The sender and each recipient are linked through ``emailContact``
    (both directions) — the association the weak-boolean "common
    contact" evidence consumes.
    """
    # Pass 1: canonical reference id per (display, address, bucket).
    ref_key_of: dict[tuple[str, str, int], str] = {}
    entity_of_key: dict[str, str] = {}
    contacts_of: dict[str, dict[str, None]] = {}
    values_of: dict[str, dict[str, tuple[str, ...]]] = {}
    order: list[str] = []

    def canonical(participant, time: float) -> str:
        bucket = min(int(time * n_buckets), n_buckets - 1)
        key = (participant.display_name or "", participant.address, bucket)
        ref_id = ref_key_of.get(key)
        if ref_id is None:
            ref_id = f"{prefix}:{len(ref_key_of):05d}"
            ref_key_of[key] = ref_id
            entity_of_key[ref_id] = participant.entity_id
            contacts_of[ref_id] = {}
            values: dict[str, tuple[str, ...]] = {
                "email": (participant.address,)
            }
            if participant.display_name:
                values["name"] = (participant.display_name,)
            values_of[ref_id] = values
            order.append(ref_id)
        return ref_id

    for message in messages:
        ids = [
            canonical(participant, message.time)
            for participant in message.participants
        ]
        sender_ids = [
            ids[index]
            for index, participant in enumerate(message.participants)
            if participant.role == "from"
        ]
        for index, participant in enumerate(message.participants):
            ref_id = ids[index]
            if participant.role == "from":
                linked = [other for other in ids if other != ref_id]
            else:
                linked = [other for other in sender_ids if other != ref_id]
            for other in linked:
                contacts_of[ref_id][other] = None

    references: list[Reference] = []
    for ref_id in order:
        values = dict(values_of[ref_id])
        contacts = tuple(contacts_of[ref_id])
        if contacts:
            values["emailContact"] = contacts
        references.append(
            Reference(
                ref_id=ref_id, class_name="Person", values=values, source="email"
            )
        )
        gold.add(ref_id, entity_of_key[ref_id], "Person", "email")
    return references


def extract_bib_references(
    entries: Iterable[BibEntry],
    gold: GoldStandard,
    *,
    prefix: str = "bib",
    source: str = "bibtex",
    person_class: str = "Person",
) -> list[Reference]:
    """Article + Person + Venue references for each bibliography entry."""
    references: list[Reference] = []
    for entry in entries:
        article_id = f"{prefix}:{entry.entry_id}:a"
        venue_id = f"{prefix}:{entry.entry_id}:v"
        person_ids = [
            f"{prefix}:{entry.entry_id}:p{index}"
            for index in range(len(entry.author_names))
        ]
        for index, (name, entity) in enumerate(
            zip(entry.author_names, entry.author_ids)
        ):
            coauthors = tuple(
                person_ids[j] for j in range(len(person_ids)) if j != index
            )
            values: dict[str, tuple[str, ...]] = {"name": (name,)}
            if coauthors:
                values["coAuthor"] = coauthors
            references.append(
                Reference(
                    ref_id=person_ids[index],
                    class_name=person_class,
                    values=values,
                    source=source,
                )
            )
            gold.add(person_ids[index], entity, person_class, source)

        venue_values: dict[str, tuple[str, ...]] = {"name": (entry.venue_name,)}
        if entry.year:
            venue_values["year"] = (entry.year,)
        references.append(
            Reference(
                ref_id=venue_id,
                class_name="Venue",
                values=venue_values,
                source=source,
            )
        )
        gold.add(venue_id, entry.venue_id, "Venue", source)

        article_values: dict[str, tuple[str, ...]] = {
            "title": (entry.title,),
            "authoredBy": tuple(person_ids),
            "publishedIn": (venue_id,),
        }
        if entry.pages:
            article_values["pages"] = (entry.pages,)
        if entry.year:
            article_values["year"] = (entry.year,)
        references.append(
            Reference(
                ref_id=article_id,
                class_name="Article",
                values=article_values,
                source=source,
            )
        )
        gold.add(article_id, entry.paper_id, "Article", source)
    return references
