"""Dataset serialisation: JSON-lines round-trips.

A dataset on disk is a directory of three files:

* ``references.jsonl`` — one reference per line,
* ``gold.jsonl`` — one gold entry per line (omitted when unknown),
* ``meta.json`` — dataset name and the schema (classes + attributes),

so a reconciled corpus can be shipped, diffed and versioned without the
generator. Loading validates against the embedded schema.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.references import Reference, ReferenceStore
from ..core.schema import Attribute, Schema, SchemaClass
from .dataset import Dataset
from .gold import GoldStandard

__all__ = [
    "schema_to_dict",
    "schema_from_dict",
    "reference_to_dict",
    "reference_from_dict",
    "save_dataset",
    "load_dataset",
]


def schema_to_dict(schema: Schema) -> dict:
    return {
        "classes": [
            {
                "name": schema_class.name,
                "attributes": [
                    {
                        "name": attribute.name,
                        "kind": attribute.kind.value,
                        "target": attribute.target,
                    }
                    for attribute in schema_class.attributes
                ],
            }
            for schema_class in schema
        ]
    }


def schema_from_dict(data: dict) -> Schema:
    classes = []
    for class_data in data["classes"]:
        attributes = []
        for attribute_data in class_data["attributes"]:
            if attribute_data["kind"] == "atomic":
                attributes.append(Attribute.atomic(attribute_data["name"]))
            else:
                attributes.append(
                    Attribute.association(
                        attribute_data["name"], target=attribute_data["target"]
                    )
                )
        classes.append(SchemaClass(class_data["name"], attributes))
    return Schema(classes)


def reference_to_dict(reference: Reference) -> dict:
    return {
        "id": reference.ref_id,
        "class": reference.class_name,
        "values": {
            attribute: list(values) for attribute, values in reference.values.items()
        },
        "source": reference.source,
    }


def reference_from_dict(data: dict) -> Reference:
    return Reference(
        ref_id=data["id"],
        class_name=data["class"],
        values={
            attribute: tuple(values) for attribute, values in data["values"].items()
        },
        source=data.get("source", ""),
    )


def save_dataset(dataset: Dataset, directory: str | Path) -> Path:
    """Write *dataset* under *directory*; returns the directory path."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    with open(path / "meta.json", "w") as handle:
        json.dump(
            {"name": dataset.name, "schema": schema_to_dict(dataset.store.schema)},
            handle,
            indent=2,
        )
    with open(path / "references.jsonl", "w") as handle:
        for reference in dataset.store:
            handle.write(json.dumps(reference_to_dict(reference)) + "\n")
    if dataset.gold.entity_of:
        with open(path / "gold.jsonl", "w") as handle:
            for ref_id, entity in dataset.gold.entity_of.items():
                handle.write(
                    json.dumps(
                        {
                            "id": ref_id,
                            "entity": entity,
                            "class": dataset.gold.class_of[ref_id],
                            "source": dataset.gold.source_of[ref_id],
                        }
                    )
                    + "\n"
                )
    return path


def load_dataset(directory: str | Path) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    path = Path(directory)
    with open(path / "meta.json") as handle:
        meta = json.load(handle)
    schema = schema_from_dict(meta["schema"])
    store = ReferenceStore(schema)
    with open(path / "references.jsonl") as handle:
        for line in handle:
            if line.strip():
                store.add(reference_from_dict(json.loads(line)))
    store.validate()
    gold = GoldStandard()
    gold_path = path / "gold.jsonl"
    if gold_path.exists():
        with open(gold_path) as handle:
            for line in handle:
                if line.strip():
                    entry = json.loads(line)
                    gold.add(
                        entry["id"], entry["entity"], entry["class"], entry["source"]
                    )
    return Dataset(name=meta["name"], store=store, gold=gold)
