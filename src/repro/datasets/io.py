"""Dataset serialisation: JSON-lines round-trips.

A dataset on disk is a directory of three files:

* ``references.jsonl`` — one reference per line,
* ``gold.jsonl`` — one gold entry per line (omitted when unknown),
* ``meta.json`` — dataset name and the schema (classes + attributes),

so a reconciled corpus can be shipped, diffed and versioned without the
generator. Loading validates against the embedded schema.

Ingestion has two modes. **Strict** (the default) fails fast on the
first malformed record with a typed
:class:`~repro.runtime.errors.DataError` naming the file and line —
no bare ``KeyError`` / ``JSONDecodeError`` escapes. **Lenient**
(``lenient=True``) quarantines every bad record — unparseable line,
schema violation, duplicate id, dangling association, orphan gold
entry — to ``quarantine.jsonl`` next to the data, each with its file,
line and reason, and completes the load with everything that survived.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from ..core.references import Reference, ReferenceStore
from ..core.schema import Attribute, Schema, SchemaClass, SchemaError
from ..runtime.errors import DataError
from ..runtime.fsutil import atomic_write_text
from .dataset import Dataset
from .gold import GoldStandard

__all__ = [
    "QuarantinedRecord",
    "schema_to_dict",
    "schema_from_dict",
    "reference_to_dict",
    "reference_from_dict",
    "save_dataset",
    "load_dataset",
]


@dataclass(frozen=True)
class QuarantinedRecord:
    """One record set aside by a lenient load, with its provenance."""

    path: str
    line: int
    reason: str
    raw: str


def schema_to_dict(schema: Schema) -> dict:
    return {
        "classes": [
            {
                "name": schema_class.name,
                "attributes": [
                    {
                        "name": attribute.name,
                        "kind": attribute.kind.value,
                        "target": attribute.target,
                    }
                    for attribute in schema_class.attributes
                ],
            }
            for schema_class in schema
        ]
    }


def schema_from_dict(data: dict) -> Schema:
    try:
        classes = []
        for class_data in data["classes"]:
            attributes = []
            for attribute_data in class_data["attributes"]:
                if attribute_data["kind"] == "atomic":
                    attributes.append(Attribute.atomic(attribute_data["name"]))
                else:
                    attributes.append(
                        Attribute.association(
                            attribute_data["name"], target=attribute_data["target"]
                        )
                    )
            classes.append(SchemaClass(class_data["name"], attributes))
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed schema: {exc!r}") from exc
    return Schema(classes)


def reference_to_dict(reference: Reference) -> dict:
    return {
        "id": reference.ref_id,
        "class": reference.class_name,
        "values": {
            attribute: list(values) for attribute, values in reference.values.items()
        },
        "source": reference.source,
    }


def reference_from_dict(data: dict, *, lenient: bool = False) -> Reference:
    """Build a :class:`Reference` from a parsed JSON record.

    Malformed records raise :class:`DataError` (never a bare
    ``KeyError``). In lenient mode, shape defects that can be repaired
    unambiguously are tolerated: a missing ``values`` object becomes
    empty, and a bare string attribute value becomes a one-value list.
    """
    if not isinstance(data, dict):
        raise DataError(
            f"reference record must be an object, got {type(data).__name__}"
        )
    for field_name in ("id", "class"):
        if field_name not in data:
            raise DataError(f"reference record is missing key {field_name!r}")
        if not isinstance(data[field_name], str):
            raise DataError(f"reference {field_name!r} must be a string")
    raw_values = data.get("values")
    if raw_values is None:
        if "values" in data or not lenient:
            raise DataError(
                "reference record is missing key 'values'"
                if "values" not in data
                else "reference 'values' must be an object"
            )
        raw_values = {}
    if not isinstance(raw_values, dict):
        raise DataError("reference 'values' must be an object of attribute -> list")
    values: dict[str, tuple[str, ...]] = {}
    for attribute, attr_values in raw_values.items():
        if isinstance(attr_values, str):
            if not lenient:
                raise DataError(
                    f"attribute {attribute!r} must hold a list of strings, "
                    f"got a bare string"
                )
            attr_values = [attr_values]
        if not isinstance(attr_values, (list, tuple)):
            raise DataError(
                f"attribute {attribute!r} must hold a list of strings, "
                f"got {type(attr_values).__name__}"
            )
        values[attribute] = tuple(str(value) for value in attr_values)
    return Reference(
        ref_id=data["id"],
        class_name=data["class"],
        values=values,
        source=str(data.get("source", "")),
    )


def save_dataset(dataset: Dataset, directory: str | Path) -> Path:
    """Write *dataset* under *directory*; returns the directory path."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    with open(path / "meta.json", "w") as handle:
        json.dump(
            {"name": dataset.name, "schema": schema_to_dict(dataset.store.schema)},
            handle,
            indent=2,
        )
    with open(path / "references.jsonl", "w") as handle:
        for reference in dataset.store:
            handle.write(json.dumps(reference_to_dict(reference)) + "\n")
    if dataset.gold.entity_of:
        with open(path / "gold.jsonl", "w") as handle:
            for ref_id, entity in dataset.gold.entity_of.items():
                handle.write(
                    json.dumps(
                        {
                            "id": ref_id,
                            "entity": entity,
                            "class": dataset.gold.class_of[ref_id],
                            "source": dataset.gold.source_of[ref_id],
                        }
                    )
                    + "\n"
                )
    return path


class _Intake:
    """Shared strict-raise / lenient-quarantine bookkeeping."""

    def __init__(self, lenient: bool) -> None:
        self.lenient = lenient
        self.quarantined: list[QuarantinedRecord] = []

    def reject(self, path: Path, line: int, reason: str, raw: str) -> None:
        if not self.lenient:
            raise DataError(reason, path=str(path), line=line)
        self.quarantined.append(
            QuarantinedRecord(
                path=str(path), line=line, reason=reason, raw=raw.rstrip("\n")
            )
        )


def _load_meta(path: Path) -> tuple[str, Schema]:
    meta_path = path / "meta.json"
    try:
        with open(meta_path) as handle:
            meta = json.load(handle)
    except FileNotFoundError as exc:
        raise DataError("meta.json not found", path=str(meta_path)) from exc
    except json.JSONDecodeError as exc:
        raise DataError(
            f"invalid JSON: {exc.msg}", path=str(meta_path), line=exc.lineno
        ) from exc
    try:
        name = meta["name"]
        schema = schema_from_dict(meta["schema"])
    except KeyError as exc:
        raise DataError(
            f"meta.json is missing key {exc.args[0]!r}", path=str(meta_path)
        ) from exc
    except DataError as exc:
        raise DataError(exc.reason, path=str(meta_path)) from exc
    return name, schema


def _parse_references(
    ref_path: Path, intake: _Intake
) -> list[tuple[int, Reference, str]]:
    parsed: list[tuple[int, Reference, str]] = []
    seen_ids: dict[str, int] = {}
    with open(ref_path) as handle:
        for line_no, line in enumerate(handle, 1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                reference = reference_from_dict(record, lenient=intake.lenient)
            except json.JSONDecodeError as exc:
                intake.reject(ref_path, line_no, f"invalid JSON: {exc.msg}", line)
                continue
            except DataError as exc:
                intake.reject(ref_path, line_no, exc.reason, line)
                continue
            first_line = seen_ids.get(reference.ref_id)
            if first_line is not None:
                intake.reject(
                    ref_path,
                    line_no,
                    f"duplicate reference id {reference.ref_id!r} "
                    f"(first seen on line {first_line})",
                    line,
                )
                continue
            seen_ids[reference.ref_id] = line_no
            parsed.append((line_no, reference, line))
    return parsed


def _repair_associations(
    store: ReferenceStore,
    parsed: list[tuple[int, Reference, str]],
    ref_path: Path,
    intake: _Intake,
) -> None:
    """Validate association targets, with line-accurate errors.

    Strict mode raises on the first dangling or mistyped target.
    Lenient mode drops just the bad values (quarantining a note per
    reference) and keeps the reference, so one quarantined contact
    doesn't cascade into rejecting every message that mentions it.
    """
    for line_no, reference, raw in parsed:
        if reference.ref_id not in store:
            continue  # already quarantined at add time
        schema_class = store.schema.cls(reference.class_name)
        bad: list[str] = []
        kept: dict[str, tuple[str, ...]] = dict(reference.values)
        for attribute in schema_class.association_attributes:
            targets = reference.get(attribute.name)
            if not targets:
                continue
            good = []
            for target_id in targets:
                target = store.get(target_id) if target_id in store else None
                if target is None:
                    bad.append(
                        f"{attribute.name} -> {target_id!r} (missing reference)"
                    )
                elif target.class_name != attribute.target:
                    bad.append(
                        f"{attribute.name} -> {target_id!r} (class "
                        f"{target.class_name!r}, expected {attribute.target!r})"
                    )
                else:
                    good.append(target_id)
            kept[attribute.name] = tuple(good)
        if not bad:
            continue
        reason = (
            f"reference {reference.ref_id!r} has dangling associations: "
            + "; ".join(bad)
        )
        if not intake.lenient:
            raise DataError(reason, path=str(ref_path), line=line_no)
        intake.reject(ref_path, line_no, reason, raw)
        store.replace(
            Reference(
                ref_id=reference.ref_id,
                class_name=reference.class_name,
                values=kept,
                source=reference.source,
            )
        )


def _load_gold(
    gold_path: Path, store: ReferenceStore, intake: _Intake
) -> GoldStandard:
    gold = GoldStandard()
    if not gold_path.exists():
        return gold
    with open(gold_path) as handle:
        for line_no, line in enumerate(handle, 1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                intake.reject(gold_path, line_no, f"invalid JSON: {exc.msg}", line)
                continue
            if not isinstance(entry, dict):
                intake.reject(gold_path, line_no, "gold entry must be an object", line)
                continue
            missing = [key for key in ("id", "entity", "class", "source") if key not in entry]
            if missing:
                intake.reject(
                    gold_path,
                    line_no,
                    f"gold entry is missing keys {missing}",
                    line,
                )
                continue
            if entry["id"] not in store:
                intake.reject(
                    gold_path,
                    line_no,
                    f"gold entry for unknown reference {entry['id']!r}",
                    line,
                )
                continue
            gold.add(entry["id"], entry["entity"], entry["class"], entry["source"])
    return gold


def load_dataset(
    directory: str | Path,
    *,
    lenient: bool = False,
    quarantine: str | Path = "quarantine.jsonl",
) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`.

    Strict mode (the default) raises :class:`DataError` — carrying the
    offending file path and line number — on the first malformed
    record. Lenient mode quarantines bad records to *quarantine*
    (resolved relative to the dataset directory), finishes the load
    with the good ones, and reports what was set aside on
    ``Dataset.quarantined``.
    """
    path = Path(directory)
    name, schema = _load_meta(path)
    intake = _Intake(lenient)
    ref_path = path / "references.jsonl"
    try:
        parsed = _parse_references(ref_path, intake)
    except FileNotFoundError as exc:
        raise DataError("references.jsonl not found", path=str(ref_path)) from exc
    store = ReferenceStore(schema)
    for line_no, reference, raw in parsed:
        try:
            store.add(reference)
        except (SchemaError, ValueError) as exc:
            intake.reject(ref_path, line_no, str(exc), raw)
    _repair_associations(store, parsed, ref_path, intake)
    store.validate()
    gold = _load_gold(path / "gold.jsonl", store, intake)
    if lenient and intake.quarantined:
        # Atomic (temp file + os.replace, like checkpoints): a crash
        # mid-write can never leave a truncated quarantine file behind.
        atomic_write_text(
            path / quarantine,
            "".join(
                json.dumps(asdict(record)) + "\n"
                for record in intake.quarantined
            ),
        )
    return Dataset(
        name=name, store=store, gold=gold, quarantined=list(intake.quarantined)
    )
