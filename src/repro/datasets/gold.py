"""Gold standards: the perfect reconciliation result.

Synthetic datasets know exactly which real-world entity every reference
denotes, so the gold standard is a reference-id → entity-id mapping
plus provenance tags (the §5.3 PEmail / PArticle subsets slice person
references by where the extractor found them).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

__all__ = ["GoldStandard"]


@dataclass
class GoldStandard:
    """Ground truth for one dataset.

    ``entity_of`` maps every reference id to its gold entity id;
    ``class_of`` maps it to its schema class; ``source_of`` to its
    provenance tag ("email", "bibtex", "citation", ...).
    """

    entity_of: dict[str, str] = field(default_factory=dict)
    class_of: dict[str, str] = field(default_factory=dict)
    source_of: dict[str, str] = field(default_factory=dict)

    def add(self, ref_id: str, entity_id: str, class_name: str, source: str) -> None:
        if ref_id in self.entity_of:
            raise ValueError(f"duplicate gold entry for {ref_id!r}")
        self.entity_of[ref_id] = entity_id
        self.class_of[ref_id] = class_name
        self.source_of[ref_id] = source

    # -- views ----------------------------------------------------------
    def refs_of_class(
        self, class_name: str, *, source: str | None = None
    ) -> list[str]:
        return [
            ref_id
            for ref_id, cls in self.class_of.items()
            if cls == class_name
            and (source is None or self.source_of[ref_id] == source)
        ]

    def clusters(
        self, class_name: str, *, restrict_to: Iterable[str] | None = None
    ) -> list[list[str]]:
        """Gold partition of one class (optionally over a subset)."""
        allowed = None if restrict_to is None else set(restrict_to)
        grouped: dict[str, list[str]] = {}
        for ref_id, cls in self.class_of.items():
            if cls != class_name:
                continue
            if allowed is not None and ref_id not in allowed:
                continue
            grouped.setdefault(self.entity_of[ref_id], []).append(ref_id)
        return [sorted(members) for _, members in sorted(grouped.items())]

    def entity_count(self, class_name: str, *, source: str | None = None) -> int:
        """Number of distinct gold entities among the class's references."""
        entities = {
            self.entity_of[ref_id]
            for ref_id in self.refs_of_class(class_name, source=source)
        }
        return len(entities)

    def reference_count(self, class_name: str | None = None) -> int:
        if class_name is None:
            return len(self.entity_of)
        return len(self.refs_of_class(class_name))

    def total_entity_count(self) -> int:
        return len(set(self.entity_of.values()))

    def as_mapping(self) -> Mapping[str, str]:
        return dict(self.entity_of)
