"""Benchmark datasets: synthetic PIM A-D and the Cora-like corpus."""

from .cora import CoraConfig, generate_cora_dataset
from .dataset import Dataset
from .extract import extract_bib_references, extract_email_references
from .gold import GoldStandard
from .io import load_dataset, save_dataset
from .pim import PIM_DATASET_NAMES, PIM_PROFILES, PimProfile, generate_pim_dataset

__all__ = [
    "load_dataset",
    "save_dataset",
    "CoraConfig",
    "generate_cora_dataset",
    "Dataset",
    "extract_bib_references",
    "extract_email_references",
    "GoldStandard",
    "PIM_DATASET_NAMES",
    "PIM_PROFILES",
    "PimProfile",
    "generate_pim_dataset",
]
