"""The four synthetic PIM datasets A-D (§5.1 / Table 1).

Each profile reproduces the characteristics the paper attributes to its
dataset (owners in different areas, positions and countries):

* **A** — highest variety in name presentations: many display styles,
  heavy nickname use, several accounts per person, bib files in mixed
  author formats. This is the dataset where DepGraph's recall gain is
  largest (Table 4/5, Figure 6).
* **B** — the largest corpus, with consistent habits: both algorithms
  do well, the gap is small.
* **C** — a Chinese owner: pinyin name pools with a real homonym rate
  ("her Chinese friends typically have short names with significant
  overlap"), which costs precision.
* **D** — the owner changes her last name *and* her account on the
  same email server mid-corpus; §5.3's constraint 3 then splits her
  references into two partitions, trading recall for precision.
  D also seeds same-department homonyms (distinct people, same name,
  accounts on one server), the false merges that give InDepDec its low
  precision here while constraint 3 protects DepGraph.

Scale 1.0 targets roughly one tenth of the paper's reference counts so
the full benchmark suite runs in minutes of pure Python; pass
``scale=10`` to approximate the paper's sizes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.references import ReferenceStore
from ..domains.pim import PIM_SCHEMA
from .dataset import Dataset
from .extract import extract_bib_references, extract_email_references
from .generator.bibtex import BibCorpusConfig, generate_bib_entries
from .generator.emails import EmailCorpusConfig, generate_messages
from .generator.world import WorldConfig, build_world
from .gold import GoldStandard

__all__ = ["PimProfile", "PIM_PROFILES", "generate_pim_dataset", "PIM_DATASET_NAMES"]


@dataclass(frozen=True)
class PimProfile:
    """Configuration bundle for one synthetic PIM dataset."""

    name: str
    seed: int
    world: WorldConfig
    email: EmailCorpusConfig
    bib: BibCorpusConfig


PIM_PROFILES: dict[str, PimProfile] = {
    "A": PimProfile(
        name="A",
        seed=11,
        world=WorldConfig(
            n_persons=170,
            n_mailing_lists=4,
            n_venues=20,
            n_papers=70,
            culture_mix={"us": 0.7, "cn": 0.1, "in": 0.2},
            homonym_rate=0.003,
            homonym_same_server=0.9,
            extra_email_rate=0.5,
        ),
        email=EmailCorpusConfig(
            n_messages=1100,
            styles_per_person=3,
            missing_display_rate=0.28,
            nickname_rate=0.35,
            typo_rate=0.015,
        ),
        bib=BibCorpusConfig(
            n_files=6,
            entries_per_file=(18, 40),
            consistent_style_rate=0.45,  # pasted-together files: mixed styles
            title_typo_rate=0.04,
        ),
    ),
    "B": PimProfile(
        name="B",
        seed=23,
        world=WorldConfig(
            n_persons=200,
            n_mailing_lists=5,
            n_venues=22,
            n_papers=80,
            culture_mix={"us": 0.6, "in": 0.3, "cn": 0.1},
            homonym_rate=0.003,
            homonym_same_server=0.9,
            extra_email_rate=0.25,
        ),
        email=EmailCorpusConfig(
            n_messages=1500,
            styles_per_person=1,
            missing_display_rate=0.15,
            nickname_rate=0.08,
            typo_rate=0.005,
        ),
        bib=BibCorpusConfig(
            n_files=4,
            entries_per_file=(20, 40),
            consistent_style_rate=0.95,
            title_typo_rate=0.01,
        ),
    ),
    "C": PimProfile(
        name="C",
        seed=37,
        world=WorldConfig(
            n_persons=160,
            n_mailing_lists=3,
            n_venues=16,
            n_papers=55,
            culture_mix={"cn": 0.75, "us": 0.2, "in": 0.05},
            homonym_rate=0.02,
            homonym_same_server=0.8,
            extra_email_rate=0.3,
        ),
        email=EmailCorpusConfig(
            n_messages=900,
            styles_per_person=2,
            missing_display_rate=0.2,
            nickname_rate=0.12,
            typo_rate=0.01,
        ),
        bib=BibCorpusConfig(
            n_files=4,
            entries_per_file=(14, 30),
            consistent_style_rate=0.7,
            title_typo_rate=0.02,
        ),
    ),
    "D": PimProfile(
        name="D",
        seed=53,
        world=WorldConfig(
            n_persons=150,
            n_mailing_lists=3,
            n_venues=16,
            n_papers=55,
            culture_mix={"us": 0.75, "in": 0.15, "cn": 0.1},
            homonym_rate=0.05,
            homonym_same_server=0.95,
            same_server_second_account=0.0,
            owner_changes_name=True,
            owner_changes_account_same_server=True,
            extra_email_rate=0.3,
        ),
        email=EmailCorpusConfig(
            n_messages=950,
            styles_per_person=2,
            missing_display_rate=0.18,
            nickname_rate=0.15,
            typo_rate=0.01,
        ),
        bib=BibCorpusConfig(
            n_files=4,
            entries_per_file=(15, 32),
            consistent_style_rate=0.7,
            title_typo_rate=0.02,
        ),
    ),
}

PIM_DATASET_NAMES = tuple(sorted(PIM_PROFILES))


def _scaled_world(config: WorldConfig, scale: float) -> WorldConfig:
    from dataclasses import replace

    return replace(
        config,
        n_persons=max(10, round(config.n_persons * scale)),
        n_mailing_lists=max(1, round(config.n_mailing_lists * min(scale, 3.0))),
        n_venues=min(
            max(6, round(config.n_venues * min(scale, 1.5))), 30
        ),
        n_papers=max(10, round(config.n_papers * scale)),
    )


def generate_pim_dataset(name: str, *, scale: float = 1.0, seed: int | None = None) -> Dataset:
    """Generate PIM dataset *name* ("A".."D") at the given scale.

    Deterministic for a fixed (name, scale, seed) triple; the default
    seed is the profile's.
    """
    profile = PIM_PROFILES[name]
    rng = random.Random(profile.seed if seed is None else seed)
    from dataclasses import replace

    world_config = _scaled_world(profile.world, scale)
    email_config = replace(
        profile.email, n_messages=max(30, round(profile.email.n_messages * scale))
    )
    bib_config = replace(
        profile.bib,
        n_files=max(2, round(profile.bib.n_files * min(scale, 2.0))),
    )
    world = build_world(world_config, rng)
    messages = generate_messages(world, email_config, rng)
    entries = generate_bib_entries(world, bib_config, rng)

    gold = GoldStandard()
    references = extract_email_references(messages, gold)
    references += extract_bib_references(entries, gold)
    store = ReferenceStore(PIM_SCHEMA, references)
    store.validate()
    return Dataset(name=f"PIM {name}", store=store, gold=gold, world=world)
