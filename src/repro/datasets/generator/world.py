"""Ground-truth entity worlds for the synthetic PIM datasets.

A :class:`World` is what actually exists: persons (with all their email
accounts and name history), venues, papers, and the social structure
(research circles) that the email and bibliography corpora are sampled
from. References never see the world directly — an extractor produces
them from the corpora — but the world provides the gold standard.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .names import NamePool, PersonName

__all__ = [
    "PersonEntity",
    "VenueEntity",
    "PaperEntity",
    "World",
    "WorldConfig",
    "build_world",
]


@dataclass
class PersonEntity:
    """A real person (or mailing list) in the ground truth."""

    entity_id: str
    name: PersonName
    emails: list[str]  # all accounts ever owned, oldest first
    former_name: PersonName | None = None  # pre-marriage name, if changed
    is_mailing_list: bool = False

    @property
    def current_email(self) -> str:
        return self.emails[-1]


@dataclass(frozen=True)
class VenueEntity:
    """A publication venue (series identity: SIGMOD-1978 == SIGMOD-1979)."""

    entity_id: str
    acronym: str  # "" when the venue has no acronym
    full_name: str
    kind: str  # "conference" | "journal" | "workshop"
    #: True when the acronym cannot be derived from the full name and is
    #: not in the curated expansion table — the hard case for
    #: attribute-wise venue matching.
    obscure: bool = False


@dataclass(frozen=True)
class PaperEntity:
    entity_id: str
    title: str
    author_ids: tuple[str, ...]
    venue_id: str
    year: int
    pages: str


@dataclass
class World:
    persons: dict[str, PersonEntity] = field(default_factory=dict)
    venues: dict[str, VenueEntity] = field(default_factory=dict)
    papers: dict[str, PaperEntity] = field(default_factory=dict)
    owner_id: str = ""
    #: research circles: groups of person ids that co-author and email.
    circles: list[list[str]] = field(default_factory=list)

    @property
    def owner(self) -> PersonEntity:
        return self.persons[self.owner_id]


@dataclass(frozen=True)
class WorldConfig:
    """Knobs for one ground-truth world.

    ``same_server_second_account`` gives some persons a second account
    on the *same* mail server — the situation §5.3's constraint 3
    misjudges (dataset D's owner).
    """

    n_persons: int = 150
    n_mailing_lists: int = 4
    n_venues: int = 18
    n_papers: int = 60
    circle_size: tuple[int, int] = (3, 7)
    culture_mix: dict[str, float] | None = None
    homonym_rate: float = 0.0
    extra_email_rate: float = 0.35  # chance of a 2nd (3rd...) account
    same_server_second_account: float = 0.0
    #: probability that a homonym (deliberate name collision) works at
    #: the same institution as the person it collides with — their
    #: accounts then live on one server and §5.3's constraint 3 can
    #: tell them apart even though their names agree.
    homonym_same_server: float = 0.6
    owner_changes_name: bool = False
    owner_changes_account_same_server: bool = False
    year_range: tuple[int, int] = (1994, 2004)
    #: bias venue selection towards obscure (hard-to-match) venues —
    #: citation corpora like Cora are full of workshops whose acronyms
    #: nothing can derive.
    prefer_obscure_venues: bool = False


_DOMAINS = [
    "cs.washington.edu",
    "csail.mit.edu",
    "cs.berkeley.edu",
    "cs.stanford.edu",
    "cs.wisc.edu",
    "cs.umass.edu",
    "research.microsoft.com",
    "almaden.ibm.com",
    "bell-labs.com",
    "hp.com",
    "gmail.com",
    "yahoo.com",
    "hotmail.com",
    "acm.org",
    "cs.cornell.edu",
    "cs.cmu.edu",
]

_ACCOUNT_PATTERNS = (
    "surname",  # stonebraker@
    "first.surname",  # michael.stonebraker@
    "initial+surname",  # mstonebraker@
    "first",  # michael@
    "nickname",  # mike@
    "surname+digit",  # stonebraker7@
    "first_surname",  # michael_stonebraker@
)

# (acronym, full name, kind, obscure). Obscure venues have acronyms that
# neither the similarity layer's table nor initial-matching can bridge.
_VENUE_POOL: tuple[tuple[str, str, str, bool], ...] = (
    ("SIGMOD", "ACM Conference on Management of Data", "conference", False),
    ("VLDB", "International Conference on Very Large Data Bases", "conference", False),
    ("ICDE", "IEEE International Conference on Data Engineering", "conference", False),
    ("PODS", "Symposium on Principles of Database Systems", "conference", False),
    ("CIDR", "Conference on Innovative Data Systems Research", "conference", False),
    ("EDBT", "International Conference on Extending Database Technology", "conference", False),
    ("CIKM", "Conference on Information and Knowledge Management", "conference", False),
    ("KDD", "International Conference on Knowledge Discovery and Data Mining", "conference", False),
    ("SIGIR", "Conference on Research and Development in Information Retrieval", "conference", False),
    ("ICML", "International Conference on Machine Learning", "conference", False),
    ("AAAI", "National Conference on Artificial Intelligence", "conference", False),
    ("IJCAI", "International Joint Conference on Artificial Intelligence", "conference", False),
    ("NIPS", "Advances in Neural Information Processing Systems", "conference", False),
    ("UAI", "Conference on Uncertainty in Artificial Intelligence", "conference", False),
    ("STOC", "ACM Symposium on Theory of Computing", "conference", False),
    ("FOCS", "IEEE Symposium on Foundations of Computer Science", "conference", False),
    ("SODA", "ACM-SIAM Symposium on Discrete Algorithms", "conference", False),
    ("WWW", "International World Wide Web Conference", "conference", False),
    ("TODS", "ACM Transactions on Database Systems", "journal", False),
    ("TKDE", "IEEE Transactions on Knowledge and Data Engineering", "journal", False),
    ("CACM", "Communications of the ACM", "journal", False),
    ("JACM", "Journal of the ACM", "journal", False),
    ("SOSP", "ACM Symposium on Operating Systems Principles", "conference", False),
    ("OSDI", "Symposium on Operating Systems Design and Implementation", "conference", False),
    # Obscure venues: acronym unrelated to the (short) full name.
    ("WebDB", "International Workshop on the Web and Databases", "workshop", True),
    ("DMKD", "Workshop on Research Issues in Data Mining and Knowledge Discovery", "workshop", True),
    ("IIWeb", "Workshop on Information Integration on the Web", "workshop", True),
    ("QDB", "Workshop on Quality in Databases", "workshop", True),
    ("MRDM", "Workshop on Multi-Relational Data Mining", "workshop", True),
    ("PersDB", "Workshop on Personalized Access to Web Information", "workshop", True),
    ("Snowbird", "Learning Workshop", "workshop", True),
    ("AIStats", "Workshop on Artificial Intelligence and Statistics", "workshop", True),
    ("CoNLL", "Conference on Computational Natural Language Learning", "workshop", True),
    ("MLJ", "Machine Learning", "journal", True),
    ("AIJ", "Artificial Intelligence", "journal", True),
    ("JAIR", "Journal of Artificial Intelligence Research", "journal", True),
    ("PAMI", "IEEE Transactions on Pattern Analysis and Machine Intelligence", "journal", True),
    ("IJCV", "International Journal of Computer Vision", "journal", True),
    ("NN", "Neural Networks", "journal", True),
    ("NC", "Neural Computation", "journal", True),
)

_TITLE_HEADS = [
    "Efficient", "Scalable", "Adaptive", "Incremental", "Distributed",
    "Approximate", "Robust", "Optimal", "Parallel", "Declarative",
    "Online", "Interactive", "Probabilistic", "Secure", "Streaming",
]

_TITLE_TOPICS = [
    "query processing", "query optimization", "data integration",
    "schema matching", "record linkage", "duplicate detection",
    "view maintenance", "index structures", "join algorithms",
    "data cleaning", "information extraction", "top-k retrieval",
    "similarity search", "stream processing", "transaction management",
    "concurrency control", "data warehousing", "selectivity estimation",
    "keyword search", "graph mining", "entity resolution",
    "provenance tracking", "access control", "load shedding",
    "cache management", "buffer replacement", "log recovery",
    "sensor networks", "peer-to-peer systems", "web services",
]

_TITLE_TAILS = [
    "in relational databases", "for large data sets", "over data streams",
    "in distributed systems", "with probabilistic guarantees",
    "using machine learning", "on the web", "for personal information",
    "in sensor networks", "with limited memory", "at scale",
    "for heterogeneous sources", "under uncertainty", "revisited",
    "in practice", "with user feedback",
]


def _make_email(
    name: PersonName, pattern: str, domain: str, rng: random.Random
) -> str:
    given = name.given
    surname = name.surname.replace(" ", "")
    if pattern == "surname":
        account = surname
    elif pattern == "first.surname":
        account = f"{given}.{surname}"
    elif pattern == "initial+surname":
        account = given[0] + surname
    elif pattern == "first":
        account = given
    elif pattern == "nickname":
        account = name.nickname or given
    elif pattern == "surname+digit":
        account = surname + str(rng.randrange(1, 99))
    elif pattern == "first_surname":
        account = f"{given}_{surname}"
    else:
        raise ValueError(f"unknown account pattern {pattern!r}")
    return f"{account}@{domain}"


def _draw_accounts(
    name: PersonName, config: WorldConfig, rng: random.Random, used: set[str]
) -> list[str]:
    count = 1
    while count < 3 and rng.random() < config.extra_email_rate:
        count += 1
    accounts: list[str] = []
    domains_used: list[str] = []
    attempts = 0
    while len(accounts) < count and attempts < 40:
        attempts += 1
        pattern = rng.choice(_ACCOUNT_PATTERNS)
        if accounts and rng.random() < config.same_server_second_account:
            domain = rng.choice(domains_used)
        else:
            domain = rng.choice(_DOMAINS)
        email = _make_email(name, pattern, domain, rng)
        if email in used or email in accounts:
            continue
        if domain in domains_used and not (
            rng.random() < config.same_server_second_account
        ):
            continue
        accounts.append(email)
        domains_used.append(domain)
    if not accounts:  # pathological pool exhaustion: synthesise one
        accounts = [f"{name.given}.{name.surname}{len(used)}@{rng.choice(_DOMAINS)}"]
    used.update(accounts)
    return accounts


def _draw_title(rng: random.Random, used: set[str]) -> str:
    for _ in range(50):
        head = rng.choice(_TITLE_HEADS)
        topic = rng.choice(_TITLE_TOPICS)
        tail = rng.choice(_TITLE_TAILS)
        title = f"{head} {topic} {tail}"
        if title not in used:
            used.add(title)
            return title.capitalize()
    # Exhausted the pattern space: disambiguate explicitly.
    title = f"{rng.choice(_TITLE_HEADS)} {rng.choice(_TITLE_TOPICS)} study {len(used)}"
    used.add(title)
    return title.capitalize()


def build_world(config: WorldConfig, rng: random.Random) -> World:
    """Sample a ground-truth world under *config*."""
    world = World()
    pool = NamePool(
        rng,
        culture_mix=config.culture_mix,
        homonym_rate=config.homonym_rate,
    )
    used_emails: set[str] = set()

    first_with_name: dict[tuple[str, str], PersonEntity] = {}
    for index in range(config.n_persons):
        name = pool.draw()
        entity_id = f"person{index:04d}"
        person = PersonEntity(
            entity_id=entity_id,
            name=name,
            emails=_draw_accounts(name, config, rng, used_emails),
        )
        name_key = (name.given, name.surname)
        template = first_with_name.get(name_key)
        if template is None:
            first_with_name[name_key] = person
        else:
            # A deliberate homonym. Its accounts must not sit in typo
            # range of the twin's (mail servers disambiguate twins with
            # digits): drop any near-clash, then optionally plant one
            # clearly-different account on the twin's server — the
            # §5.3 constraint-3 scenario.
            twin_domains = {email.split("@", 1)[1] for email in template.emails}
            person.emails = [
                email
                for email in person.emails
                if email.split("@", 1)[1] not in twin_domains
            ]
            if not person.emails or rng.random() < config.homonym_same_server:
                twin_domain = template.emails[0].split("@", 1)[1]
                candidate = _make_email(name, "surname+digit", twin_domain, rng)
                while candidate in used_emails:
                    candidate = _make_email(name, "surname+digit", twin_domain, rng)
                used_emails.add(candidate)
                person.emails.append(candidate)
        world.persons[entity_id] = person
    world.owner_id = "person0000"

    if config.owner_changes_name:
        owner = world.owner
        new_surname = rng.choice(_US_SURNAME_FOR_CHANGE)
        while new_surname == owner.name.surname:
            new_surname = rng.choice(_US_SURNAME_FOR_CHANGE)
        former = owner.name
        owner.former_name = former
        owner.name = PersonName(
            given=former.given,
            middle=former.middle,
            surname=new_surname,
            nickname=former.nickname,
        )
        if config.owner_changes_account_same_server:
            # New surname, new account, same institutional server: the
            # configuration constraint 3 splits (Table 4, dataset D).
            old_domain = owner.emails[-1].split("@", 1)[1]
            new_email = f"{owner.name.surname}@{old_domain}"
            if new_email not in used_emails:
                owner.emails.append(new_email)
                used_emails.add(new_email)
        else:
            new_email = _make_email(
                owner.name, "surname", rng.choice(_DOMAINS), rng
            )
            if new_email not in used_emails:
                owner.emails.append(new_email)
                used_emails.add(new_email)

    list_names = ["dbgroup", "systems-lab", "seminar", "students", "faculty",
                  "reading-group", "colloquium", "staff"]
    rng.shuffle(list_names)
    for index in range(config.n_mailing_lists):
        # Distinct names per list: two lists that both display as
        # "students" would trivially (and wrongly) reconcile.
        list_name = list_names[index % len(list_names)]
        domain = rng.choice(_DOMAINS[:8])
        email = f"{list_name}@{domain}"
        if email in used_emails:
            email = f"{list_name}{index}@{domain}"
        used_emails.add(email)
        entity_id = f"mlist{index:02d}"
        world.persons[entity_id] = PersonEntity(
            entity_id=entity_id,
            name=PersonName(given=list_name, middle="", surname="", nickname=""),
            emails=[email],
            is_mailing_list=True,
        )

    venue_pool = list(_VENUE_POOL)
    rng.shuffle(venue_pool)
    if config.prefer_obscure_venues:
        venue_pool.sort(key=lambda entry: not entry[3])
    for index, (acronym, full_name, kind, obscure) in enumerate(
        venue_pool[: config.n_venues]
    ):
        entity_id = f"venue{index:02d}"
        world.venues[entity_id] = VenueEntity(
            entity_id=entity_id,
            acronym=acronym,
            full_name=full_name,
            kind=kind,
            obscure=obscure,
        )

    # Research circles: the owner belongs to the first one; papers are
    # authored by subsets of a circle.
    person_ids = [
        person_id
        for person_id, person in world.persons.items()
        if not person.is_mailing_list
    ]
    remaining = person_ids[1:]
    rng.shuffle(remaining)
    circles: list[list[str]] = []
    cursor = 0
    first_size = rng.randint(*config.circle_size)
    circles.append([world.owner_id] + remaining[:first_size])
    cursor = first_size
    while cursor < len(remaining):
        size = rng.randint(*config.circle_size)
        circle = remaining[cursor : cursor + size]
        cursor += size
        if circle:
            circles.append(circle)
    world.circles = circles

    used_titles: set[str] = set()
    venue_ids = sorted(world.venues)
    for index in range(config.n_papers):
        circle = circles[index % len(circles)]
        n_authors = rng.randint(1, min(4, len(circle)))
        authors = tuple(rng.sample(circle, n_authors))
        start_page = rng.randrange(1, 600)
        entity_id = f"paper{index:04d}"
        world.papers[entity_id] = PaperEntity(
            entity_id=entity_id,
            title=_draw_title(rng, used_titles),
            author_ids=authors,
            venue_id=rng.choice(venue_ids),
            year=rng.randint(*config.year_range),
            pages=f"{start_page}-{start_page + rng.randrange(8, 25)}",
        )
    return world


# Surnames used for the dataset-D owner's post-marriage name.
_US_SURNAME_FOR_CHANGE = [
    "harrington", "whitfield", "lancaster", "pemberton", "ashworth",
    "colvin", "mercer", "sterling", "winslow", "radcliffe",
]
