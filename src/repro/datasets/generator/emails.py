"""Synthetic email-corpus generation.

Produces :class:`Message` objects — the raw material the extractor
turns into Person references. The generator models the phenomena the
paper's PIM datasets exhibit:

* one person, several accounts, used in *eras* (old account early,
  new account late) with occasional overlap;
* per-person display-name habits of varying diversity (the dataset-A
  "highest variety" knob), including nickname-only and missing display
  names;
* an owner-centric traffic pattern (the mailbox belongs to someone);
* mailing lists as recipients, plus rare extraction contamination
  where a person's display name is paired with the list's address;
* the dataset-D owner whose surname and account change mid-corpus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .names import PersonName, format_name, typo
from .world import World

__all__ = ["Participant", "Message", "EmailCorpusConfig", "generate_messages"]


@dataclass(frozen=True)
class Participant:
    """One (entity, presentation) occurrence inside a message."""

    entity_id: str
    display_name: str | None
    address: str
    role: str  # "from" | "to" | "cc"


@dataclass(frozen=True)
class Message:
    message_id: str
    time: float  # position in the corpus timeline, in [0, 1)
    participants: tuple[Participant, ...]


@dataclass(frozen=True)
class EmailCorpusConfig:
    n_messages: int = 800
    #: how many distinct display-name styles one person cycles through.
    styles_per_person: int = 3
    #: probability that an occurrence has no display name at all.
    missing_display_rate: float = 0.2
    #: probability of casual nickname-style display ("mike").
    nickname_rate: float = 0.2
    #: probability of a typo inside a display name.
    typo_rate: float = 0.01
    #: probability that the sender is the mailbox owner.
    owner_sends_rate: float = 0.35
    #: probability a message goes to a mailing list (plus people).
    mailing_list_rate: float = 0.08
    #: probability that extraction pairs a person's display name with a
    #: mailing list's address (the Table-6 false-positive source).
    contamination_rate: float = 0.003


_FORMAL_STYLES = (
    "first_last",
    "first_middle_last",
    "last_comma_first",
    "initial_last",
    "last_comma_initials",
)
_CASUAL_STYLES = ("nickname", "first_only")


class _PersonHabits:
    """Per-person presentation habits, fixed at corpus start."""

    def __init__(
        self, entity_id: str, config: EmailCorpusConfig, rng: random.Random
    ) -> None:
        formal = list(_FORMAL_STYLES)
        rng.shuffle(formal)
        count = max(1, min(config.styles_per_person, len(formal)))
        self.styles = formal[:count]
        self.entity_id = entity_id
        self._rng = rng

    def render(
        self, name: PersonName, config: EmailCorpusConfig, rng: random.Random
    ) -> str | None:
        if rng.random() < config.missing_display_rate:
            return None
        if rng.random() < config.nickname_rate:
            style = rng.choice(_CASUAL_STYLES)
        else:
            style = rng.choice(self.styles)
        rendered = format_name(name, style)
        if rng.random() < config.typo_rate:
            rendered = typo(rendered, rng)
        return rendered


#: Fraction of the corpus timeline after which a changed name (and the
#: account adopted with it) is in effect — late, so the new-name era is
#: the smaller side of the split (the paper's D owner married recently).
NAME_CHANGE_TIME = 0.8


def _account_at(person, time: float, rng: random.Random) -> str:
    """Account used at *time*: era-based with 10% era bleed-through.

    A person whose name changed adopts their newest account exactly at
    the name change; for everyone else the eras split the timeline
    evenly.
    """
    accounts = person.emails
    if len(accounts) == 1:
        return accounts[0]
    if person.former_name is not None:
        if time >= NAME_CHANGE_TIME:
            return accounts[-1]
        early = accounts[:-1]
        era = min(int(time / NAME_CHANGE_TIME * len(early)), len(early) - 1)
        return early[era]
    era = min(int(time * len(accounts)), len(accounts) - 1)
    if rng.random() < 0.1:
        era = rng.randrange(len(accounts))
    return accounts[era]


def _name_at(person, time: float) -> PersonName:
    """Name in effect at *time*."""
    if person.former_name is not None and time < NAME_CHANGE_TIME:
        return person.former_name
    return person.name


def generate_messages(
    world: World, config: EmailCorpusConfig, rng: random.Random
) -> list[Message]:
    """Sample the full email corpus for *world*."""
    people = [
        person for person in world.persons.values() if not person.is_mailing_list
    ]
    lists = [person for person in world.persons.values() if person.is_mailing_list]
    habits = {
        person.entity_id: _PersonHabits(person.entity_id, config, rng)
        for person in people
    }
    # Contact affinity: the owner talks to everyone (zipf-ish); others
    # talk within their circle.
    owner = world.owner
    circle_of: dict[str, list[str]] = {}
    for circle in world.circles:
        for person_id in circle:
            circle_of[person_id] = circle

    messages: list[Message] = []
    for index in range(config.n_messages):
        time = index / max(config.n_messages, 1)
        if rng.random() < config.owner_sends_rate:
            sender = owner
        else:
            sender = rng.choice(people)
        # Recipients: mostly the owner's mailbox means the owner is
        # usually on the message.
        recipients: list = []
        if sender is not owner:
            recipients.append(owner)
        pool = circle_of.get(sender.entity_id) or [person.entity_id for person in people]
        extra = rng.randint(0 if recipients else 1, 3)
        candidates = [
            world.persons[person_id]
            for person_id in pool
            if person_id != sender.entity_id
        ]
        rng.shuffle(candidates)
        for person in candidates[:extra]:
            if person not in recipients:
                recipients.append(person)
        if lists and rng.random() < config.mailing_list_rate:
            recipients.append(rng.choice(lists))
        if not recipients:
            continue

        participants: list[Participant] = []
        for role, person in [("from", sender)] + [("to", r) for r in recipients]:
            if person.is_mailing_list:
                participants.append(
                    Participant(
                        entity_id=person.entity_id,
                        display_name=person.name.given,
                        address=person.emails[0],
                        role=role,
                    )
                )
                continue
            name = _name_at(person, time)
            display = habits[person.entity_id].render(name, config, rng)
            address = _account_at(person, time, rng)
            if lists and rng.random() < config.contamination_rate:
                # Extraction glitch: the person's slot ends up holding
                # the address of the list the mail went through. The
                # display name is lost in the same glitch — a surviving
                # full name would let one bad reference bridge the whole
                # person cluster into the list cluster.
                address = rng.choice(lists).emails[0]
                display = None
            participants.append(
                Participant(
                    entity_id=person.entity_id,
                    display_name=display,
                    address=address,
                    role=role,
                )
            )
        messages.append(
            Message(
                message_id=f"m{index:05d}",
                time=time,
                participants=tuple(participants),
            )
        )
    return messages
