"""Synthetic bibliography-corpus generation.

Produces :class:`BibEntry` objects mirroring what a PIM extractor pulls
out of Bibtex/LaTeX files: each *file* has an author-format style and a
venue-mention preference, the *same paper* shows up in several files
(the reconciliation opportunity), and noise enters through title typos,
dropped authors, missing pages/years and venue-form variation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .names import format_name, typo
from .world import PaperEntity, VenueEntity, World

__all__ = ["BibEntry", "BibCorpusConfig", "generate_bib_entries", "render_venue"]


@dataclass(frozen=True)
class BibEntry:
    """One bibliography item as the extractor sees it."""

    entry_id: str
    paper_id: str  # gold article entity
    title: str
    author_names: tuple[str, ...]  # rendered mentions, order preserved
    author_ids: tuple[str, ...]  # gold person entities, aligned
    venue_name: str
    venue_id: str  # gold venue entity
    year: str  # "" when missing
    pages: str  # "" when missing


@dataclass(frozen=True)
class BibCorpusConfig:
    n_files: int = 5
    entries_per_file: tuple[int, int] = (15, 35)
    #: probability the whole file uses one author style (curated file)
    #: vs. mixing styles per entry (pasted-together file).
    consistent_style_rate: float = 0.7
    title_typo_rate: float = 0.03
    author_drop_rate: float = 0.05  # "et al." truncation
    pages_missing_rate: float = 0.25
    year_missing_rate: float = 0.15
    #: probability a venue is mentioned by a *different* form than the
    #: file's preference (acronym in a full-name file etc.).
    venue_form_flip_rate: float = 0.25


_AUTHOR_STYLES = (
    "first_last",
    "first_middle_last",
    "last_comma_first",
    "last_comma_initials",
    "initials_last",
)

_VENUE_FORMS = ("acronym", "branded", "full", "proceedings", "dated")


def render_venue(
    venue: VenueEntity, form: str, year: int, rng: random.Random
) -> str:
    """Render one venue mention in the requested form."""
    if form == "acronym" and venue.acronym:
        return venue.acronym
    if form == "branded" and venue.acronym:
        brand = "ACM" if venue.kind != "workshop" else ""
        return f"{brand} {venue.acronym}".strip()
    if form == "proceedings":
        if venue.acronym and rng.random() < 0.5:
            return f"Proceedings of {venue.acronym}"
        return f"Proceedings of the {venue.full_name}"
    if form == "dated" and venue.acronym:
        return f"{venue.acronym} {year}"
    return venue.full_name


def _render_authors(
    paper: PaperEntity,
    world: World,
    style: str | None,
    config: BibCorpusConfig,
    rng: random.Random,
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    names: list[str] = []
    ids: list[str] = []
    author_ids = list(paper.author_ids)
    if (
        len(author_ids) > 2
        and rng.random() < config.author_drop_rate
    ):
        author_ids = author_ids[:2]  # "et al." truncation
    for author_id in author_ids:
        person = world.persons[author_id]
        entry_style = style or rng.choice(_AUTHOR_STYLES)
        rendered = format_name(person.name, entry_style)
        if rng.random() < config.title_typo_rate:
            rendered = typo(rendered, rng)
        names.append(rendered)
        ids.append(author_id)
    return tuple(names), tuple(ids)


def generate_bib_entries(
    world: World, config: BibCorpusConfig, rng: random.Random
) -> list[BibEntry]:
    """Sample all bibliography entries across the owner's bib files."""
    papers = sorted(world.papers.values(), key=lambda paper: paper.entity_id)
    if not papers:
        return []
    entries: list[BibEntry] = []
    for file_index in range(config.n_files):
        file_style: str | None = None
        if rng.random() < config.consistent_style_rate:
            file_style = rng.choice(_AUTHOR_STYLES)
        preferred_form = rng.choice(_VENUE_FORMS)
        count = rng.randint(*config.entries_per_file)
        chosen = rng.sample(papers, min(count, len(papers)))
        for entry_index, paper in enumerate(chosen):
            title = paper.title
            if rng.random() < config.title_typo_rate:
                title = typo(title, rng)
            author_names, author_ids = _render_authors(
                paper, world, file_style, config, rng
            )
            venue = world.venues[paper.venue_id]
            form = preferred_form
            if rng.random() < config.venue_form_flip_rate:
                form = rng.choice(_VENUE_FORMS)
            venue_name = render_venue(venue, form, paper.year, rng)
            year = "" if rng.random() < config.year_missing_rate else str(paper.year)
            pages = "" if rng.random() < config.pages_missing_rate else paper.pages
            entries.append(
                BibEntry(
                    entry_id=f"f{file_index:02d}e{entry_index:03d}",
                    paper_id=paper.entity_id,
                    title=title,
                    author_names=author_names,
                    author_ids=author_ids,
                    venue_name=venue_name,
                    venue_id=paper.venue_id,
                    year=year,
                    pages=pages,
                )
            )
    return entries
