"""Synthetic data generation: worlds, corpora, and noise models."""

from .bibtex import BibCorpusConfig, BibEntry, generate_bib_entries, render_venue
from .emails import EmailCorpusConfig, Message, Participant, generate_messages
from .names import NAME_FORMATS, NamePool, PersonName, format_name, typo
from .world import (
    PaperEntity,
    PersonEntity,
    VenueEntity,
    World,
    WorldConfig,
    build_world,
)

__all__ = [
    "BibCorpusConfig",
    "BibEntry",
    "generate_bib_entries",
    "render_venue",
    "EmailCorpusConfig",
    "Message",
    "Participant",
    "generate_messages",
    "NAME_FORMATS",
    "NamePool",
    "PersonName",
    "format_name",
    "typo",
    "PaperEntity",
    "PersonEntity",
    "VenueEntity",
    "World",
    "WorldConfig",
    "build_world",
]
