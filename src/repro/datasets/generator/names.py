"""Name pools and name-presentation machinery for the synthetic worlds.

The paper stresses that its dataset owners come "from different
countries (including China, India and the USA)" because "names and
email addresses of persons from these countries have very different
characteristics" (§5.1, footnote 2). The pools below model those three
cultures:

* US names: long distinctive surnames, rich nickname usage.
* Chinese names (pinyin): *short* given and family names drawn from a
  small pool — exactly the "short names with significant overlap" that
  §5.3 blames for dataset C's lower precision.
* Indian names: long given names, initial-heavy citation habits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ...similarity.nicknames import NICKNAMES, all_name_forms

__all__ = ["PersonName", "NamePool", "format_name", "typo", "NAME_FORMATS"]


_US_GIVEN = [
    "michael", "robert", "william", "james", "john", "david", "richard",
    "thomas", "charles", "christopher", "daniel", "matthew", "donald",
    "kenneth", "steven", "edward", "george", "ronald", "anthony", "kevin",
    "jason", "jeffrey", "timothy", "joshua", "lawrence", "nicholas",
    "gregory", "samuel", "benjamin", "patrick", "alexander", "jonathan",
    "frederick", "raymond", "theodore", "eugene", "harold", "walter",
    "gerald", "douglas", "peter", "henry", "arthur", "albert", "joseph",
    "jack", "dennis", "jerry", "margaret", "elizabeth", "katherine",
    "jennifer", "linda", "barbara", "susan", "jessica", "sarah", "karen",
    "nancy", "lisa", "betty", "dorothy", "sandra", "ashley", "kimberly",
    "donna", "emily", "michelle", "carol", "amanda", "melissa", "deborah",
    "stephanie", "rebecca", "laura", "helen", "amy", "anna", "angela",
    "ruth", "brenda", "pamela", "nicole", "christine", "catherine",
    "victoria", "rachel", "janet", "alice", "julie", "judith", "abigail",
]

_US_SURNAME = [
    "smith", "johnson", "williams", "brown", "jones", "miller", "davis",
    "wilson", "anderson", "taylor", "thomas", "moore", "jackson", "martin",
    "thompson", "white", "harris", "clark", "lewis", "robinson", "walker",
    "hall", "allen", "young", "king", "wright", "scott", "green", "baker",
    "adams", "nelson", "carter", "mitchell", "roberts", "turner", "phillips",
    "campbell", "parker", "evans", "edwards", "collins", "stewart", "morris",
    "murphy", "cook", "rogers", "peterson", "cooper", "reed", "bailey",
    "bell", "kelly", "howard", "ward", "cox", "richardson", "wood", "watson",
    "brooks", "bennett", "gray", "hughes", "price", "sanders", "ross",
    "henderson", "coleman", "jenkins", "perry", "powell", "patterson",
    "stonebraker", "epstein", "halloran", "fitzgerald", "whitman",
    "vandenberg", "kowalski", "ferraro", "lindqvist", "oconnell",
    "armstrong", "harrington", "blackwood", "castellano", "dombrowski",
    "eriksson", "fairbanks", "gallagher", "hawthorne", "ivanova",
]

# Pinyin pools; deliberately small, matching the real-world collision
# rate of romanised Chinese names.
_CN_GIVEN = [
    "wei", "min", "jun", "hui", "ling", "ping", "yan", "lei", "jing",
    "fang", "hong", "li", "na", "tao", "qiang", "bo", "ying", "mei",
    "xin", "chen", "hao", "yu", "kai", "feng", "lin", "xiaoming",
    "xiaohui", "xiaowei", "jianguo", "zhiyuan", "yichen", "ruolan",
]

_CN_SURNAME = [
    "wang", "li", "zhang", "liu", "chen", "yang", "huang", "zhao", "wu",
    "zhou", "xu", "sun", "ma", "zhu", "hu", "guo", "he", "gao", "lin",
    "luo", "zheng", "liang", "xie", "tang", "deng", "feng", "song",
]

_IN_GIVEN = [
    "rajesh", "rajiv", "sanjay", "anil", "sunil", "vijay", "ashok",
    "ramesh", "suresh", "venkatesh", "krishna", "ganesh", "arun",
    "deepak", "manish", "prakash", "subramanian", "srinivasan", "anand",
    "karthik", "lakshmi", "priya", "kavita", "sunita", "meena", "anita",
    "shweta", "divya", "pooja", "nandini", "aravind", "balaji",
]

_IN_SURNAME = [
    "sharma", "gupta", "patel", "kumar", "singh", "agarwal", "iyer",
    "krishnan", "raman", "nair", "menon", "reddy", "rao", "chandra",
    "bhattacharya", "mukherjee", "chatterjee", "banerjee", "desai",
    "joshi", "mehta", "kapoor", "verma", "srivastava", "chopra",
    "venkataraman", "subramaniam", "ramakrishnan", "natarajan",
]

_POOLS = {
    "us": (_US_GIVEN, _US_SURNAME),
    "cn": (_CN_GIVEN, _CN_SURNAME),
    "in": (_IN_GIVEN, _IN_SURNAME),
}

# Reverse nickname map: formal given name -> possible nicknames.
_FORMAL_TO_NICK: dict[str, list[str]] = {}
for _nick, _formals in NICKNAMES.items():
    for _formal in _formals:
        _FORMAL_TO_NICK.setdefault(_formal, []).append(_nick)
for _formal in _FORMAL_TO_NICK:
    _FORMAL_TO_NICK[_formal].sort()


@dataclass(frozen=True)
class PersonName:
    """A ground-truth person name (all parts lower-case)."""

    given: str
    middle: str  # possibly empty
    surname: str
    nickname: str  # possibly empty

    @property
    def full(self) -> str:
        if self.middle:
            return f"{self.given} {self.middle} {self.surname}"
        return f"{self.given} {self.surname}"


#: The presentation formats extractors encounter; each maps a
#: :class:`PersonName` to a mention string.
NAME_FORMATS = (
    "first_last",  # Michael Stonebraker
    "first_middle_last",  # Michael R. Stonebraker
    "last_comma_first",  # Stonebraker, Michael
    "last_comma_initials",  # Stonebraker, M. / Stonebraker, M.R.
    "initial_last",  # M. Stonebraker
    "initials_last",  # M. R. Stonebraker
    "nickname_last",  # Mike Stonebraker
    "nickname",  # mike
    "first_only",  # michael
)


class NamePool:
    """Draws unique ground-truth names from a culture mix.

    ``culture_mix`` maps culture code ("us" / "cn" / "in") to a weight.
    ``homonym_rate`` is the probability that a newly drawn name reuses
    an already-issued (given, surname) combination — a distinct person
    with a colliding name, the dataset-C hazard.
    """

    def __init__(
        self,
        rng: random.Random,
        *,
        culture_mix: dict[str, float] | None = None,
        homonym_rate: float = 0.0,
        middle_rate: float = 0.3,
    ) -> None:
        self._rng = rng
        mix = culture_mix or {"us": 0.7, "cn": 0.15, "in": 0.15}
        self._cultures = sorted(mix)
        self._weights = [mix[culture] for culture in self._cultures]
        self._homonym_rate = homonym_rate
        self._middle_rate = middle_rate
        self._issued: list[PersonName] = []
        self._used_combos: set[tuple[str, str]] = set()

    def draw(self) -> PersonName:
        """Draw the next ground-truth name.

        Accidental (given, surname) collisions are rejected, so the
        homonym rate is exactly ``homonym_rate`` — collisions happen by
        design, not by birthday paradox.
        """
        rng = self._rng
        if self._issued and rng.random() < self._homonym_rate:
            template = rng.choice(self._issued)
            name = PersonName(
                given=template.given,
                middle="",
                surname=template.surname,
                nickname=template.nickname,
            )
            self._issued.append(name)
            return name
        for _ in range(200):
            culture = rng.choices(self._cultures, weights=self._weights)[0]
            givens, surnames = _POOLS[culture]
            given = rng.choice(givens)
            surname = rng.choice(surnames)
            # Reject collisions across nickname equivalence too: a
            # "Jack Smith" after a "John Smith" would be an accidental
            # (nickname-level) homonym.
            if all(
                (form, surname) not in self._used_combos
                for form in all_name_forms(given)
            ):
                break
        middle = ""
        if culture == "us" and rng.random() < self._middle_rate:
            middle = rng.choice("abcdefghjklmnprstw")
        nicknames = _FORMAL_TO_NICK.get(given, [])
        nickname = rng.choice(nicknames) if nicknames else ""
        name = PersonName(
            given=given, middle=middle, surname=surname, nickname=nickname
        )
        for form in all_name_forms(given):
            self._used_combos.add((form, surname))
        self._issued.append(name)
        return name


def format_name(name: PersonName, style: str, *, rng: random.Random | None = None) -> str:
    """Render *name* in one of :data:`NAME_FORMATS`.

    Output casing is title-case, as extractors see it in the wild.
    """
    given = name.given.capitalize()
    surname = name.surname.capitalize()
    middle_initial = (name.middle[0].upper() + ".") if name.middle else ""
    if style == "first_last":
        return f"{given} {surname}"
    if style == "first_middle_last":
        if middle_initial:
            return f"{given} {middle_initial} {surname}"
        return f"{given} {surname}"
    if style == "last_comma_first":
        return f"{surname}, {given}"
    if style == "last_comma_initials":
        initials = given[0].upper() + "."
        if name.middle:
            initials += name.middle[0].upper() + "."
        return f"{surname}, {initials}"
    if style == "initial_last":
        return f"{given[0].upper()}. {surname}"
    if style == "initials_last":
        if middle_initial:
            return f"{given[0].upper()}. {middle_initial} {surname}"
        return f"{given[0].upper()}. {surname}"
    if style == "nickname_last":
        nick = (name.nickname or name.given).capitalize()
        return f"{nick} {surname}"
    if style == "nickname":
        return name.nickname or name.given
    if style == "first_only":
        return name.given
    raise ValueError(f"unknown name format {style!r}")


_KEYBOARD_NEIGHBOURS = {
    "a": "sq", "b": "vn", "c": "xv", "d": "sf", "e": "wr", "f": "dg",
    "g": "fh", "h": "gj", "i": "uo", "j": "hk", "k": "jl", "l": "k",
    "m": "n", "n": "bm", "o": "ip", "p": "o", "q": "wa", "r": "et",
    "s": "ad", "t": "ry", "u": "yi", "v": "cb", "w": "qe", "x": "zc",
    "y": "tu", "z": "x",
}


def typo(text: str, rng: random.Random) -> str:
    """Apply one realistic keyboard-model edit to *text*.

    The edit kinds (substitution / transposition / deletion /
    duplication) match the Damerau model the comparators assume.
    """
    letters = [i for i, ch in enumerate(text) if ch.isalpha()]
    if not letters:
        return text
    position = rng.choice(letters)
    kind = rng.randrange(4)
    chars = list(text)
    ch = chars[position].lower()
    if kind == 0:  # substitution with a keyboard neighbour
        neighbours = _KEYBOARD_NEIGHBOURS.get(ch, "e")
        chars[position] = rng.choice(neighbours)
    elif kind == 1 and position + 1 < len(chars):  # transposition
        chars[position], chars[position + 1] = chars[position + 1], chars[position]
    elif kind == 2 and len(chars) > 3:  # deletion
        del chars[position]
    else:  # duplication
        chars.insert(position, chars[position])
    return "".join(chars)
