"""Deterministic multi-process scoring of candidate pairs.

The graph build's hot loop — scoring every blocking-generated candidate
pair against its class's atomic channels — is embarrassingly parallel:
no union happens while a class's pairs are scored, so workers need no
partition state, only attribute values. The engine fans the pair list
out here and then materialises nodes **in the original pair order** in
the main process, which keeps the graph, the counters and therefore
the whole run byte-identical to a serial build (``--workers 1``).

Channels hold comparator closures and are not picklable, so workers
are handed a *domain spec* (``module:qualname``) at pool start-up,
rebuild the domain themselves, and select channels by name per chunk.
Domains that cannot be rebuilt that way (defined in a test function,
needing constructor arguments) make :class:`ParallelScorer` raise at
construction; the engine records a ``parallel_fallback`` degradation
and runs serially.

:class:`ParallelScorer` is the *unsupervised* pool: one failure in any
chunk aborts the whole ``score`` call (after shutting the pool down,
so no worker ever leaks). The retrying, bisecting, ladder-degrading
wrapper lives in :mod:`repro.runtime.supervisor` and reuses this
module's chunking and worker entry points.
"""

from __future__ import annotations

import importlib
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor

from .scoring import pair_evidence

__all__ = [
    "ParallelScorer",
    "domain_spec",
    "iterate_chunk",
    "make_chunks",
    "rebuild_domain",
]


def domain_spec(domain) -> str | None:
    """``module:qualname`` spec a worker can rebuild *domain* from, or
    ``None`` when the domain is not rebuildable (local class, shadowed
    name, constructor that needs arguments)."""
    cls = type(domain)
    if "<" in cls.__qualname__ or "." in cls.__qualname__:
        return None
    try:
        module = importlib.import_module(cls.__module__)
    except ImportError:
        return None
    if getattr(module, cls.__qualname__, None) is not cls:
        return None
    try:
        cls()
    except Exception:
        return None
    return f"{cls.__module__}:{cls.__qualname__}"


def make_chunks(
    class_name: str,
    channel_names: tuple[str, ...],
    pairs: list[tuple[str, str]],
    values: dict[str, dict[str, tuple[str, ...]]],
    chunk_count: int,
) -> list[tuple]:
    """Split *pairs* into ``_score_chunk`` payloads.

    Chunk boundaries depend only on ``len(pairs)`` and *chunk_count*,
    never on which workers are alive, so the supervisor can retry or
    bisect a chunk without perturbing the rest of the build. Each chunk
    ships only the attribute values its own pairs mention.
    """
    chunk_size = -(-len(pairs) // chunk_count)
    chunks = []
    for start in range(0, len(pairs), chunk_size):
        chunk_pairs = pairs[start : start + chunk_size]
        elements = {element for pair in chunk_pairs for element in pair}
        chunk_values = {element: values[element] for element in elements}
        chunks.append((class_name, channel_names, chunk_pairs, chunk_values))
    return chunks


# Worker-process state, populated once by the pool initializer. The
# memo persists across chunks, so repeated value pairs cost one
# comparator call per *worker*, mirroring the serial build's memo.
_WORKER: dict = {}


def rebuild_domain(spec: str):
    """Instantiate a fresh domain from a :func:`domain_spec` string.

    The inverse of :func:`domain_spec`; shared by the scoring workers
    and the shard runner's per-shard engine processes."""
    module_name, _, qualname = spec.partition(":")
    cls = getattr(importlib.import_module(module_name), qualname)
    return cls()


def _init_worker(spec: str, chaos=None, relay: bool = False) -> None:
    _WORKER["domain"] = rebuild_domain(spec)
    _WORKER["channels"] = {}
    _WORKER["memo"] = {}
    # Fault-injection seam (tests / chaos soak only): an object with a
    # ``before_chunk(class_name, pairs, chunk_index)`` method, consulted
    # before each chunk is scored. Production runs pass None.
    _WORKER["chaos"] = chaos
    _WORKER["chunk_index"] = 0
    # Telemetry capture (parent has a relay attached): spans/counters
    # buffer here and ship back piggybacked on each chunk's result.
    if relay:
        from ..obs.relay import WorkerTelemetry

        _WORKER["telemetry"] = WorkerTelemetry("scoring worker")
    else:
        _WORKER["telemetry"] = None


def _worker_channels(class_name: str, channel_names: tuple[str, ...]):
    key = (class_name, channel_names)
    channels = _WORKER["channels"].get(key)
    if channels is None:
        by_name = {
            channel.name: channel
            for channel in _WORKER["domain"].atomic_channels(class_name)
        }
        # Selecting by the names the *parent* enabled replicates its
        # config (ablations) without shipping the config over.
        channels = [by_name[name] for name in channel_names]
        _WORKER["channels"][key] = channels
    return channels


def _score_chunk(payload):
    """Score one chunk; returns ``(evidence_lists, telemetry_payload)``.

    The second element is ``None`` unless the parent attached a relay —
    the evidence lists themselves are byte-identical either way (the
    memo-counter side channel never feeds back into scoring).
    """
    class_name, channel_names, pairs, values = payload
    chaos = _WORKER.get("chaos")
    if chaos is not None:
        index = _WORKER.get("chunk_index", 0)
        _WORKER["chunk_index"] = index + 1
        chaos.before_chunk(class_name, pairs, index)
    channels = _worker_channels(class_name, channel_names)
    memo = _WORKER["memo"]
    recorder = _WORKER.get("telemetry")
    if recorder is None:
        return (
            [
                pair_evidence(channels, values[left], values[right], memo)
                for left, right in pairs
            ],
            None,
        )
    stats = recorder.pair_stats()
    start = time.perf_counter()
    results = [
        pair_evidence(channels, values[left], values[right], memo, stats=stats)
        for left, right in pairs
    ]
    duration = time.perf_counter() - start
    recorder.add_span(
        "score_chunk", start, duration, class_name=class_name, pairs=len(pairs)
    )
    recorder.count("repro_worker_chunks_total")
    recorder.count("repro_worker_pairs_scored_total", len(pairs))
    recorder.absorb_pair_stats(stats)
    recorder.observe("repro_worker_chunk_seconds", duration)
    return results, recorder.drain()


def iterate_chunk(engine, keys, chaos, chunk_index: int, relay: bool = False):
    """Child-side entry for one speculative iterate chunk.

    Runs inside a process forked directly off the engine's own, so
    *engine* is the inherited copy-on-write snapshot — no spec, no
    values shipping, just the key list. The same fault seam as build
    chunks applies, under the pseudo class name ``__iterate__``;
    *chunk_index* is the parent's submission counter, so chaos
    schedules target iterate chunks as deterministically as build
    chunks.

    Returns ``(payloads, telemetry_payload)``; the telemetry half is
    ``None`` unless the parent attached a relay. Both travel over the
    child's result pipe in one pickle.
    """
    if chaos is not None:
        from ..runtime.faults import mark_forked_worker

        mark_forked_worker()
        chaos.before_chunk("__iterate__", list(keys), chunk_index)
    from .speculate import speculate_keys

    if not relay:
        return speculate_keys(engine, keys), None
    from ..obs.relay import WorkerTelemetry

    recorder = WorkerTelemetry("iterate child")
    start = time.perf_counter()
    payloads = speculate_keys(engine, keys)
    duration = time.perf_counter() - start
    recorder.add_span(
        "speculate_chunk", start, duration, keys=len(keys), chunk=chunk_index
    )
    recorder.count("repro_iterate_child_chunks_total")
    recorder.count("repro_iterate_child_keys_total", len(keys))
    recorder.observe("repro_iterate_child_chunk_seconds", duration)
    return payloads, recorder.drain()


class ParallelScorer:
    """A process pool scoring candidate pairs for the engine.

    ``score`` preserves input order exactly: chunk *k*'s results come
    back before chunk *k+1*'s regardless of which worker finished
    first, so the engine can zip results with pairs. Any failure shuts
    the pool down before the exception propagates — a failed build
    never leaks worker processes. The scorer is also a context manager
    for the same reason.
    """

    def __init__(self, domain, workers: int, *, chaos=None, relay=None) -> None:
        spec = domain_spec(domain)
        if spec is None:
            raise ValueError(
                f"domain {type(domain).__qualname__} is not reconstructible "
                "in worker processes (needs a module-level class with a "
                "no-argument constructor)"
            )
        if workers < 2:
            raise ValueError("ParallelScorer needs at least 2 workers")
        self.workers = workers
        self._relay = relay
        try:
            # fork shares the already-imported interpreter state; spawn
            # (the only option on some platforms) re-imports per worker.
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platform without fork
            context = multiprocessing.get_context()
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(spec, chaos, relay is not None),
        )

    def __enter__(self) -> "ParallelScorer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def score(
        self,
        class_name: str,
        channel_names: tuple[str, ...],
        pairs: list[tuple[str, str]],
        values: dict[str, dict[str, tuple[str, ...]]],
    ) -> list[list[tuple[str, str, str, float]]]:
        """Evidence lists for *pairs*, in the same order as *pairs*."""
        if not pairs:
            return []
        try:
            # A few chunks per worker smooths out uneven chunk costs
            # without drowning the pool in pickling overhead.
            chunk_count = min(len(pairs), self.workers * 4)
            chunks = make_chunks(class_name, channel_names, pairs, values, chunk_count)
            results: list[list[tuple[str, str, str, float]]] = []
            for chunk_result, telemetry_payload in self._pool.map(_score_chunk, chunks):
                if telemetry_payload is not None and self._relay is not None:
                    self._relay.absorb(telemetry_payload)
                results.extend(chunk_result)
            return results
        except BaseException:
            self.shutdown()
            raise

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)
