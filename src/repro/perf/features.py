"""Per-value feature precomputation for the hot comparator paths.

Profiling the graph build shows the comparators spend most of their
time *re-deriving* the same per-value artifacts for every candidate
pair: tokenising and normalising titles, parsing names and email
addresses, expanding venue acronyms. A :class:`FeatureCache` computes
each value's features exactly once per process and hands the similarity
layer's fast-path comparators (``*_similarity_features``) precomputed
inputs, so per-pair work reduces to set operations plus the occasional
bounded edit-distance kernel.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..similarity.emails import email_features
from ..similarity.names import parse_name
from ..similarity.phonetic import metaphone, soundex
from ..similarity.titles import title_features
from ..similarity.tokens import tokenize
from ..similarity.venues import venue_features

__all__ = ["FeatureCache", "PhoneticProfile", "phonetic_profile", "STANDARD_EXTRACTORS"]

_MISSING = object()


@dataclass(frozen=True)
class PhoneticProfile:
    """Soundex / metaphone codes of a value's tokens, for phonetic
    blocking and phonetic evidence channels."""

    tokens: tuple[str, ...]
    soundex_codes: tuple[str, ...]
    metaphone_codes: tuple[str, ...]


def phonetic_profile(value: str) -> PhoneticProfile:
    tokens = tuple(tokenize(value))
    return PhoneticProfile(
        tokens=tokens,
        soundex_codes=tuple(soundex(token) for token in tokens),
        metaphone_codes=tuple(metaphone(token) for token in tokens),
    )


#: The extractors the shipped domains wire into their channels. Keyed
#: by feature kind; each maps a raw attribute value to its features.
STANDARD_EXTRACTORS: dict[str, Callable[[str], object]] = {
    "name": parse_name,
    "email": email_features,
    "title": title_features,
    "venue": venue_features,
    "phonetic": phonetic_profile,
}


class FeatureCache:
    """Process-local memo of derived per-value features.

    Entries are keyed ``(kind, value)`` so one cache serves every
    extractor of a domain. ``hits`` / ``misses`` feed the engine's
    cache-effectiveness stats; they are cumulative over the cache's
    lifetime (a domain instance reused across runs keeps counting).
    """

    __slots__ = ("_store", "hits", "misses")

    def __init__(self) -> None:
        self._store: dict[tuple[str, str], object] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def get(self, kind: str, value: str, compute: Callable[[str], object]):
        """The features of *value* under *kind*, computing on first use."""
        key = (kind, value)
        found = self._store.get(key, _MISSING)
        if found is not _MISSING:
            self.hits += 1
            return found
        self.misses += 1
        features = compute(value)
        self._store[key] = features
        return features

    def extractor(self, kind: str, compute: Callable[[str], object] | None = None):
        """A single-argument extractor closure over this cache.

        *compute* defaults to the standard extractor registered for
        *kind*. The closure is what gets attached to an
        :class:`~repro.core.model.AtomicChannel` as ``features_left`` /
        ``features_right``.
        """
        if compute is None:
            compute = STANDARD_EXTRACTORS[kind]

        def extract(value: str):
            return self.get(kind, value, compute)

        extract.__name__ = f"extract_{kind}"
        return extract

    def clear(self) -> int:
        """Drop every entry; returns how many were held."""
        dropped = len(self._store)
        self._store.clear()
        return dropped

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / total) if total else 0.0,
        }
