"""Performance layer: feature precomputation, shared hot-path scoring,
and deterministic parallel candidate-pair scoring.

Everything here is an *optimisation*, never a semantics change: the
fast comparators are exact above the engine's decision floor, the
prefilters are sound upper bounds, and parallel builds are
byte-identical to serial ones. ``benchmarks/`` and
``scripts/record_bench.py`` keep the layer honest.
"""

from .features import FeatureCache, PhoneticProfile, phonetic_profile
from .parallel import ParallelScorer, domain_spec
from .scoring import channel_value_pairs, memoised_score, pair_evidence, score_value_pair

__all__ = [
    "FeatureCache",
    "ParallelScorer",
    "PhoneticProfile",
    "channel_value_pairs",
    "domain_spec",
    "memoised_score",
    "pair_evidence",
    "phonetic_profile",
    "score_value_pair",
]
