"""Speculative batched parallel iterate: wavefront execution of §3.2.

The iterate loop is inherently sequential — each decision may change
the evidence the next one reads — but in practice most simultaneously
*active* nodes are independent: they read disjoint clusters, disjoint
contact sets and disjoint neighbour scores. This module exploits that
independence without ever trusting it:

* the executor **peeks** (never pops) the next window of live keys and
  fans them out in chunks, each chunk forked directly off the engine's
  process (:class:`~repro.runtime.supervisor.IterateSupervisor`), so
  every chunk scores against a copy-on-write snapshot taken *at its
  own submission*; the child runs the engine's own
  :meth:`~repro.core.engine.Reconciler._compute` while recording every
  read (cluster roots consulted, pair nodes whose score or status was
  used);
* the parent's pop/process loop is byte-for-byte the serial loop; at
  each pop it *claims* the speculative result for that key and
  **validates** it against a ledger of everything that changed since
  that chunk's fork — cluster roots touched by a union, pair keys
  whose node's observable state a commit changed — using monotone
  sequence numbers, so each chunk is judged against exactly the
  commits it could not have seen;
* a validated result stands in for the in-line ``_compute`` (same
  pure function, proven-unchanged inputs ⇒ same value); an
  invalidated, stale, or missing one simply falls back to computing
  in-line. Either way the commit, propagation, queue pushes and
  provenance records all happen in the parent, in pop order.

Hence the determinism argument is *by construction*: speculation is a
validated cache in front of a pure function, and the serial loop never
changes shape. The only deltas a speculative run can show are
execution-dependent counters (speculation/hit/invalidation counts).

Failure handling rides on the supervisor: retries (fresh forks),
deadlines, and the crash ladder all end, at worst, in a *dropped*
speculation — never a poisoned pair, never a changed result.
"""

from __future__ import annotations

import gc

from ..core.nodes import NodeStatus

__all__ = [
    "ReadRecorder",
    "SpecResult",
    "SpeculationLedger",
    "SpeculativeExecutor",
    "speculate_keys",
]


class ReadRecorder:
    """Accumulates one speculative ``_compute``'s read set.

    ``roots`` — cluster roots (and, in non-enrich mode, raw reference
    ids, whose values are immutable and therefore harmless) whose
    movement would change the computation. ``pairs`` — resolved pair
    keys whose node's score or merged status was consulted.
    """

    __slots__ = ("roots", "pairs")

    def __init__(self) -> None:
        self.roots: set = set()
        self.pairs: set = set()


class SpecResult:
    """A validated speculative score, ready to stand in for
    ``_compute``: ``score`` is ``None`` for a conflict (the parent
    applies the non-merge marking), ``capture`` is the provenance
    evidence the child assembled (identical, field for field, to what
    the in-line compute would have filled in)."""

    __slots__ = ("outcome", "score", "capture")

    def __init__(self, outcome: str, score: float | None, capture: dict | None):
        self.outcome = outcome
        self.score = score
        self.capture = capture


def speculate_keys(engine, keys) -> list[dict]:
    """Child-side scoring of *keys* against the forked snapshot.

    Returns one payload per key, in order. ``stale`` payloads carry no
    score — the node was already resolved (or transitively connected)
    in the snapshot, so the parent's own liveness/connectivity
    prechecks will handle it. Scored payloads carry the read set for
    validation. Nothing here mutates any state the parent will ever
    see: the engine is a copy-on-write fork, and ``_compute`` itself
    is pure.
    """
    uf = engine.uf
    graph = engine.graph
    out: list[dict] = []
    for key in keys:
        node = graph.get_key(key)
        if node is None or node.status is not NodeStatus.ACTIVE:
            out.append({"key": key, "outcome": "stale"})
            continue
        if uf.connected(node.left, node.right):
            # Connectivity is monotone, so the parent's live precheck
            # takes the transitive-merge path no matter what we say.
            out.append({"key": key, "outcome": "stale"})
            continue
        recorder = ReadRecorder()
        recorder.roots.add(uf.find(node.left))
        recorder.roots.add(uf.find(node.right))
        capture: dict = {}
        engine._read_recorder = recorder
        try:
            score = engine._compute(node, capture)
        finally:
            engine._read_recorder = None
        out.append(
            {
                "key": key,
                "outcome": "conflict" if score is None else "score",
                "score": score,
                "capture": capture,
                "roots": sorted(recorder.roots),
                "pairs": sorted(recorder.pairs),
            }
        )
    return out


class SpeculationLedger:
    """Monotone log of everything speculation-visible that changed.

    Every union (fed by a union-find listener: both the survivor *and*
    the absorbed root) and every state-changing commit advances a
    sequence number and stamps the touched root / pair key with it. A
    chunk forked when the sequence stood at *S* is valid for a read
    exactly when nothing it read was stamped after *S* — so chunks
    forked at different moments are each judged against precisely the
    commits their snapshot missed, with no epochs to reset and no
    global staleness creep.

    The dirty-root rule is sound because union stamps are transitive
    within the stamp order: the first union touching a cluster stamps
    the root the chunk saw; later unions involving that cluster stamp
    the then-current roots, which are reachable only through earlier
    stamped unions. Pair keys additionally check their two component
    elements against dirty roots — fusion re-keys a node only when a
    union dirtied its elements, so alias movement is always caught.
    """

    def __init__(self, uf) -> None:
        self._uf = uf
        self.seq = 0
        self.dirty_roots: dict = {}
        self.committed_pairs: dict = {}
        uf.add_union_listener(self._on_union)

    def _on_union(self, survivor, absorbed) -> None:
        self.seq += 1
        self.dirty_roots[survivor] = self.seq
        self.dirty_roots[absorbed] = self.seq

    def note_commit(self, key) -> None:
        self.seq += 1
        self.committed_pairs[key] = self.seq

    def valid(self, roots, pairs, fork_seq: int) -> bool:
        dirty = self.dirty_roots
        committed = self.committed_pairs
        for root in roots:
            if dirty.get(root, 0) > fork_seq:
                return False
        for pair in pairs:
            if committed.get(pair, 0) > fork_seq:
                return False
            if dirty.get(pair[0], 0) > fork_seq or dirty.get(pair[1], 0) > fork_seq:
                return False
        return True

    def close(self) -> None:
        self._uf.remove_union_listener(self._on_union)


class SpeculativeExecutor:
    """Chunk scheduler + validated result cache for the iterate loop.

    The engine calls :meth:`maybe_refill` once per step (peek the
    queue head, fork chunks until the supervisor's concurrency is
    used), :meth:`claim` right after every pop (harvest, validate,
    count), :meth:`note_commit` after every state-changing commit, and
    :meth:`close` in a finally.

    The in-flight window is the lever between parallelism and drift:
    deep windows keep children busy but speculate further past
    uncommitted merges (each chunk's results are claimed up to a full
    window after its fork, and every commit in between is a chance to
    invalidate them). ``iterate_batch`` bounds the window; chunk size
    is the window split across the supervisor's current concurrency.
    """

    def __init__(self, engine, supervisor, *, batch: int, telemetry=None) -> None:
        self.engine = engine
        self.supervisor = supervisor
        self.batch = max(1, int(batch))
        self.pending: dict = {}  # key -> _ChunkHandle (shared per chunk)
        self.results: dict = {}  # key -> (fork_seq, payload)
        self.inflight: list = []  # unharvested handles, submission order
        self.speculated = 0
        self.hits = 0
        self.invalidated = 0
        self.stale = 0
        self._tracer = None
        self._hist = None
        if telemetry is not None and telemetry.active:
            self._tracer = telemetry.tracer
            if telemetry.metrics is not None:
                self._hist = telemetry.metrics.histogram(
                    "repro_speculation_batch",
                    "keys speculated per forked chunk",
                )
        self.ledger = SpeculationLedger(engine.uf)
        self._closed = False
        self._purged_at = -1  # queue.discards value at the last sweep
        self._cooldown = 0  # pops to skip after a fruitless refill
        # Copy-on-write hygiene: every object the cyclic GC touches gets
        # its header rewritten, which re-dirties (and therefore re-copies)
        # the whole heap page by page after *every* fork. Freezing the
        # built graph into the permanent generation keeps those pages
        # clean across forks; collection resumes at close(). This is an
        # execution-shaping change only — object lifetimes during the
        # iterate loop are dominated by direct refcounting.
        gc.freeze()
        self._frozen = True

    # -- scheduling -----------------------------------------------------
    def maybe_refill(self, queue) -> None:
        """Fork fresh chunks from the queue's head until the window or
        the supervisor's concurrency is full.

        Called once per pop, so the steady state — concurrency full,
        window full — must cost O(1), not O(window): the expensive
        steps (peeking, prefiltering, purging discarded keys) only run
        when a chunk slot or window slot might actually be free.
        """
        supervisor = self.supervisor
        if not supervisor.speculation_enabled:
            return
        workers = max(1, supervisor.current_workers)
        if len(self.inflight) >= workers:
            # Concurrency is full; the only upkeep needed is reaping
            # chunks whose every key fusion has discarded (claim would
            # never drain them), which the discard-gated sweep covers.
            self._purge_dead(queue)
            if len(self.inflight) >= workers:
                return
        if (len(self.pending) + len(self.results)) * 2 > self.batch:
            self._purge_dead(queue)
            if (len(self.pending) + len(self.results)) * 2 > self.batch:
                return
        # Peeking and prefiltering cost O(batch); a queue whose head
        # region holds no candidates (every key's node already resolved)
        # would otherwise pay that on every single pop. After a
        # fruitless attempt, sit out the next few pops — the head has
        # to advance before the picture can change.
        if self._cooldown > 0:
            self._cooldown -= 1
            return
        in_flight = len(self.inflight)
        peeked = queue.peek_batch(self.batch, max_scan=self.batch * 4)
        # Parent-side prefilter, mirroring the loop's own liveness and
        # connectivity prechecks: the queue may hold thousands of keys
        # whose nodes were already resolved (the initial seeding is the
        # whole graph), and shipping those to a child just to learn
        # "stale" would crowd every real candidate out of the window.
        graph = self.engine.graph
        uf = self.engine.uf
        fresh = []
        for key in peeked:
            if key in self.pending or key in self.results:
                continue
            node = graph.get_key(key)
            if node is None or node.status is not NodeStatus.ACTIVE:
                continue
            if uf.connected(node.left, node.right):
                continue
            fresh.append(key)
        if not fresh:
            self._cooldown = max(1, self.batch // (2 * workers))
            return
        chunk = max(1, self.batch // workers)
        for start in range(0, len(fresh), chunk):
            if in_flight >= workers:
                break
            keys = fresh[start : start + chunk]
            # A fork costs milliseconds regardless of chunk size; a
            # scrap-sized trailing chunk isn't worth one while other
            # chunks are already in flight — those keys stay in the
            # queue and are re-peeked once the candidate pool regrows.
            if len(keys) * 2 < chunk and in_flight > 0:
                if start == 0:
                    self._cooldown = max(1, self.batch // (2 * workers))
                break
            fork_seq = self.ledger.seq
            handle = supervisor.submit(keys)
            if handle is None:  # fork failed; the ladder has reacted
                return
            handle.fork_seq = fork_seq
            handle.started = self._tracer.now() if self._tracer is not None else 0.0
            for key in keys:
                self.pending[key] = handle
            self.inflight.append(handle)
            in_flight += 1
            self.speculated += len(keys)
            if self._hist is not None:
                self._hist.observe(len(keys))

    def _purge_dead(self, queue) -> None:
        """Evict speculation state for keys no longer in the queue.

        Fusion can :meth:`~repro.core.queue.ActiveQueue.discard` a key
        after it was speculated; such a key is never popped, so
        :meth:`claim` never consumes it. Left alone, dead entries fill
        the in-flight window until speculation silently stops, and a
        fully-dead chunk would leak its child. Chunks whose keys are
        all dead are harvested so the child is drained and reaped.

        Entries only die through discards, so when the queue's discard
        counter hasn't moved since the last sweep there is nothing to
        find and the sweep is skipped — without this the full-window
        steady state would rescan every held result on every pop.
        """
        if queue.discards == self._purged_at:
            return
        self._purged_at = queue.discards
        if self.inflight:
            is_live = queue.is_live
            for handle in list(self.inflight):
                if not any(is_live(key) for key in handle.keys):
                    self._harvest(handle)
        if self.results:
            is_live = queue.is_live
            dead = [key for key in self.results if not is_live(key)]
            for key in dead:
                del self.results[key]

    # -- consumption ----------------------------------------------------
    def claim(self, key):
        """The validated speculative result for *key*, or ``None``.

        Must be called for every popped key (even ones whose node went
        stale) so in-flight entries never leak. Blocks to drain the
        key's chunk when the child is still computing — by then its
        sibling chunks are already running, which is the pipelining
        win.
        """
        handle = self.pending.get(key)
        if handle is not None:
            self._harvest(handle)
        entry = self.results.pop(key, None)
        if entry is None:
            return None
        fork_seq, payload = entry
        if payload["outcome"] == "stale":
            self.stale += 1
            return None
        if not self.ledger.valid(payload["roots"], payload["pairs"], fork_seq):
            self.invalidated += 1
            return None
        self.hits += 1
        return SpecResult(payload["outcome"], payload["score"], payload["capture"])

    def forget(self, key) -> None:
        """Drop speculation state for a popped key the loop will skip.

        Never blocks on the child: a pending entry just decrements its
        chunk's outstanding count, and only a chunk with *no* claimable
        key left is drained (by then it is finished or moot — transitive
        merges killed its whole key range). A held result is simply
        discarded.
        """
        handle = self.pending.pop(key, None)
        if handle is not None:
            handle.remaining -= 1
            if handle.remaining <= 0:
                self._harvest(handle)
        self.results.pop(key, None)

    def _harvest(self, handle) -> None:
        try:
            self.inflight.remove(handle)
        except ValueError:
            pass
        # Only keys still pending want their payload; keys already
        # claimed or forgotten must not re-enter the window as results
        # nobody will ever pop.
        wanted = [key for key in handle.keys if key in self.pending]
        payloads = self.supervisor.harvest(handle)
        for key in wanted:
            del self.pending[key]
        if payloads is not None:
            fork_seq = handle.fork_seq
            wanted_set = set(wanted)
            for payload in payloads:
                if payload["key"] in wanted_set:
                    self.results[payload["key"]] = (fork_seq, payload)
        if self._tracer is not None:
            now = self._tracer.now()
            self._tracer.complete(
                "iterate_batch",
                handle.started,
                now - handle.started,
                keys=len(handle.keys),
                dropped=payloads is None,
            )

    def note_commit(self, *keys) -> None:
        """Record that a processed node's observable state changed.

        Both the popped key and the node's current key are recorded
        (they differ only after fusion re-keying, which the dirty-root
        rule already covers — recording both is belt and braces).
        """
        for key in keys:
            self.ledger.note_commit(key)

    # -- teardown -------------------------------------------------------
    def close(self) -> None:
        """Kill stragglers, unhook the ledger, fold counters into
        stats.

        Runs in the engine's ``finally``: injected faults and guard
        trips can never leak iterate children or leave the union-find
        listener behind.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.supervisor.shutdown()
        finally:
            self.ledger.close()
            if self._frozen:
                self._frozen = False
                gc.unfreeze()
        stats = self.engine.stats
        stats.speculated_nodes += self.speculated
        stats.speculation_hits += self.hits
        stats.speculation_invalidated += self.invalidated
        stats.speculation_dropped += self.supervisor.counters.get(
            "speculation_dropped", 0
        )
        stats.iterate_workers = self.supervisor.current_workers
