"""Shared atomic-channel scoring used by the serial and parallel builds.

The engine's first-pass node construction and the worker processes of
:mod:`repro.perf.parallel` both funnel through :func:`pair_evidence`,
so a parallel build cannot diverge from the serial one: identical
channel order, identical value-pair enumeration, identical prefilter
and memo semantics.

Scores flow through three layers, every one of them exact above the
floor the engine compares against:

1. an optional *upper-bound prefilter* (``channel.score_upper_bound``)
   skips the comparator entirely when the score cannot reach the
   channel's liberal threshold;
2. a *fast comparator* (``channel.fast_comparator``) consumes
   precomputed per-value features instead of raw strings;
3. a per-process *memo* caches the result per distinct value pair, so
   the same "j. smith" vs "smith, j" comparison runs once per build,
   not once per candidate pair that mentions it.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

__all__ = ["channel_value_pairs", "score_value_pair", "memoised_score", "pair_evidence"]

#: outcome tags of :func:`memoised_score`, consumed by the engine's
#: cache-effectiveness counters.
HIT = "hit"
MISS = "miss"
PREFILTERED = "prefiltered"


def channel_value_pairs(
    channel,
    left_values: Mapping[str, tuple[str, ...]],
    right_values: Mapping[str, tuple[str, ...]],
) -> Iterator[tuple[str, str]]:
    """All comparable value pairs of one channel, both orientations for
    cross-attribute channels.

    For cross channels the yielded pair is always oriented
    ``(left_attr value, right_attr value)`` regardless of which side of
    the reference pair contributed which, so the comparator always sees
    e.g. ``(name, email)`` in that order.
    """
    for value_l in left_values.get(channel.left_attr, ()):
        for value_r in right_values.get(channel.right_attr, ()):
            yield value_l, value_r
    if channel.is_cross:
        for value_l in left_values.get(channel.right_attr, ()):
            for value_r in right_values.get(channel.left_attr, ()):
                yield value_r, value_l


def score_value_pair(channel, value_l: str, value_r: str, floor: float) -> float | None:
    """Score one value pair against *floor*; ``None`` means prefiltered.

    The contract with the engine: the engine only ever tests
    ``score >= floor``, so the fast path must return the exact
    slow-path score whenever the true score reaches *floor* and may
    return anything strictly below *floor* (or ``None``) otherwise.
    The upper-bound skip uses a strict ``<`` so a bound that *equals*
    the floor still runs the comparator.
    """
    fast = channel.fast_comparator
    if fast is None:
        return channel.comparator(value_l, value_r)
    left_features = channel.features_left(value_l)
    right_features = channel.features_right(value_r)
    upper_bound = channel.score_upper_bound
    if upper_bound is not None and upper_bound(left_features, right_features) < floor:
        return None
    return fast(left_features, right_features, floor)


def memoised_score(
    channel, value_l: str, value_r: str, floor: float, memo: dict
) -> tuple[float | None, str]:
    """:func:`score_value_pair` through a per-process memo.

    Entries store ``(floor, score)`` and are reusable at any floor at
    least as high as the stored one: a stored score at or above its
    floor is the exact true score, and a stored score (or ``None``)
    below its floor certifies the true score is below that floor too —
    both verdicts survive raising the floor. A lookup at a *lower*
    floor recomputes and the entry is replaced with the lower floor,
    making it strictly more reusable.
    """
    # Class name disambiguates same-named channels of different classes
    # (PIM's Person.name and Venue.name use different comparators).
    key = (channel.class_name, channel.name, value_l, value_r)
    entry = memo.get(key)
    if entry is not None and entry[0] <= floor:
        return entry[1], HIT
    score = score_value_pair(channel, value_l, value_r, floor)
    memo[key] = (floor, score)
    return score, (PREFILTERED if score is None else MISS)


def pair_evidence(
    channels,
    left_values: Mapping[str, tuple[str, ...]],
    right_values: Mapping[str, tuple[str, ...]],
    memo: dict,
    floor: float | None = None,
    stats=None,
) -> list[tuple[str, str, str, float]]:
    """Atomic value evidence for one candidate reference pair.

    Returns ``(channel_name, value_l, value_r, score)`` tuples in the
    exact order the serial engine would create the value nodes. *floor*
    is the force-path floor (strong dependencies keep even weak
    evidence); ``None`` means each channel's liberal threshold applies.
    *stats*, when given, receives the memo/prefilter counter updates
    (``pair_memo_hits`` / ``pair_memo_misses`` / ``prefilter_skips``).
    """
    evidence: list[tuple[str, str, str, float]] = []
    for channel in channels:
        threshold = (
            channel.liberal_threshold
            if floor is None
            else min(channel.liberal_threshold, floor)
        )
        for value_l, value_r in channel_value_pairs(channel, left_values, right_values):
            score, outcome = memoised_score(channel, value_l, value_r, threshold, memo)
            if stats is not None:
                if outcome is HIT:
                    stats.pair_memo_hits += 1
                else:
                    stats.pair_memo_misses += 1
                    if outcome is PREFILTERED:
                        stats.prefilter_skips += 1
            if score is not None and score >= threshold:
                evidence.append((channel.name, value_l, value_r, score))
    return evidence
