"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — write a synthetic benchmark dataset (PIM A-D / Cora)
  to a directory as JSON-lines.
* ``reconcile`` — load a dataset directory, run DepGraph (or InDepDec),
  and write the resulting partition as JSON.
* ``evaluate`` — reconcile and score against the dataset's gold
  standard (pairwise + B-cubed).
* ``tables`` — regenerate any of the paper's tables on the terminal.
* ``explain`` — reconcile, then explain why two references did (or did
  not) end up in one cluster.
* ``diff`` — compare two run directories (manifests + provenance) and
  localize regressions: flipped merge decisions with channel/threshold
  attribution and root-cause chains, quality deltas, phase slowdowns.
  Exits nonzero on regression so CI can gate on it.
* ``report`` — given a run directory (``--run-dir`` output), write a
  single self-contained HTML run report; given a ``.md`` path, run the
  full experiment suite and write the markdown report (legacy form).
* ``watch`` — monitor a run directory from a second terminal: tail its
  ``events.jsonl`` like ``tail -f``, or print one snapshot and exit
  with ``--once``. Works on concurrent *and* finished runs.
* ``doctor`` — post-mortem diagnosis of a recorded run: reads the
  crash bundle (when the run crashed or degraded) and the manifest,
  prints what failed, what degraded, the flight-recorder tail and
  actionable hints. Exit code 0 = clean, 1 = crashed/degraded,
  2 = nothing to diagnose.
* ``hotspots`` — heavy-hitter workload attribution for a recorded
  run: hottest blocks by candidate pairs, most-recomputed reference
  pairs by attributed wall time, similarity-channel comparison
  counts, and per-class blocking skew (Gini / max-block share).

``reconcile`` / ``evaluate`` / ``explain`` accept ``--run-dir DIR`` to
collect a run's artifacts in one directory and emit a versioned
``run.json`` manifest — the unit ``diff`` and ``report`` operate on.
They also accept ``--live`` (an in-place stderr HUD) and ``--profile``
(a sampling wall-clock profiler exporting folded stacks + speedscope
JSON); neither changes results.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from .baselines import indepdec_config
from .core import EngineConfig, Reconciler
from .core.explain import explain_merge
from .datasets import generate_cora_dataset, generate_pim_dataset
from .datasets.io import load_dataset, save_dataset
from .domains import CoraDomainModel, PimDomainModel
from .evaluation.clustering import bcubed_scores
from .evaluation.metrics import pairwise_scores
from .obs import (
    LEVELS,
    ProvenanceLog,
    Telemetry,
    build_manifest,
    diff_runs,
    load_manifest,
    render_degradations,
    render_diff,
    render_quarantine,
    render_stats,
    resolve_artifact,
    write_manifest,
)

__all__ = ["main", "build_parser"]


def _domain_for(dataset_name: str):
    return CoraDomainModel() if dataset_name.lower().startswith("cora") else PimDomainModel()


def _config_for(algorithm: str, domain) -> EngineConfig:
    if algorithm == "indepdec":
        return indepdec_config(domain)
    return EngineConfig()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reference reconciliation in complex information spaces "
        "(Dong, Halevy & Madhavan, SIGMOD 2005)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="write a synthetic dataset")
    generate.add_argument("dataset", choices=["A", "B", "C", "D", "cora"])
    generate.add_argument("directory", help="output directory")
    generate.add_argument("--scale", type=float, default=1.0)

    reconcile = commands.add_parser("reconcile", help="reconcile a dataset directory")
    reconcile.add_argument("directory")
    reconcile.add_argument("--algorithm", choices=["depgraph", "indepdec"],
                           default="depgraph")
    reconcile.add_argument("--output", default="-", help="partition JSON (default stdout)")

    evaluate = commands.add_parser("evaluate", help="reconcile and score against gold")
    evaluate.add_argument("directory")
    evaluate.add_argument("--algorithm", choices=["depgraph", "indepdec"],
                          default="depgraph")

    explain = commands.add_parser("explain", help="why were two references merged?")
    explain.add_argument("directory")
    explain.add_argument("ref_a")
    explain.add_argument("ref_b")
    explain.add_argument(
        "--run", default=None, metavar="DIR",
        help="answer from a recorded run directory: the provenance log "
        "is resolved through DIR's run.json manifest instead of being "
        "re-recorded",
    )

    for runner in (reconcile, evaluate, explain):
        obs = runner.add_argument_group("observability")
        obs.add_argument(
            "--run-dir", default=None, metavar="DIR",
            help="collect this run's artifacts in DIR and write a "
            "versioned run.json manifest (config fingerprint, partition "
            "digest, per-class quality, convergence samples); records "
            "provenance to DIR/provenance.jsonl and the event stream to "
            "DIR/events.jsonl (what `repro watch` tails) unless "
            "--provenance / --log-json point elsewhere. The unit "
            "`repro diff` / `repro report` operate on",
        )
        obs.add_argument(
            "--log-json", default=None, metavar="PATH",
            help="write a structured JSONL event stream (run phases, "
            "degradations, checkpoints) to PATH; append mode, so a "
            "resumed run continues the same log",
        )
        obs.add_argument(
            "--log-level", default="info", choices=sorted(LEVELS),
            help="minimum event level for --log-json (default info; debug "
            "adds per-merge events and iterate progress)",
        )
        obs.add_argument(
            "--trace", default=None, metavar="PATH",
            help="write nested timed spans as Chrome trace-event JSON to "
            "PATH (load in chrome://tracing or Perfetto)",
        )
        obs.add_argument(
            "--metrics", default=None, metavar="PATH", action="append",
            help="write the metrics registry snapshot to PATH — Prometheus "
            "text for .prom/.txt paths, JSON otherwise; repeatable to "
            "export both formats",
        )
        obs.add_argument(
            "--provenance", default=None, metavar="PATH",
            help="record every merge/non-merge decision (channel scores, "
            "thresholds, triggering propagation) to a JSONL audit log",
        )
        obs.add_argument(
            "--profile", action="store_true",
            help="sample the engine's wall-clock stack (~100 Hz, stdlib "
            "sampler) and write profile.folded + profile.speedscope.json "
            "into the run directory (or the working directory without "
            "--run-dir); strictly observational, results unchanged",
        )
        obs.add_argument(
            "--live", action="store_true",
            help="redraw a one-line status HUD on stderr while the run "
            "executes (phase, queue depth, merges, cache hit rate, ETA); "
            "read-only, results unchanged",
        )

    for runner in (reconcile, evaluate):
        perf = runner.add_argument_group("performance")
        perf.add_argument(
            "--workers", type=int, default=1, metavar="N",
            help="worker processes for candidate-pair scoring during the "
            "graph build; results are byte-identical to --workers 1 "
            "(default 1 = serial)",
        )
        perf.add_argument(
            "--iterate-workers", type=int, default=1, metavar="N",
            help="forked workers speculatively scoring the iterate loop's "
            "upcoming queue window; results are byte-identical to the "
            "serial loop (default 1 = no speculation)",
        )
        perf.add_argument(
            "--iterate-batch", type=int, default=64, metavar="KEYS",
            help="speculation window: how many queue-head keys may be in "
            "flight at once (default 64; execution-shaping only, never "
            "affects results)",
        )
        perf.add_argument(
            "--shards", type=int, default=1, metavar="N",
            help="partition the references into N shards (connected "
            "components of the interaction graph, packed by candidate-"
            "pair weight) and run a full engine per shard, then "
            "reconcile the cut to fixpoint; results are byte-identical "
            "to --shards 1 (default 1 = whole-graph run)",
        )
        perf.add_argument(
            "--shard-workers", type=int, default=1, metavar="N",
            help="run up to N shard engines concurrently, each in its "
            "own forked process (default 1 = shards run serially in-"
            "process); only meaningful with --shards",
        )
        perf.add_argument(
            "--stats", action="store_true",
            help="print engine statistics (timings, counters, cache hit "
            "rates) to stderr after the run",
        )
        runtime = runner.add_argument_group("runtime (fault tolerance)")
        runtime.add_argument(
            "--deadline", type=float, default=None, metavar="SECONDS",
            help="wall-clock budget; past it the run stops gracefully with "
            "a partial (but valid) partition",
        )
        runtime.add_argument(
            "--max-recomputations", type=int, default=None, metavar="N",
            help="recomputation budget enforced by the run guard",
        )
        runtime.add_argument(
            "--checkpoint-dir", default=None, metavar="DIR",
            help="periodically checkpoint engine state into DIR",
        )
        runtime.add_argument(
            "--checkpoint-every", type=int, default=500, metavar="STEPS",
            help="iterate steps between checkpoints (default 500)",
        )
        runtime.add_argument(
            "--resume", default=None, metavar="CHECKPOINT",
            help="resume from a checkpoint file written by --checkpoint-dir",
        )
        runtime.add_argument(
            "--lenient", action="store_true",
            help="quarantine malformed records to quarantine.jsonl instead "
            "of aborting the load",
        )
        runtime.add_argument(
            "--task-timeout", type=float, default=None, metavar="SECONDS",
            help="per-task deadline for supervised parallel scoring; a "
            "chunk past it is treated as hung (pool rebuild + retry)",
        )
        runtime.add_argument(
            "--max-task-retries", type=int, default=None, metavar="N",
            help="supervised re-executions of a failed scoring chunk "
            "before bisecting it to isolate the poisoned pair (default 2)",
        )
        runtime.add_argument(
            "--retry-backoff", type=float, default=None, metavar="SECONDS",
            help="base backoff before the first chunk retry; doubles per "
            "retry with seeded jitter (default 0.05)",
        )

    tables = commands.add_parser("tables", help="regenerate a paper table")
    tables.add_argument(
        "which",
        choices=["1", "2", "3", "4", "5", "6", "7", "fig6"],
    )
    tables.add_argument("--scale", type=float, default=1.0)

    diff = commands.add_parser(
        "diff", help="localize regressions between two recorded runs"
    )
    diff.add_argument("run_a", help="baseline run directory (or its run.json)")
    diff.add_argument("run_b", help="candidate run directory (or its run.json)")
    diff.add_argument(
        "--json", default=None, metavar="PATH",
        help="additionally write the structured verdict as JSON",
    )
    diff.add_argument(
        "--quality-tolerance", type=float, default=0.0, metavar="DELTA",
        help="absolute per-class metric drop tolerated before gating "
        "(default 0: runs are deterministic, any drop is real)",
    )
    diff.add_argument(
        "--phase-tolerance", type=float, default=0.25, metavar="FRACTION",
        help="relative phase slowdown tolerated (default 0.25 = 25%%)",
    )
    diff.add_argument(
        "--phase-floor", type=float, default=0.05, metavar="SECONDS",
        help="absolute slowdown a phase must also exceed (default 0.05s)",
    )
    diff.add_argument(
        "--max-flips", type=int, default=20, metavar="N",
        help="flipped pairs to localize in detail (default 20)",
    )

    report = commands.add_parser(
        "report",
        help="HTML report for a run directory, or the markdown "
        "experiments report for a .md path",
    )
    report.add_argument(
        "target",
        help="a run directory containing run.json (writes a "
        "self-contained HTML report) or an output .md path (runs all "
        "experiments and writes the markdown report)",
    )
    report.add_argument(
        "--output", default=None, metavar="PATH",
        help="HTML output path (default <run_dir>/report.html); run-"
        "directory targets only",
    )
    report.add_argument("--scale", type=float, default=1.0)

    watch = commands.add_parser(
        "watch", help="monitor a run directory's event stream"
    )
    watch.add_argument(
        "run_dir",
        help="a run directory (its events artifact is resolved through "
        "run.json when present, DIR/events.jsonl otherwise) or an "
        "events.jsonl path",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="print one multi-line snapshot of the run's current state "
        "and exit instead of following the file",
    )
    watch.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="poll interval while following (default 0.5)",
    )
    watch.add_argument(
        "--max-idle", type=float, default=None, metavar="SECONDS",
        help="stop following after the log has been silent this long "
        "(default: follow until run_end arrives)",
    )

    doctor = commands.add_parser(
        "doctor", help="post-mortem diagnosis of a recorded run"
    )
    doctor.add_argument(
        "run_dir",
        help="a run directory (reads crash_bundle.json and run.json when "
        "present) or a crash_bundle.json path",
    )

    hotspots = commands.add_parser(
        "hotspots", help="heavy-hitter workload attribution for a run"
    )
    hotspots.add_argument(
        "run_dir", help="a run directory containing run.json (or the file)"
    )
    hotspots.add_argument(
        "--json", action="store_true",
        help="print the manifest's raw hotspot summary as JSON instead "
        "of the rendered tables",
    )
    return parser


def _cmd_generate(args) -> int:
    if args.dataset == "cora":
        dataset = generate_cora_dataset()
    else:
        dataset = generate_pim_dataset(args.dataset, scale=args.scale)
    path = save_dataset(dataset, args.directory)
    summary = dataset.summary()
    print(
        f"wrote {summary['references']} references "
        f"({summary['entities']} entities) to {path}"
    )
    return 0


def _telemetry_from(options, *, force_provenance: bool = False) -> Telemetry | None:
    """Build the telemetry bundle the CLI flags ask for (or ``None``)."""
    if options is None:
        return None
    log_path = getattr(options, "log_json", None)
    trace = getattr(options, "trace", None)
    metrics = getattr(options, "metrics", None)
    provenance_path = getattr(options, "provenance", None)
    wants_provenance = force_provenance or provenance_path is not None
    if not (log_path or trace or metrics or wants_provenance):
        return None
    telemetry = Telemetry.enabled(
        log_path=log_path,
        log_level=getattr(options, "log_level", "info") or "info",
        trace=bool(trace),
        metrics=bool(metrics),
        provenance=wants_provenance,
        provenance_path=provenance_path,
    )
    return telemetry


def _export_telemetry(telemetry: Telemetry | None, options) -> None:
    """Write the file-backed exports after the run and close sinks."""
    if telemetry is None:
        return
    trace = getattr(options, "trace", None) if options is not None else None
    if trace and telemetry.tracer is not None:
        telemetry.tracer.write(trace)
    metric_paths = getattr(options, "metrics", None) if options is not None else None
    if metric_paths and telemetry.metrics is not None:
        for path in metric_paths:
            telemetry.metrics.write(path)
    telemetry.close()


def _apply_run_dir(options) -> Path | None:
    """Materialize ``--run-dir``: create it and default the provenance
    log and event stream into it (truncating stale ones on a fresh,
    non-resume run so both artifacts match this run exactly; a resumed
    run append-continues them). Idempotent."""
    run_dir = getattr(options, "run_dir", None) if options is not None else None
    if not run_dir:
        return None
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    resuming = bool(getattr(options, "resume", None))
    if not resuming:
        # A stale crash bundle describes some *previous* run; a fresh
        # run must start with none so its absence means "clean".
        from .obs.flight import CRASH_BUNDLE_FILENAME

        (run_dir / CRASH_BUNDLE_FILENAME).unlink(missing_ok=True)
    if getattr(options, "provenance", None) is None:
        default = run_dir / "provenance.jsonl"
        if not resuming:
            default.unlink(missing_ok=True)
        options.provenance = str(default)
    if getattr(options, "log_json", None) is None:
        # The event stream is what `repro watch` tails, so every
        # --run-dir run records one by default.
        default = run_dir / "events.jsonl"
        if not resuming:
            default.unlink(missing_ok=True)
        options.log_json = str(default)
    return run_dir


def _run_artifacts(options, run_dir: Path) -> dict:
    """Artifact-kind -> path map for the manifest; paths inside the run
    directory are recorded relative so the directory stays portable."""
    def _rel(path) -> str:
        resolved = Path(path).resolve()
        try:
            return str(resolved.relative_to(run_dir.resolve()))
        except ValueError:
            return str(resolved)

    artifacts: dict[str, str] = {}
    for kind, attr in (
        ("provenance", "provenance"),
        ("events", "log_json"),
        ("trace", "trace"),
    ):
        value = getattr(options, attr, None)
        if value:
            artifacts[kind] = _rel(value)
    for path in getattr(options, "metrics", None) or []:
        artifacts.setdefault("metrics", _rel(path))
    if getattr(options, "profile", False):
        artifacts["profile"] = "profile.folded"
        artifacts["speedscope"] = "profile.speedscope.json"
    if int(getattr(options, "workers", 1) or 1) > 1:
        artifacts["poison_log"] = "poisoned_pairs.jsonl"
    return artifacts


def _dump_bundle(run_dir: Path, reconciler, *, reason, exc=None, stop_reason=None):
    """Best-effort crash-bundle dump; never masks the original error."""
    from .obs.flight import build_crash_bundle, dump_crash_bundle

    try:
        phase = "iterate" if getattr(reconciler, "_built", False) else "build"
        bundle = build_crash_bundle(
            reason=reason,
            engine=reconciler,
            exc=exc,
            phase=phase,
            stop_reason=stop_reason,
        )
        return dump_crash_bundle(run_dir, bundle)
    except Exception as dump_error:  # pragma: no cover - defensive
        print(f"crash-bundle dump failed: {dump_error!r}", file=sys.stderr)
        return None


def _run_sharded_cli(
    dataset, domain, config, algorithm, options, telemetry, run_dir, shards
):
    """The ``--shards N`` execution path of :func:`_run`.

    Returns the same ``(dataset, engine-like, result)`` triple. The
    merged run writes the same artifacts a whole-graph run does — the
    provenance log holds the canonically re-sequenced decisions of all
    shards, and the manifest's invariant core is byte-identical to the
    serial run's (the shard plan and per-shard engine rows land in the
    execution section). Differences from the whole-graph path, all
    reported rather than silent: run guards and crash bundles are
    per-engine and do not apply; convergence samples are keyed by the
    global recomputation counter, so a sharded run records none;
    ``--resume`` names the sharded checkpoint *root* (the directory
    holding ``shard-<i>/`` subdirectories), not a checkpoint file.
    """
    from .shard import (
        build_sharded_manifest,
        merge_provenance,
        merged_result,
        run_sharded,
    )

    shard_workers = int(getattr(options, "shard_workers", 1) or 1)
    resume_root = getattr(options, "resume", None) if options is not None else None
    checkpoint_dir = getattr(options, "checkpoint_dir", None)
    if resume_root:
        checkpoint_dir = resume_root
    chaos = None
    chaos_env = os.environ.get("REPRO_CHAOS")
    if chaos_env:
        from .runtime.faults import ChaosInjector

        spec = json.loads(chaos_env)
        marker = spec.pop("marker_dir", None)
        if marker is None and run_dir is not None:
            marker = str(run_dir / "chaos_markers")
        if "raise_pairs" in spec:
            spec["raise_pairs"] = tuple(tuple(pair) for pair in spec["raise_pairs"])
        chaos = ChaosInjector(marker_dir=marker, **spec)
    sharded = run_sharded(
        dataset.store,
        domain,
        config,
        shards=shards,
        shard_workers=shard_workers,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=int(getattr(options, "checkpoint_every", 500) or 500),
        resume=bool(resume_root),
        chaos=chaos,
        telemetry=telemetry,
    )
    result = merged_result(sharded)
    degraded = render_degradations(result)
    if degraded:
        print(degraded, file=sys.stderr)
    if telemetry is not None:
        if telemetry.metrics is not None:
            telemetry.metrics.absorb_run_info(
                dataset=dataset.name, algorithm=algorithm
            )
        telemetry.emit(
            "info",
            "run_end",
            completed=result.completed,
            stop_reason=result.stop_reason,
            merges=result.stats.merges,
            recomputations=result.stats.recomputations,
        )
        _export_telemetry(telemetry, options)
    provenance_path = getattr(options, "provenance", None)
    if provenance_path:
        # Shard engines record provenance in memory; the merged,
        # canonically re-sequenced trail replaces whatever the parent
        # sink may have created at this path (it records nothing).
        with open(provenance_path, "w") as handle:
            for row in merge_provenance(sharded):
                handle.write(json.dumps(row, sort_keys=True) + "\n")
    if options is not None and getattr(options, "stats", False):
        print(render_stats(result.stats), file=sys.stderr)
    if run_dir is not None:
        artifacts = _run_artifacts(options, run_dir)
        manifest = build_sharded_manifest(
            dataset=dataset,
            sharded=sharded,
            result=result,
            config=config,
            algorithm=algorithm,
            artifacts=artifacts,
        )
        manifest_path = write_manifest(manifest, run_dir)
        print(f"wrote run manifest to {manifest_path}", file=sys.stderr)
    from .shard.merge import MergedRun

    return dataset, MergedRun(stats=result.stats, config=config), result


def _run(directory: str, algorithm: str, options=None, telemetry=None):
    lenient = bool(getattr(options, "lenient", False))
    run_dir = _apply_run_dir(options)
    if telemetry is None:
        telemetry = _telemetry_from(options)
    dataset = load_dataset(directory, lenient=lenient)
    if dataset.quarantined:
        print(render_quarantine(dataset.quarantined), file=sys.stderr)
        if telemetry is not None:
            telemetry.emit(
                "warning", "quarantine", records=len(dataset.quarantined)
            )
    domain = _domain_for(dataset.name)
    config = _config_for(algorithm, domain)
    workers = int(getattr(options, "workers", 1) or 1)
    iterate_workers = int(getattr(options, "iterate_workers", 1) or 1)
    overrides: dict = {}
    if iterate_workers > 1:
        overrides["iterate_workers"] = iterate_workers
        iterate_batch = getattr(options, "iterate_batch", None)
        if iterate_batch:
            overrides["iterate_batch"] = int(iterate_batch)
    if workers > 1:
        overrides["workers"] = workers
        if run_dir is not None:
            # Poisoned pairs are a run artifact like provenance: default
            # their quarantine file into the run directory.
            overrides["poison_log"] = str(run_dir / "poisoned_pairs.jsonl")
    for attr in ("task_timeout", "max_task_retries", "retry_backoff"):
        value = getattr(options, attr, None)
        if value is not None:
            overrides[attr] = value
    if overrides:
        from dataclasses import replace

        config = replace(config, **overrides)
    guard = None
    checkpointer = None
    if options is not None:
        deadline = getattr(options, "deadline", None)
        max_recomputations = getattr(options, "max_recomputations", None)
        if deadline is not None or max_recomputations is not None:
            from .runtime import RunGuard

            guard = RunGuard(
                deadline_seconds=deadline, max_recomputations=max_recomputations
            )
        if getattr(options, "checkpoint_dir", None):
            from .runtime import Checkpointer

            checkpointer = Checkpointer(
                options.checkpoint_dir, every=options.checkpoint_every
            )
    if telemetry is not None:
        telemetry.emit(
            "info",
            "run_start",
            dataset=dataset.name,
            algorithm=algorithm,
            references=len(dataset.store),
            workers=workers,
            iterate_workers=iterate_workers,
        )
    shards = int(getattr(options, "shards", 1) or 1)
    if shards > 1:
        return _run_sharded_cli(
            dataset,
            domain,
            config,
            algorithm,
            options,
            telemetry,
            run_dir,
            shards,
        )
    resume_path = getattr(options, "resume", None) if options is not None else None
    if resume_path:
        reconciler = Reconciler.resume(
            resume_path,
            store=dataset.store,
            domain=domain,
            config=config,
            telemetry=telemetry,
        )
    else:
        reconciler = Reconciler(dataset.store, domain, config, telemetry=telemetry)
    if run_dir is not None and dataset.gold.entity_of:
        # Convergence samples feed the manifest; keyed by the
        # (checkpointed) recomputation counter, so attaching after
        # resume reproduces an uninterrupted run's samples.
        reconciler.attach_convergence(dataset.gold.entity_of, every=50)
    chaos_env = os.environ.get("REPRO_CHAOS")
    if chaos_env:
        # Fault-injection seam for the CI crash-bundle job: a JSON
        # ChaosInjector spec (e.g. {"kill_at_chunk": 1}) attached to
        # the engine so a worker dies mid-run on demand.
        from .runtime.faults import ChaosInjector

        spec = json.loads(chaos_env)
        marker = spec.pop("marker_dir", None)
        if marker is None and run_dir is not None:
            marker = str(run_dir / "chaos_markers")
        if "raise_pairs" in spec:
            spec["raise_pairs"] = tuple(tuple(pair) for pair in spec["raise_pairs"])
        reconciler.chaos = ChaosInjector(marker_dir=marker, **spec)
    profiler = None
    if getattr(options, "profile", False):
        from .obs.profile import SamplingProfiler

        profiler = SamplingProfiler().start()
    hud = None
    if getattr(options, "live", False):
        from .obs.live import LiveHud

        hud = LiveHud()
        hud.phase("build")
    try:
        result = reconciler.run(
            guard=guard,
            checkpointer=checkpointer,
            step_hook=hud.step_hook if hud is not None else None,
        )
    except BaseException as exc:
        # The flight recorder's whole purpose: an unhandled failure in
        # a --run-dir run leaves a post-mortem bundle behind. Dumping
        # is best-effort and the original exception always propagates.
        if run_dir is not None:
            bundle_path = _dump_bundle(
                run_dir,
                reconciler,
                reason=f"unhandled {type(exc).__name__} during run",
                exc=exc,
            )
            if bundle_path is not None:
                print(f"wrote crash bundle to {bundle_path}", file=sys.stderr)
        raise
    finally:
        if hud is not None:
            hud.phase("done")
            hud.close()
        if profiler is not None:
            profiler.stop()
    if profiler is not None:
        base = run_dir if run_dir is not None else Path(".")
        folded_path = profiler.write_folded(base / "profile.folded")
        profiler.write_speedscope(
            base / "profile.speedscope.json", name=f"repro {dataset.name}"
        )
        print(
            f"wrote profile ({profiler.sample_count} samples) to "
            f"{folded_path} and {folded_path.with_name('profile.speedscope.json')}",
            file=sys.stderr,
        )
    degraded = render_degradations(result)
    if degraded:
        print(degraded, file=sys.stderr)
    if telemetry is not None:
        if telemetry.metrics is not None:
            telemetry.metrics.absorb_run_info(
                dataset=dataset.name, algorithm=algorithm
            )
        telemetry.emit(
            "info",
            "run_end",
            completed=result.completed,
            stop_reason=result.stop_reason,
            merges=reconciler.stats.merges,
            recomputations=reconciler.stats.recomputations,
        )
        _export_telemetry(telemetry, options)
    if options is not None and getattr(options, "stats", False):
        print(render_stats(reconciler.stats), file=sys.stderr)
    if run_dir is not None:
        from .obs.flight import CRASH_BUNDLE_FILENAME

        if result.degraded:
            # The run finished but not cleanly (guard trip, pool
            # collapse, poisoned pairs, ...): leave a bundle so
            # `repro doctor` can explain what degraded and why.
            kinds = sorted({event.kind for event in result.degradations})
            reason = (
                "degraded run: " + ", ".join(kinds)
                if kinds
                else "incomplete run"
            )
            bundle_path = _dump_bundle(
                run_dir,
                reconciler,
                reason=reason,
                stop_reason=result.stop_reason,
            )
            if bundle_path is not None:
                print(f"wrote crash bundle to {bundle_path}", file=sys.stderr)
        else:
            # A clean finish clears any bundle left by a crashed
            # attempt this run resumed from: no bundle == clean.
            (run_dir / CRASH_BUNDLE_FILENAME).unlink(missing_ok=True)
        artifacts = _run_artifacts(options, run_dir)
        if (run_dir / CRASH_BUNDLE_FILENAME).exists():
            # Execution-dependent by nature, and the artifacts section
            # is excluded from the manifest's invariant view.
            artifacts["crash_bundle"] = CRASH_BUNDLE_FILENAME
        manifest = build_manifest(
            dataset=dataset,
            reconciler=reconciler,
            result=result,
            algorithm=algorithm,
            artifacts=artifacts,
            resumed=bool(resume_path),
        )
        manifest_path = write_manifest(manifest, run_dir)
        print(f"wrote run manifest to {manifest_path}", file=sys.stderr)
    return dataset, reconciler, result


def _cmd_reconcile(args) -> int:
    dataset, _, result = _run(args.directory, args.algorithm, args)
    payload = {
        class_name: result.clusters(class_name)
        for class_name in dataset.store.schema.class_names
    }
    text = json.dumps(payload, indent=2)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote partition to {args.output}")
    return 0


def _cmd_evaluate(args) -> int:
    dataset, _, result = _run(args.directory, args.algorithm, args)
    if not dataset.gold.entity_of:
        print("dataset has no gold standard", file=sys.stderr)
        return 2
    gold = dataset.gold.entity_of
    print(f"{args.algorithm} on {dataset.name}:")
    for class_name in dataset.store.schema.class_names:
        clusters = result.clusters(class_name)
        pw = pairwise_scores(clusters, gold)
        b3 = bcubed_scores(clusters, gold)
        print(
            f"  {class_name:10s} pairwise P={pw.precision:.3f} R={pw.recall:.3f} "
            f"F={pw.f_measure:.3f} | b3 P={b3.precision:.3f} R={b3.recall:.3f} "
            f"F={b3.f_measure:.3f} | partitions={result.partition_count(class_name)}"
        )
    return 0


def _cmd_tables(args) -> int:
    from .evaluation import (
        figure6_series,
        render_figure6,
        render_table1,
        render_table2,
        render_table3,
        render_table4,
        render_table5,
        render_table6,
        render_table7,
        table1_dataset_properties,
        table2_class_averages,
        table3_person_subsets,
        table4_per_dataset,
        table5_ablation_grid,
        table6_constraints,
        table7_cora,
    )

    scale = args.scale
    dispatch = {
        "1": lambda: render_table1(table1_dataset_properties(scale)),
        "2": lambda: render_table2(table2_class_averages(scale)),
        "3": lambda: render_table3(table3_person_subsets(scale)),
        "4": lambda: render_table4(table4_per_dataset(scale)),
        "5": lambda: render_table5(table5_ablation_grid(scale)),
        "6": lambda: render_table6(table6_constraints(scale)),
        "7": lambda: render_table7(table7_cora()),
        "fig6": lambda: render_figure6(figure6_series(scale)),
    }
    print(dispatch[args.which]())
    return 0


def _cmd_explain(args) -> int:
    recorded = None
    if getattr(args, "run", None):
        # Resolve the provenance log through the run's manifest, so
        # the caller names the run, not the raw artifact path.
        manifest = load_manifest(args.run)
        provenance_path = resolve_artifact(manifest, args.run, "provenance")
        if provenance_path is None or not provenance_path.exists():
            print(
                f"run {args.run} has no provenance artifact "
                "(re-run with --run-dir or --provenance)",
                file=sys.stderr,
            )
            return 2
        recorded = ProvenanceLog.from_jsonl(provenance_path)
        # The engine reruns without a live provenance sink; the
        # recorded log is swapped in afterwards so the explanation
        # replays exactly what that run decided.
        telemetry = _telemetry_from(args)
    else:
        # Always record provenance for explain: the explanation replays
        # the engine's actual decision records instead of recomputing
        # similarities against post-hoc cluster state.
        telemetry = _telemetry_from(args, force_provenance=True)
        if telemetry is None:  # pragma: no cover - force_provenance guarantees it
            telemetry = Telemetry(provenance=ProvenanceLog())
    dataset, reconciler, _ = _run(args.directory, "depgraph", args, telemetry)
    if args.ref_a not in dataset.store or args.ref_b not in dataset.store:
        print("unknown reference id", file=sys.stderr)
        return 2
    if recorded is not None:
        reconciler.telemetry = Telemetry(provenance=recorded)
    explanation = explain_merge(reconciler, args.ref_a, args.ref_b)
    print(explanation.describe())
    return 0


def _load_run(path: str):
    """(manifest, provenance-or-None) for a run directory / run.json."""
    manifest = load_manifest(path)
    provenance = None
    provenance_path = resolve_artifact(manifest, path, "provenance")
    if provenance_path is not None and provenance_path.exists():
        provenance = ProvenanceLog.from_jsonl(provenance_path)
    return manifest, provenance


def _cmd_diff(args) -> int:
    manifest_a, provenance_a = _load_run(args.run_a)
    manifest_b, provenance_b = _load_run(args.run_b)
    if provenance_a is None or provenance_b is None:
        print(
            "note: provenance missing for at least one run; "
            "flip localization skipped",
            file=sys.stderr,
        )
    verdict = diff_runs(
        manifest_a,
        manifest_b,
        provenance_a=provenance_a,
        provenance_b=provenance_b,
        label_a=args.run_a,
        label_b=args.run_b,
        quality_tolerance=args.quality_tolerance,
        phase_tolerance=args.phase_tolerance,
        phase_floor=args.phase_floor,
        max_flips=args.max_flips,
    )
    print(render_diff(verdict))
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(verdict.to_dict(), indent=2) + "\n")
        print(f"wrote verdict to {path}", file=sys.stderr)
    return 1 if verdict.regressed else 0


def _cmd_report(args) -> int:
    target = Path(args.target)
    if (target.is_dir() and (target / "run.json").exists()) or target.name == "run.json":
        from .obs.report_html import write_report as write_html_report

        run_dir = target if target.is_dir() else target.parent
        path = write_html_report(run_dir, args.output)
        print(f"wrote HTML run report to {path}")
        return 0
    from .evaluation.report import write_report

    path = write_report(args.target, scale=args.scale)
    print(f"wrote report to {path}")
    return 0


def _watch_events_path(target: Path) -> Path:
    """Resolve what ``repro watch`` should tail for *target*.

    A run directory resolves through its manifest's ``events`` artifact
    when a manifest exists (the run may have pointed --log-json
    elsewhere), falling back to ``DIR/events.jsonl`` — which also
    covers watching a run that has not written its manifest yet. A
    file path is tailed as-is."""
    if not target.is_dir():
        return target
    manifest_path = target / "run.json"
    if manifest_path.exists():
        manifest = load_manifest(manifest_path)
        resolved = resolve_artifact(manifest, target, "events")
        if resolved is not None:
            return resolved
    return target / "events.jsonl"


def _cmd_watch(args) -> int:
    from .obs.live import follow_events, read_events, render_watch, watch_snapshot

    events_path = _watch_events_path(Path(args.run_dir))
    if args.once:
        events = read_events(events_path)
        if not events:
            print(f"no events found at {events_path}", file=sys.stderr)
            return 2
        print(render_watch(watch_snapshot(events)))
        return 0
    snap = follow_events(
        events_path, interval=args.interval, max_idle=args.max_idle
    )
    print(render_watch(snap))
    return 0


def _cmd_doctor(args) -> int:
    from .obs.flight import load_crash_bundle
    from .obs.render import render_doctor

    run_path = Path(args.run_dir)
    base = run_path if run_path.is_dir() else run_path.parent
    bundle = load_crash_bundle(run_path)
    manifest = None
    try:
        manifest = load_manifest(base)
    except (FileNotFoundError, json.JSONDecodeError):
        manifest = None
    print(render_doctor(bundle, manifest))
    if bundle is None and manifest is None:
        return 2
    if bundle is not None:
        return 1
    run = manifest.get("run", {})
    degraded = bool(manifest.get("degradations")) or not run.get("completed", False)
    return 1 if degraded else 0


def _cmd_hotspots(args) -> int:
    from .obs.render import render_hotspots

    try:
        manifest = load_manifest(args.run_dir)
    except FileNotFoundError:
        print(f"no run.json found at {args.run_dir}", file=sys.stderr)
        return 2
    hotspots = (manifest.get("execution") or {}).get("hotspots")
    if not hotspots:
        print(
            "manifest records no hotspot attribution "
            "(recorded by --run-dir runs from this version onward)",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(json.dumps(hotspots, indent=2, sort_keys=True))
    else:
        print(render_hotspots(hotspots))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "reconcile": _cmd_reconcile,
        "evaluate": _cmd_evaluate,
        "tables": _cmd_tables,
        "explain": _cmd_explain,
        "diff": _cmd_diff,
        "report": _cmd_report,
        "watch": _cmd_watch,
        "doctor": _cmd_doctor,
        "hotspots": _cmd_hotspots,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Downstream pipe reader (head, grep -q) closed early; not an
        # error.  Detach stdout so interpreter teardown doesn't retry
        # the flush and traceback anyway.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
