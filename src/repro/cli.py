"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — write a synthetic benchmark dataset (PIM A-D / Cora)
  to a directory as JSON-lines.
* ``reconcile`` — load a dataset directory, run DepGraph (or InDepDec),
  and write the resulting partition as JSON.
* ``evaluate`` — reconcile and score against the dataset's gold
  standard (pairwise + B-cubed).
* ``tables`` — regenerate any of the paper's tables on the terminal.
* ``explain`` — reconcile, then explain why two references did (or did
  not) end up in one cluster.
"""

from __future__ import annotations

import argparse
import json
import sys

from .baselines import indepdec_config
from .core import EngineConfig, Reconciler
from .core.explain import explain_merge
from .datasets import generate_cora_dataset, generate_pim_dataset
from .datasets.io import load_dataset, save_dataset
from .domains import CoraDomainModel, PimDomainModel
from .evaluation.clustering import bcubed_scores
from .evaluation.metrics import pairwise_scores

__all__ = ["main", "build_parser"]


def _domain_for(dataset_name: str):
    return CoraDomainModel() if dataset_name.lower().startswith("cora") else PimDomainModel()


def _config_for(algorithm: str, domain) -> EngineConfig:
    if algorithm == "indepdec":
        return indepdec_config(domain)
    return EngineConfig()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reference reconciliation in complex information spaces "
        "(Dong, Halevy & Madhavan, SIGMOD 2005)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="write a synthetic dataset")
    generate.add_argument("dataset", choices=["A", "B", "C", "D", "cora"])
    generate.add_argument("directory", help="output directory")
    generate.add_argument("--scale", type=float, default=1.0)

    reconcile = commands.add_parser("reconcile", help="reconcile a dataset directory")
    reconcile.add_argument("directory")
    reconcile.add_argument("--algorithm", choices=["depgraph", "indepdec"],
                           default="depgraph")
    reconcile.add_argument("--output", default="-", help="partition JSON (default stdout)")

    evaluate = commands.add_parser("evaluate", help="reconcile and score against gold")
    evaluate.add_argument("directory")
    evaluate.add_argument("--algorithm", choices=["depgraph", "indepdec"],
                          default="depgraph")

    for runner in (reconcile, evaluate):
        perf = runner.add_argument_group("performance")
        perf.add_argument(
            "--workers", type=int, default=1, metavar="N",
            help="worker processes for candidate-pair scoring during the "
            "graph build; results are byte-identical to --workers 1 "
            "(default 1 = serial)",
        )
        perf.add_argument(
            "--stats", action="store_true",
            help="print engine statistics (timings, counters, cache hit "
            "rates) to stderr after the run",
        )
        runtime = runner.add_argument_group("runtime (fault tolerance)")
        runtime.add_argument(
            "--deadline", type=float, default=None, metavar="SECONDS",
            help="wall-clock budget; past it the run stops gracefully with "
            "a partial (but valid) partition",
        )
        runtime.add_argument(
            "--max-recomputations", type=int, default=None, metavar="N",
            help="recomputation budget enforced by the run guard",
        )
        runtime.add_argument(
            "--checkpoint-dir", default=None, metavar="DIR",
            help="periodically checkpoint engine state into DIR",
        )
        runtime.add_argument(
            "--checkpoint-every", type=int, default=500, metavar="STEPS",
            help="iterate steps between checkpoints (default 500)",
        )
        runtime.add_argument(
            "--resume", default=None, metavar="CHECKPOINT",
            help="resume from a checkpoint file written by --checkpoint-dir",
        )
        runtime.add_argument(
            "--lenient", action="store_true",
            help="quarantine malformed records to quarantine.jsonl instead "
            "of aborting the load",
        )

    tables = commands.add_parser("tables", help="regenerate a paper table")
    tables.add_argument(
        "which",
        choices=["1", "2", "3", "4", "5", "6", "7", "fig6"],
    )
    tables.add_argument("--scale", type=float, default=1.0)

    explain = commands.add_parser("explain", help="why were two references merged?")
    explain.add_argument("directory")
    explain.add_argument("ref_a")
    explain.add_argument("ref_b")

    report = commands.add_parser(
        "report", help="run all experiments and write a markdown report"
    )
    report.add_argument("output", help="output .md path")
    report.add_argument("--scale", type=float, default=1.0)
    return parser


def _cmd_generate(args) -> int:
    if args.dataset == "cora":
        dataset = generate_cora_dataset()
    else:
        dataset = generate_pim_dataset(args.dataset, scale=args.scale)
    path = save_dataset(dataset, args.directory)
    summary = dataset.summary()
    print(
        f"wrote {summary['references']} references "
        f"({summary['entities']} entities) to {path}"
    )
    return 0


def _run(directory: str, algorithm: str, options=None):
    lenient = bool(getattr(options, "lenient", False))
    dataset = load_dataset(directory, lenient=lenient)
    if dataset.quarantined:
        print(
            f"quarantined {len(dataset.quarantined)} bad records "
            f"(see quarantine.jsonl)",
            file=sys.stderr,
        )
    domain = _domain_for(dataset.name)
    config = _config_for(algorithm, domain)
    workers = int(getattr(options, "workers", 1) or 1)
    if workers > 1:
        from dataclasses import replace

        config = replace(config, workers=workers)
    guard = None
    checkpointer = None
    if options is not None:
        deadline = getattr(options, "deadline", None)
        max_recomputations = getattr(options, "max_recomputations", None)
        if deadline is not None or max_recomputations is not None:
            from .runtime import RunGuard

            guard = RunGuard(
                deadline_seconds=deadline, max_recomputations=max_recomputations
            )
        if getattr(options, "checkpoint_dir", None):
            from .runtime import Checkpointer

            checkpointer = Checkpointer(
                options.checkpoint_dir, every=options.checkpoint_every
            )
    resume_path = getattr(options, "resume", None) if options is not None else None
    if resume_path:
        reconciler = Reconciler.resume(
            resume_path, store=dataset.store, domain=domain, config=config
        )
    else:
        reconciler = Reconciler(dataset.store, domain, config)
    result = reconciler.run(guard=guard, checkpointer=checkpointer)
    if not result.completed:
        print(f"run degraded: stop_reason={result.stop_reason}", file=sys.stderr)
        for event in result.degradations:
            print(f"  [{event.kind}] {event.detail}", file=sys.stderr)
    if options is not None and getattr(options, "stats", False):
        _print_stats(reconciler.stats)
    return dataset, reconciler, result


def _hit_rate(hits: int, misses: int) -> str:
    total = hits + misses
    if not total:
        return "n/a"
    return f"{hits / total:.1%} ({hits}/{total})"


def _print_stats(stats) -> None:
    """Engine statistics, including cache effectiveness, on stderr."""
    err = sys.stderr
    print("engine stats:", file=err)
    print(
        f"  build {stats.build_seconds:.2f}s, iterate {stats.iterate_seconds:.2f}s "
        f"(workers={stats.parallel_workers})",
        file=err,
    )
    print(
        f"  candidate_pairs={stats.candidate_pairs} pair_nodes={stats.pair_nodes} "
        f"value_nodes={stats.value_nodes} graph_nodes={stats.graph_nodes}",
        file=err,
    )
    print(
        f"  recomputations={stats.recomputations} merges={stats.merges} "
        f"non_merges={stats.non_merges} fusions={stats.fusions}",
        file=err,
    )
    print("  cache effectiveness:", file=err)
    print(
        f"    values cache   {_hit_rate(stats.values_cache_hits, stats.values_cache_misses)}",
        file=err,
    )
    print(
        f"    contacts cache {_hit_rate(stats.contacts_cache_hits, stats.contacts_cache_misses)}",
        file=err,
    )
    print(
        f"    feature cache  {_hit_rate(stats.feature_cache_hits, stats.feature_cache_misses)}",
        file=err,
    )
    print(
        f"    pair-score memo {_hit_rate(stats.pair_memo_hits, stats.pair_memo_misses)}, "
        f"prefilter skips {stats.prefilter_skips}",
        file=err,
    )


def _cmd_reconcile(args) -> int:
    dataset, _, result = _run(args.directory, args.algorithm, args)
    payload = {
        class_name: result.clusters(class_name)
        for class_name in dataset.store.schema.class_names
    }
    text = json.dumps(payload, indent=2)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote partition to {args.output}")
    return 0


def _cmd_evaluate(args) -> int:
    dataset, _, result = _run(args.directory, args.algorithm, args)
    if not dataset.gold.entity_of:
        print("dataset has no gold standard", file=sys.stderr)
        return 2
    gold = dataset.gold.entity_of
    print(f"{args.algorithm} on {dataset.name}:")
    for class_name in dataset.store.schema.class_names:
        clusters = result.clusters(class_name)
        pw = pairwise_scores(clusters, gold)
        b3 = bcubed_scores(clusters, gold)
        print(
            f"  {class_name:10s} pairwise P={pw.precision:.3f} R={pw.recall:.3f} "
            f"F={pw.f_measure:.3f} | b3 P={b3.precision:.3f} R={b3.recall:.3f} "
            f"F={b3.f_measure:.3f} | partitions={result.partition_count(class_name)}"
        )
    return 0


def _cmd_tables(args) -> int:
    from .evaluation import (
        figure6_series,
        render_figure6,
        render_table1,
        render_table2,
        render_table3,
        render_table4,
        render_table5,
        render_table6,
        render_table7,
        table1_dataset_properties,
        table2_class_averages,
        table3_person_subsets,
        table4_per_dataset,
        table5_ablation_grid,
        table6_constraints,
        table7_cora,
    )

    scale = args.scale
    dispatch = {
        "1": lambda: render_table1(table1_dataset_properties(scale)),
        "2": lambda: render_table2(table2_class_averages(scale)),
        "3": lambda: render_table3(table3_person_subsets(scale)),
        "4": lambda: render_table4(table4_per_dataset(scale)),
        "5": lambda: render_table5(table5_ablation_grid(scale)),
        "6": lambda: render_table6(table6_constraints(scale)),
        "7": lambda: render_table7(table7_cora()),
        "fig6": lambda: render_figure6(figure6_series(scale)),
    }
    print(dispatch[args.which]())
    return 0


def _cmd_explain(args) -> int:
    dataset, reconciler, _ = _run(args.directory, "depgraph")
    if args.ref_a not in dataset.store or args.ref_b not in dataset.store:
        print("unknown reference id", file=sys.stderr)
        return 2
    explanation = explain_merge(reconciler, args.ref_a, args.ref_b)
    print(explanation.describe())
    return 0


def _cmd_report(args) -> int:
    from .evaluation.report import write_report

    path = write_report(args.output, scale=args.scale)
    print(f"wrote report to {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "reconcile": _cmd_reconcile,
        "evaluate": _cmd_evaluate,
        "tables": _cmd_tables,
        "explain": _cmd_explain,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
