"""The telemetry facade the engine threads through its hot paths.

One :class:`Telemetry` object bundles the four sinks — event log,
tracer, metrics registry, provenance log — behind a null-sink fast
path: every sink defaults to ``None``, every facade method returns
immediately when its sink is absent, and the engine additionally
guards its per-step instrumentation on the precomputed
:attr:`Telemetry.active` flag, so a run without telemetry executes the
exact pre-observability code path (one attribute read per guarded
block). Partitions are byte-identical with telemetry on or off:
every sink is strictly observational, and nothing telemetry produces
(timestamps, span ids, sequence numbers) enters the checkpoint
fingerprint or any engine decision.
"""

from __future__ import annotations

from .events import EventLog
from .metrics import MetricsRegistry
from .provenance import ProvenanceLog
from .tracing import Tracer

__all__ = ["Telemetry", "NULL_TELEMETRY"]


class _NullSpan:
    """Reusable no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return None


_NULL_SPAN = _NullSpan()


class Telemetry:
    """Bundle of observability sinks; all optional, all observational.

    ``active`` is True when *any* sink is attached — the engine's
    cheap guard for per-step work. Individual sinks are public
    attributes so call sites can guard on exactly what they feed
    (``tel.metrics is not None`` etc.).
    """

    __slots__ = ("log", "tracer", "metrics", "provenance", "active")

    def __init__(
        self,
        *,
        log: EventLog | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        provenance: ProvenanceLog | None = None,
    ) -> None:
        self.log = log
        self.tracer = tracer
        self.metrics = metrics
        self.provenance = provenance
        self.active = (
            log is not None
            or tracer is not None
            or metrics is not None
            or provenance is not None
        )

    @classmethod
    def enabled(
        cls,
        *,
        log_path=None,
        log_level: str = "info",
        trace: bool = False,
        metrics: bool = False,
        provenance: bool = False,
        provenance_path=None,
    ) -> "Telemetry":
        """Convenience constructor from feature switches."""
        return cls(
            log=EventLog(log_path, level=log_level) if log_path else None,
            tracer=Tracer() if trace else None,
            metrics=MetricsRegistry() if metrics else None,
            provenance=(
                ProvenanceLog(provenance_path) if provenance or provenance_path else None
            ),
        )

    # ------------------------------------------------------------------
    # facade methods (each a no-op when its sink is absent)
    # ------------------------------------------------------------------
    def emit(self, level: str, event: str, /, **fields) -> None:
        if self.log is not None:
            self.log.emit(level, event, **fields)

    def span(self, name: str, category: str = "engine", **args):
        if self.tracer is not None:
            return self.tracer.span(name, category, **args)
        return _NULL_SPAN

    def instant(self, name: str, **args) -> None:
        if self.tracer is not None:
            self.tracer.instant(name, **args)

    def close(self) -> None:
        """Flush and close file-backed sinks (log, provenance JSONL)."""
        if self.log is not None:
            self.log.close()
        if self.provenance is not None:
            self.provenance.close()


#: The shared null object: zero sinks, ``active`` False. The engine
#: default — never mutated, safe to share between every engine.
NULL_TELEMETRY = Telemetry()
