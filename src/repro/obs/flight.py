"""Flight recorder + crash bundles: the black-box for a run that dies.

The telemetry stack explains runs that *finish* — manifests, traces,
provenance replay all render after the fact.  A run that dies mid-build
used to leave only a stack trace.  The :class:`FlightRecorder` is the
black-box counterpart: an always-on, bounded-memory set of ring buffers
(recent events, merge/defer decisions, chunk timings, degradations)
that costs one attribute check plus a deque append on the hot path and
performs **zero I/O while the run is healthy**.  When something goes
wrong — a guard trip, an unhandled engine exception, a pool collapse,
chaos-injected worker death — the rings are dumped atomically as
``crash_bundle.json`` into the run directory together with
per-thread stacks (:func:`sys._current_frames`), the config
fingerprint, the partial :class:`~repro.core.engine.EngineStats`, and
the worker-lane rings retained by the telemetry relay.

Invariants, mirroring every other observer in this package:

* recorder state never reaches checkpoints or config fingerprints
  (it is an engine attribute, not config, and ``engine_state`` never
  serialises it), so partitions are byte-identical with the recorder
  attached or set to ``None``;
* all ring feeds are observational — a ``perf_counter`` read and a
  deque append — and never influence a decision;
* ring capacity bounds memory: with the default 256 entries per ring
  and ~120-byte entries, a recorder tops out around 128 KiB.

Only stdlib modules are imported at module scope; the writer helper is
imported lazily inside :func:`dump_crash_bundle` because this module is
loaded by ``repro.obs`` during engine import (cycle otherwise).
"""

from __future__ import annotations

import json
import sys
import threading
import traceback
from collections import deque
from pathlib import Path

__all__ = [
    "CRASH_BUNDLE_FILENAME",
    "FlightRecorder",
    "build_crash_bundle",
    "dump_crash_bundle",
    "load_crash_bundle",
]

CRASH_BUNDLE_FILENAME = "crash_bundle.json"

#: default entries kept per ring; large enough to cover the tail of a
#: failing run (hundreds of decisions) while bounding memory.
DEFAULT_RING_SIZE = 256


class FlightRecorder:
    """Bounded ring buffers of the most recent engine activity.

    Four rings, each a ``deque(maxlen=ring_size)``:

    * ``events`` — lifecycle landmarks (phase starts/ends, pool kills,
      lane deaths) as ``{"seq", "event", ...fields}``;
    * ``decisions`` — the last N merge/defer decisions from
      ``_process`` (recorded unconditionally, independent of the
      provenance sink, so a crash bundle always carries the decision
      tail even on runs without ``--provenance``);
    * ``chunks`` — supervised/speculative chunk timings;
    * ``degradations`` — every :class:`DegradationEvent` the engine
      recorded.

    A single monotone ``seq`` stamps entries across all four rings, so
    the bundle preserves the interleaved order of what happened last.
    """

    __slots__ = ("ring_size", "events", "decisions", "chunks", "degradations", "_seq")

    def __init__(self, ring_size: int = DEFAULT_RING_SIZE) -> None:
        self.ring_size = int(ring_size)
        self.events: deque = deque(maxlen=self.ring_size)
        self.decisions: deque = deque(maxlen=self.ring_size)
        self.chunks: deque = deque(maxlen=self.ring_size)
        self.degradations: deque = deque(maxlen=self.ring_size)
        self._seq = 0

    def _next(self) -> int:
        self._seq += 1
        return self._seq

    def note_event(self, event: str, **fields) -> None:
        entry = {"seq": self._next(), "event": event}
        if fields:
            entry.update(fields)
        self.events.append(entry)

    def note_decision(self, pair, class_name: str, decision: str, score) -> None:
        self.decisions.append(
            {
                "seq": self._next(),
                "pair": list(pair),
                "class": class_name,
                "decision": decision,
                "score": None if score is None else round(float(score), 6),
            }
        )

    def note_chunk(self, lane: str, seconds: float, **fields) -> None:
        entry = {"seq": self._next(), "lane": lane, "seconds": round(seconds, 6)}
        if fields:
            entry.update(fields)
        self.chunks.append(entry)

    def note_degradation(self, kind: str, detail: str) -> None:
        self.degradations.append(
            {"seq": self._next(), "kind": kind, "detail": detail}
        )

    def snapshot(self) -> dict:
        """JSON-able copy of all rings (oldest first within each)."""
        return {
            "ring_size": self.ring_size,
            "noted": self._seq,
            "events": list(self.events),
            "decisions": list(self.decisions),
            "chunks": list(self.chunks),
            "degradations": list(self.degradations),
        }


def _thread_stacks() -> dict:
    """Formatted stacks of every live thread, keyed ``"tid (name)"``."""
    names = {thread.ident: thread.name for thread in threading.enumerate()}
    stacks: dict[str, list] = {}
    for tid, frame in sorted(sys._current_frames().items()):
        lines = traceback.format_stack(frame)
        stacks[f"{tid} ({names.get(tid, 'unknown')})"] = [
            line.rstrip("\n") for line in lines
        ]
    return stacks


def _exception_info(exc) -> dict | None:
    if exc is None:
        return None
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": [
            line.rstrip("\n")
            for line in traceback.format_exception(type(exc), exc, exc.__traceback__)
        ],
    }


def build_crash_bundle(
    *,
    reason: str,
    engine=None,
    exc=None,
    relay=None,
    phase: str | None = None,
    stop_reason: str | None = None,
) -> dict:
    """Assemble (but do not write) a crash bundle.

    *engine* contributes its config fingerprint, partial stats and the
    flight-recorder rings; *relay* contributes the worker-lane rings it
    retained from shipped payloads.  Every part is optional so the
    dumper works however little survived the failure.
    """
    config: dict = {}
    stats: dict = {}
    rings = FlightRecorder(ring_size=0).snapshot()
    if engine is not None:
        # Lazy: repro.obs loads during engine import; checkpoint pulls
        # the engine back in (cycle otherwise).
        from ..runtime.checkpoint import config_fingerprint
        from dataclasses import asdict

        config = config_fingerprint(engine.config)
        stats = asdict(engine.stats)
        flight = getattr(engine, "flight", None)
        if flight is not None:
            rings = flight.snapshot()
        if relay is None:
            relay = getattr(engine, "_relay", None)
    worker_lanes = {"lanes": {}, "deaths": []}
    if relay is not None:
        worker_lanes = {
            "lanes": relay.recent_lanes(),
            "deaths": [dict(death) for death in relay.lane_deaths],
        }
    return {
        "bundle_version": 1,
        "kind": "repro_crash_bundle",
        "reason": str(reason),
        "phase": phase,
        "stop_reason": stop_reason,
        "exception": _exception_info(exc),
        "config": config,
        "stats": stats,
        "rings": rings,
        "stacks": _thread_stacks(),
        "worker_lanes": worker_lanes,
    }


def dump_crash_bundle(run_dir, bundle: dict) -> Path:
    """Atomically write *bundle* as ``<run_dir>/crash_bundle.json``.

    Validates against :data:`~repro.obs.schemas.CRASH_BUNDLE_SCHEMA`
    first (a malformed bundle is a bug in the dumper, not the run) and
    uses the same tmp-fsync-rename writer as checkpoints, so a reader
    never observes a torn bundle.
    """
    from ..runtime.fsutil import atomic_write_text
    from .schemas import validate_crash_bundle

    validate_crash_bundle(bundle)
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    path = run_dir / CRASH_BUNDLE_FILENAME
    # default=repr: a crash dumper must never itself crash on an exotic
    # value smuggled into a ring entry.
    atomic_write_text(
        path, json.dumps(bundle, indent=2, sort_keys=True, default=repr) + "\n"
    )
    return path


def load_crash_bundle(path) -> dict | None:
    """Load ``crash_bundle.json`` from a run dir (or direct path);
    ``None`` when the run produced no bundle."""
    path = Path(path)
    if path.is_dir():
        path = path / CRASH_BUNDLE_FILENAME
    if not path.exists():
        return None
    return json.loads(path.read_text())
