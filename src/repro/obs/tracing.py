"""Span tracing: nested timed spans, exportable as Chrome trace JSON.

A :class:`Tracer` records *complete* trace events (``"ph": "X"`` in
the `trace-event format`__) for every span opened via :meth:`span`,
so the file loads directly into ``chrome://tracing`` or Perfetto.
Spans nest naturally through a stack. Every event carries the real
``pid``/``tid`` of the process that did the work: the engine's own
spans use the tracer's process, and spans harvested from pool workers
or forked iterate children arrive through :meth:`complete_foreign`
with the worker's ids, so Perfetto renders one lane per process and
the parallelism is visible instead of flattened onto a fake ``pid 1``.
Lane labels travel as Chrome ``"M"`` (metadata) ``process_name`` /
``thread_name`` events, registered via :meth:`set_process_name` /
:meth:`set_thread_name`.

__ https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

Span ids and timestamps are tracer-local (``time.perf_counter``
relative to the tracer's epoch); they are never serialised into
checkpoints, so tracing cannot perturb resume determinism. Worker
clocks are aligned by the relay (:mod:`repro.obs.relay`): on Linux,
``perf_counter`` is ``CLOCK_MONOTONIC``, which is system-wide, so a
worker's absolute reading minus this tracer's :attr:`epoch` is the
correct lane offset (clamped at zero for spans that started before
the tracer existed).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

__all__ = ["SpanRecord", "Tracer"]


class SpanRecord:
    """One finished span: name, category, start offset, duration, args.

    ``pid``/``tid`` are ``None`` for spans recorded by the tracer's own
    process; foreign (worker) spans carry the worker's real ids.
    """

    __slots__ = ("name", "category", "start", "duration", "args", "depth", "pid", "tid")

    def __init__(self, name, category, start, duration, args, depth, pid=None, tid=None):
        self.name = name
        self.category = category
        self.start = start
        self.duration = duration
        self.args = args
        self.depth = depth
        self.pid = pid
        self.tid = tid


class _Span:
    """Context manager handed out by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_category", "_args", "_start", "_depth")

    def __init__(self, tracer, name, category, args):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self._depth = len(tracer._stack)
        tracer._stack.append(self._name)
        self._start = tracer._clock() - tracer._epoch
        return self

    def __exit__(self, *exc_info) -> None:
        tracer = self._tracer
        end = tracer._clock() - tracer._epoch
        tracer._stack.pop()
        tracer.spans.append(
            SpanRecord(
                self._name,
                self._category,
                self._start,
                end - self._start,
                self._args,
                self._depth,
            )
        )


class Tracer:
    """Collects spans and instants; exports Chrome trace-event JSON.

    ``clock`` must be monotone; it is injectable for deterministic
    tests. All offsets are seconds relative to the tracer's creation.
    """

    def __init__(self, *, clock=time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self._stack: list[str] = []
        self.spans: list[SpanRecord] = []
        self.instants: list[tuple[str, float, dict, int | None, int | None]] = []
        self.pid = os.getpid()
        self.tid = threading.get_native_id()
        self._process_names: dict[int, str] = {self.pid: "repro engine"}
        self._thread_names: dict[tuple[int, int], str] = {
            (self.pid, self.tid): "engine loop"
        }

    @property
    def epoch(self) -> float:
        """Absolute clock reading at tracer creation (relay alignment)."""
        return self._epoch

    def span(self, name: str, category: str = "engine", **args) -> _Span:
        """A context manager timing one nested span."""
        return _Span(self, name, category, args)

    def complete(
        self, name: str, start: float, duration: float, category: str = "engine", **args
    ) -> None:
        """Record a span with explicit timing (offsets in seconds from
        the tracer epoch) — for chunked spans the caller times itself."""
        self.spans.append(
            SpanRecord(name, category, start, duration, args, len(self._stack))
        )

    def complete_foreign(
        self,
        name: str,
        start: float,
        duration: float,
        *,
        pid: int,
        tid: int,
        category: str = "worker",
        **args,
    ) -> None:
        """Record a span on another process's lane.

        *start* is already an offset from this tracer's epoch (the
        relay does the clock alignment); *pid*/*tid* are the worker's
        real ids, which become the event's Perfetto lane.
        """
        self.spans.append(SpanRecord(name, category, start, duration, args, 0, pid, tid))

    def instant(self, name: str, *, pid: int | None = None, tid: int | None = None, **args) -> None:
        """Record a zero-duration marker (e.g. a checkpoint write).

        Pass *pid*/*tid* to pin the marker to a worker's lane (e.g. a
        ``lane_died`` attribution); by default it lands on the engine's.
        """
        self.instants.append((name, self._clock() - self._epoch, args, pid, tid))

    def now(self) -> float:
        """Current offset from the tracer epoch, for :meth:`complete`."""
        return self._clock() - self._epoch

    def set_process_name(self, pid: int, name: str) -> None:
        """Label one pid's Perfetto lane (emitted as ``"M"`` metadata)."""
        self._process_names[pid] = name

    def set_thread_name(self, pid: int, tid: int, name: str) -> None:
        """Label one thread within a pid's lane."""
        self._thread_names[(pid, tid)] = name

    def lanes(self) -> dict[int, str]:
        """``pid -> process name`` for every registered lane."""
        return dict(self._process_names)

    def phase_timings(self) -> dict[str, float]:
        """Total seconds per span name (summed over repeats) — the
        phase-attribution summary embedded in bench entries.

        Only the engine's own lane is summed: worker chunk spans run
        *concurrently* with the parent spans that await them, so adding
        them in would double-count wall-clock phases.
        """
        totals: dict[str, float] = {}
        for record in self.spans:
            if record.pid is not None and record.pid != self.pid:
                continue
            totals[record.name] = totals.get(record.name, 0.0) + record.duration
        return {name: round(seconds, 6) for name, seconds in sorted(totals.items())}

    def chrome_trace(self) -> dict:
        """The full trace as a Chrome trace-event JSON object."""
        events = []
        # Lane labels first: the engine's own lane, then every worker
        # lane in pid order (deterministic output for a fixed run).
        for pid in sorted(self._process_names, key=lambda p: (p != self.pid, p)):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": self.tid if pid == self.pid else pid,
                    "args": {"name": self._process_names[pid]},
                }
            )
        for (pid, tid), name in sorted(self._thread_names.items()):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        for record in self.spans:
            event = {
                "name": record.name,
                "cat": record.category,
                "ph": "X",
                "ts": round(record.start * 1e6, 3),
                "dur": round(record.duration * 1e6, 3),
                "pid": self.pid if record.pid is None else record.pid,
                "tid": self.tid if record.tid is None else record.tid,
            }
            if record.args:
                event["args"] = dict(record.args)
            events.append(event)
        for name, offset, args, pid, tid in self.instants:
            event = {
                "name": name,
                "cat": "engine",
                "ph": "i",
                "ts": round(offset * 1e6, 3),
                "pid": self.pid if pid is None else pid,
                "tid": self.tid if tid is None else tid,
                "s": "p",
            }
            if args:
                event["args"] = dict(args)
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str | Path) -> Path:
        """Write the Chrome trace JSON to *path*."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.chrome_trace(), indent=1) + "\n")
        return path
