"""Span tracing: nested timed spans, exportable as Chrome trace JSON.

A :class:`Tracer` records *complete* trace events (``"ph": "X"`` in
the `trace-event format`__) for every span opened via :meth:`span`,
so the file loads directly into ``chrome://tracing`` or Perfetto.
Spans nest naturally through a stack; the exporter assigns the whole
engine to one pid/tid because the engine itself is single-threaded
(worker processes report their effect through metrics, not spans).

__ https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

Span ids and timestamps are tracer-local (``time.perf_counter``
relative to the tracer's epoch); they are never serialised into
checkpoints, so tracing cannot perturb resume determinism.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = ["SpanRecord", "Tracer"]


class SpanRecord:
    """One finished span: name, category, start offset, duration, args."""

    __slots__ = ("name", "category", "start", "duration", "args", "depth")

    def __init__(self, name, category, start, duration, args, depth):
        self.name = name
        self.category = category
        self.start = start
        self.duration = duration
        self.args = args
        self.depth = depth


class _Span:
    """Context manager handed out by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_category", "_args", "_start", "_depth")

    def __init__(self, tracer, name, category, args):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self._depth = len(tracer._stack)
        tracer._stack.append(self._name)
        self._start = tracer._clock() - tracer._epoch
        return self

    def __exit__(self, *exc_info) -> None:
        tracer = self._tracer
        end = tracer._clock() - tracer._epoch
        tracer._stack.pop()
        tracer.spans.append(
            SpanRecord(
                self._name,
                self._category,
                self._start,
                end - self._start,
                self._args,
                self._depth,
            )
        )


class Tracer:
    """Collects spans and instants; exports Chrome trace-event JSON.

    ``clock`` must be monotone; it is injectable for deterministic
    tests. All offsets are seconds relative to the tracer's creation.
    """

    def __init__(self, *, clock=time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self._stack: list[str] = []
        self.spans: list[SpanRecord] = []
        self.instants: list[tuple[str, float, dict]] = []

    def span(self, name: str, category: str = "engine", **args) -> _Span:
        """A context manager timing one nested span."""
        return _Span(self, name, category, args)

    def complete(
        self, name: str, start: float, duration: float, category: str = "engine", **args
    ) -> None:
        """Record a span with explicit timing (offsets in seconds from
        the tracer epoch) — for chunked spans the caller times itself."""
        self.spans.append(
            SpanRecord(name, category, start, duration, args, len(self._stack))
        )

    def instant(self, name: str, **args) -> None:
        """Record a zero-duration marker (e.g. a checkpoint write)."""
        self.instants.append((name, self._clock() - self._epoch, args))

    def now(self) -> float:
        """Current offset from the tracer epoch, for :meth:`complete`."""
        return self._clock() - self._epoch

    def phase_timings(self) -> dict[str, float]:
        """Total seconds per span name (summed over repeats) — the
        phase-attribution summary embedded in bench entries."""
        totals: dict[str, float] = {}
        for record in self.spans:
            totals[record.name] = totals.get(record.name, 0.0) + record.duration
        return {name: round(seconds, 6) for name, seconds in sorted(totals.items())}

    def chrome_trace(self) -> dict:
        """The full trace as a Chrome trace-event JSON object."""
        events = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 1,
                "args": {"name": "repro reconciliation engine"},
            }
        ]
        for record in self.spans:
            event = {
                "name": record.name,
                "cat": record.category,
                "ph": "X",
                "ts": round(record.start * 1e6, 3),
                "dur": round(record.duration * 1e6, 3),
                "pid": 1,
                "tid": 1,
            }
            if record.args:
                event["args"] = dict(record.args)
            events.append(event)
        for name, offset, args in self.instants:
            event = {
                "name": name,
                "cat": "engine",
                "ph": "i",
                "ts": round(offset * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "s": "p",
            }
            if args:
                event["args"] = dict(args)
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str | Path) -> Path:
        """Write the Chrome trace JSON to *path*."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.chrome_trace(), indent=1) + "\n")
        return path
