"""Heavy-hitter workload attribution: who is eating the run's time?

Collective-ER cost is notoriously skew-dominated — a handful of
oversized blocks and contested reference groups drive most of the
comparisons and the wall-clock.  This module answers "which blocks,
pairs, and similarity channels?" with bounded memory:

* :class:`SpaceSaving` — the classic Metwally et al. streaming top-k
  sketch.  At most ``capacity`` keys are tracked; when full, the
  minimum-weight entry is evicted and the newcomer inherits its weight
  as ``error``.  Any key whose true weight exceeds ``N / capacity``
  (``N`` = total absorbed weight) is guaranteed present, and each
  reported weight overestimates the truth by at most its recorded
  ``error`` — the bounds the DESIGN.md section documents.
* :class:`HotspotSketch` — three sketches (blocks by candidate-pair
  count, pairs by recompute seconds, channels by comparison count)
  plus per-class blocking-skew statistics (Gini coefficient and
  max-block share over :meth:`BlockingIndex.block_sizes`, building on
  ``oversized_blocks``).

Feeds are observational: the engine calls ``note_*`` with values it
already computed, so partitions are byte-identical with the sketch
attached or set to ``None``.  The summary lives in the manifest's
``execution`` section (execution-dependent — wall-time varies run to
run) and is rendered by ``repro hotspots`` / ``repro report``.

Attribution is parent-process only: pair timings observed inside
forked scoring/iterate children die with the child.  That is
acceptable for a workload profile (the parent still times every
supervised chunk and every serial recompute) and keeps the sketch free
of cross-process plumbing.
"""

from __future__ import annotations

__all__ = ["SpaceSaving", "HotspotSketch", "gini"]

#: default tracked keys per sketch — enough for a top-10 report with
#: slack, small enough that three sketches stay under ~100 KiB.
DEFAULT_CAPACITY = 128


class SpaceSaving:
    """Space-Saving heavy-hitter sketch with weighted updates.

    Deterministic by construction: ties on minimum weight break on the
    lexicographically smallest key, so two runs absorbing the same
    stream report identical contents.
    """

    __slots__ = ("capacity", "entries", "updates", "total_weight")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = max(1, int(capacity))
        #: key -> [weight, update_count, error]
        self.entries: dict = {}
        self.updates = 0
        self.total_weight = 0.0

    def add(self, key: str, weight: float = 1.0) -> None:
        self.updates += 1
        self.total_weight += weight
        entry = self.entries.get(key)
        if entry is not None:
            entry[0] += weight
            entry[1] += 1
            return
        if len(self.entries) < self.capacity:
            self.entries[key] = [weight, 1, 0.0]
            return
        victim_key = min(self.entries, key=lambda k: (self.entries[k][0], k))
        victim_weight = self.entries.pop(victim_key)[0]
        # The newcomer inherits the evicted weight as both baseline and
        # error bound — the Space-Saving overestimation guarantee.
        self.entries[key] = [victim_weight + weight, 1, victim_weight]

    def top(self, n: int) -> list:
        """``[(key, weight, count, error)]`` — heaviest first, ties on key."""
        ranked = sorted(
            self.entries.items(), key=lambda item: (-item[1][0], item[0])
        )
        return [
            (key, entry[0], entry[1], entry[2]) for key, entry in ranked[:n]
        ]

    def error_bound(self) -> float:
        """Worst-case overestimation for any reported weight: N / k."""
        return self.total_weight / self.capacity


def gini(sizes) -> float:
    """Gini coefficient of a size distribution (0 = uniform, →1 = skewed)."""
    values = sorted(float(size) for size in sizes)
    n = len(values)
    total = sum(values)
    if n < 2 or total <= 0:
        return 0.0
    weighted = sum(rank * value for rank, value in enumerate(values, start=1))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


class HotspotSketch:
    """Streaming attribution of engine work to blocks/pairs/channels."""

    __slots__ = ("pairs", "channels", "blocks", "skew")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.pairs = SpaceSaving(capacity)
        self.channels = SpaceSaving(capacity)
        self.blocks = SpaceSaving(capacity)
        #: class name -> blocking skew statistics (exact, not sketched).
        self.skew: dict = {}

    # ------------------------------------------------------------ feeds
    def note_blocks(self, class_name: str, index) -> None:
        """Absorb a filled :class:`BlockingIndex` for one class.

        Blocks weigh in by candidate-pair count ``s*(s-1)/2`` — the
        quantity that actually costs comparisons — and the per-class
        skew stats (Gini, max share) are exact over all block sizes.
        """
        sizes = index.block_sizes()
        if not sizes:
            self.skew[class_name] = {
                "blocks": 0,
                "references": 0,
                "gini": 0.0,
                "max_block": None,
                "max_block_size": 0,
                "max_pair_share": 0.0,
                "oversized": index.oversized_blocks,
            }
            return
        pair_counts = {
            key: size * (size - 1) // 2 for key, size in sizes.items()
        }
        total_pairs = sum(pair_counts.values())
        for key, count in pair_counts.items():
            if count:
                self.blocks.add(f"{class_name}/{key}", float(count))
        max_key = min(
            sizes, key=lambda key: (-sizes[key], key)
        )
        self.skew[class_name] = {
            "blocks": len(sizes),
            "references": sum(sizes.values()),
            "gini": round(gini(sizes.values()), 4),
            "max_block": max_key,
            "max_block_size": sizes[max_key],
            "max_pair_share": round(
                pair_counts[max_key] / total_pairs, 4
            )
            if total_pairs
            else 0.0,
            "oversized": index.oversized_blocks,
        }

    def note_pair(self, pair, class_name: str, seconds: float) -> None:
        """One recompute of *pair* took *seconds* in the parent loop."""
        self.pairs.add(f"{class_name}:{pair[0]}|{pair[1]}", seconds)

    def note_channels(self, evidence: dict) -> None:
        """One similarity evaluation consulted these channels."""
        for channel in evidence:
            self.channels.add(channel, 1.0)

    # ---------------------------------------------------------- outputs
    def summary(self, top: int = 10) -> dict:
        """JSON-able attribution summary for the manifest/CLI."""
        return {
            "sketch_capacity": self.pairs.capacity,
            "pair_updates": self.pairs.updates,
            "pair_seconds_error_bound": round(self.pairs.error_bound(), 6),
            "top_blocks": [
                {
                    "block": key,
                    "candidate_pairs": int(weight),
                    "max_error": int(error),
                }
                for key, weight, _, error in self.blocks.top(top)
            ],
            "top_pairs": [
                {
                    "pair": key,
                    "seconds": round(weight, 6),
                    "recomputations": count,
                    "max_error_seconds": round(error, 6),
                }
                for key, weight, count, error in self.pairs.top(top)
            ],
            "channels": [
                {"channel": key, "comparisons": int(weight)}
                for key, weight, _, _ in self.channels.top(top)
            ],
            "skew": {name: dict(stats) for name, stats in sorted(self.skew.items())},
        }

    def export_metrics(self, metrics) -> None:
        """Publish skew gauges into a :class:`MetricsRegistry`."""
        if not self.skew:
            return
        metrics.gauge(
            "repro_block_skew_gini",
            "Worst per-class Gini coefficient of blocking-index block sizes",
        ).set(max(stats["gini"] for stats in self.skew.values()))
        metrics.gauge(
            "repro_block_max_pair_share",
            "Largest share of one class's candidate pairs owned by a single block",
        ).set(max(stats["max_pair_share"] for stats in self.skew.values()))
        metrics.gauge(
            "repro_oversized_blocks",
            "Blocks split for exceeding max_block_size, across classes",
        ).set(sum(stats["oversized"] for stats in self.skew.values()))
