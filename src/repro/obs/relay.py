"""Cross-process telemetry relay: worker-side capture, parent-side merge.

The expensive work happens outside the parent process — chunked pair
scoring in pool workers (:mod:`repro.perf.parallel`) and speculative
iterate in raw-forked children (:mod:`repro.perf.speculate`) — but the
telemetry sinks (tracer, metrics registry, event log) live in the
parent and are not shareable across ``fork``. The relay bridges that
gap without any extra IPC channel:

* A :class:`WorkerTelemetry` recorder is installed in each worker
  (``_init_worker`` for pool workers, created per-chunk in forked
  iterate children). It buffers spans, counters, histogram
  observations and events **locally** — plain lists and dicts, no
  locks, no sockets.
* :meth:`WorkerTelemetry.drain` turns the buffers into one picklable
  payload dict (or ``None`` when nothing was recorded) and clears
  them; the payload piggybacks on the chunk result — the pool's
  return value or the fork child's result pipe — so shipping
  telemetry costs zero additional round-trips.
* The parent's :class:`TelemetryRelay` absorbs payloads into the real
  sinks: spans become foreign-lane trace events with the worker's
  true ``pid``/``tid`` plus ``process_name`` metadata, counters and
  observations fold into the metrics registry, and events append to
  the JSONL log stamped with the worker's pid.

**Clock alignment.** Workers record *absolute* ``time.perf_counter``
readings. On Linux that clock is ``CLOCK_MONOTONIC``, which is
system-wide, so the parent aligns a worker span by subtracting the
tracer's epoch (clamping at zero). The alignment is exact for forked
children and pool workers on the same host; there is no cross-host
story, and none is needed.

**Ordering.** Payloads are absorbed in chunk-completion order, which
is not span start order; consumers of the trace must sort by ``ts``
(Perfetto does). Within one payload the worker's recording order is
preserved.

**Identity contract.** The relay is strictly observational: it never
touches engine state, its payloads ride alongside (never inside)
chunk results, and a worker with no recorder attached returns
``None`` payloads — so partitions, provenance and deterministic
counters are byte-identical with the relay on or off.
"""

from __future__ import annotations

from collections import deque

__all__ = ["WorkerTelemetry", "TelemetryRelay", "WORKER_METRIC_HELP"]

#: help texts for the metrics the relay folds into the registry.
WORKER_METRIC_HELP = {
    "repro_worker_chunks_total": "scoring chunks completed by pool workers",
    "repro_worker_pairs_scored_total": "candidate pairs scored in pool workers",
    "repro_worker_pair_memo_hits_total": "worker-side pair-memo hits",
    "repro_worker_pair_memo_misses_total": "worker-side pair-memo misses",
    "repro_worker_prefilter_skips_total": "worker-side upper-bound prefilter skips",
    "repro_iterate_child_chunks_total": "speculative iterate chunks completed by forked children",
    "repro_iterate_child_keys_total": "keys speculated in forked iterate children",
    "repro_lane_deaths_total": "worker/child processes that died or hung under supervision",
}

#: histogram metrics shipped as observations (latency buckets apply).
_OBSERVATION_HELP = {
    "repro_worker_chunk_seconds": "wall-clock seconds per scoring chunk, measured in the worker",
    "repro_iterate_child_chunk_seconds": "wall-clock seconds per speculative chunk, measured in the child",
}


class _WorkerStats:
    """Mutable counter sink matching :func:`pair_evidence`'s contract."""

    __slots__ = ("pair_memo_hits", "pair_memo_misses", "prefilter_skips")

    def __init__(self):
        self.pair_memo_hits = 0
        self.pair_memo_misses = 0
        self.prefilter_skips = 0


class WorkerTelemetry:
    """In-worker recorder: buffers locally, ships via :meth:`drain`.

    Created once per pool worker (buffers survive across chunks and
    are drained per chunk) or once per forked iterate child. All
    timestamps are absolute ``perf_counter`` readings; the parent
    relay aligns them to the tracer epoch.
    """

    __slots__ = ("pid", "tid", "process_name", "spans", "counters", "observations", "events")

    def __init__(self, process_name: str) -> None:
        import os
        import threading

        self.pid = os.getpid()
        self.tid = threading.get_native_id()
        self.process_name = process_name
        self.spans: list[tuple] = []
        self.counters: dict[str, float] = {}
        self.observations: dict[str, list[float]] = {}
        self.events: list[tuple] = []

    def pair_stats(self) -> _WorkerStats:
        """A fresh memo-counter sink for ``pair_evidence(stats=...)``."""
        return _WorkerStats()

    def add_span(
        self, name: str, start: float, duration: float, category: str = "worker", **args
    ) -> None:
        """Record one finished span; *start* is absolute perf_counter."""
        self.spans.append((name, category, start, duration, args))

    def count(self, name: str, amount: float = 1) -> None:
        if amount:
            self.counters[name] = self.counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        self.observations.setdefault(name, []).append(value)

    def emit(self, level: str, event: str, **fields) -> None:
        self.events.append((level, event, fields))

    def absorb_pair_stats(self, stats: _WorkerStats) -> None:
        self.count("repro_worker_pair_memo_hits_total", stats.pair_memo_hits)
        self.count("repro_worker_pair_memo_misses_total", stats.pair_memo_misses)
        self.count("repro_worker_prefilter_skips_total", stats.prefilter_skips)

    def drain(self):
        """The buffered telemetry as one picklable payload, or ``None``.

        Clears the buffers: pool workers persist across chunks, so each
        chunk ships only its own delta.
        """
        if not (self.spans or self.counters or self.observations or self.events):
            return None
        payload = {
            "pid": self.pid,
            "tid": self.tid,
            "process_name": self.process_name,
            "spans": self.spans,
            "counters": self.counters,
            "observations": self.observations,
            "events": self.events,
        }
        self.spans = []
        self.counters = {}
        self.observations = {}
        self.events = []
        return payload


#: bounds on the crash-bundle lane retention: how many lanes keep a
#: ring (least-recently-shipping evicted first) and how many payload
#: digests each ring holds.
_MAX_LANE_RINGS = 32
_LANE_RING_DEPTH = 8


class TelemetryRelay:
    """Parent-side merge of worker payloads into the live sinks."""

    __slots__ = (
        "_tracer",
        "_metrics",
        "_log",
        "payloads",
        "lane_names",
        "counters",
        "lane_deaths",
        "lane_rings",
    )

    def __init__(self, telemetry) -> None:
        self._tracer = telemetry.tracer
        self._metrics = telemetry.metrics
        self._log = telemetry.log
        self.payloads = 0
        self.lane_names: dict[int, str] = {}
        self.counters: dict[str, float] = {}
        self.lane_deaths: list[dict] = []
        #: pid -> deque of compact per-payload digests, for crash
        #: bundles: the last few things each worker lane shipped.
        self.lane_rings: dict[int, object] = {}

    @classmethod
    def for_telemetry(cls, telemetry) -> "TelemetryRelay | None":
        """A relay when any relay-capable sink is attached, else ``None``.

        Provenance-only telemetry (``repro explain``) gets no relay:
        workers would buffer and ship payloads nobody consumes.
        """
        if telemetry is None:
            return None
        if telemetry.tracer is None and telemetry.metrics is None and telemetry.log is None:
            return None
        return cls(telemetry)

    def absorb(self, payload: dict) -> None:
        """Merge one :meth:`WorkerTelemetry.drain` payload into the sinks."""
        if payload is None:
            return
        self.payloads += 1
        pid = payload["pid"]
        tid = payload["tid"]
        if pid not in self.lane_names:
            self.lane_names[pid] = payload["process_name"]
        self._retain(pid, payload)
        for name, amount in payload["counters"].items():
            self.counters[name] = self.counters.get(name, 0) + amount
        tracer = self._tracer
        if tracer is not None:
            tracer.set_process_name(pid, self.lane_names[pid])
            tracer.set_thread_name(pid, tid, "worker loop")
            epoch = tracer.epoch
            for name, category, start, duration, args in payload["spans"]:
                tracer.complete_foreign(
                    name,
                    max(0.0, start - epoch),
                    duration,
                    pid=pid,
                    tid=tid,
                    category=category,
                    **args,
                )
        metrics = self._metrics
        if metrics is not None:
            for name, amount in payload["counters"].items():
                metrics.counter(name, WORKER_METRIC_HELP.get(name, "")).inc(amount)
            for name, values in payload["observations"].items():
                histogram = metrics.histogram(name, _OBSERVATION_HELP.get(name, ""))
                for value in values:
                    histogram.observe(value)
        log = self._log
        if log is not None:
            for level, event, fields in payload["events"]:
                log.emit(level, event, pid=pid, **fields)

    def _retain(self, pid: int, payload: dict) -> None:
        """Keep a compact digest of this payload in the pid's lane ring.

        Rings exist for crash bundles only: when a run dies, the bundle
        ships the last few things every (recently active) worker lane
        reported. Lanes are evicted least-recently-shipping first so a
        speculative run forking hundreds of children stays bounded.
        """
        ring = self.lane_rings.pop(pid, None)
        if ring is None:
            ring = deque(maxlen=_LANE_RING_DEPTH)
            while len(self.lane_rings) >= _MAX_LANE_RINGS:
                self.lane_rings.pop(next(iter(self.lane_rings)))
        # pop + reinsert keeps insertion order == recency order.
        self.lane_rings[pid] = ring
        ring.append(
            {
                "spans": [name for name, *_ in payload["spans"]][-6:],
                "events": [
                    [level, event] for level, event, _ in payload["events"]
                ][-6:],
                "counters": {
                    name: round(value, 6)
                    for name, value in sorted(payload["counters"].items())
                },
            }
        )

    def recent_lanes(self) -> dict:
        """JSON-able lane rings for a crash bundle: pid (as string) to
        process name plus its retained payload digests."""
        return {
            str(pid): {
                "process_name": self.lane_names.get(pid, "worker"),
                "recent": list(ring),
            }
            for pid, ring in sorted(self.lane_rings.items())
        }

    def lane_died(self, pid: int | None, reason: str, *, lane: str = "scoring worker") -> None:
        """Attribute a supervision intervention to the lane that died.

        Called by the supervisor when it kills/rebuilds a pool or gives
        up on a forked child: records a ``lane_died`` instant on that
        pid's trace lane, bumps ``repro_lane_deaths_total``, and logs a
        warning event — so a retry or pool rebuild in the trace is
        visibly anchored to the process that caused it.
        """
        record = {"pid": pid, "reason": reason, "lane": lane}
        self.lane_deaths.append(record)
        self.counters["repro_lane_deaths_total"] = (
            self.counters.get("repro_lane_deaths_total", 0) + 1
        )
        tracer = self._tracer
        if tracer is not None and pid is not None:
            if pid not in self.lane_names:
                self.lane_names[pid] = lane
                tracer.set_process_name(pid, lane)
            tracer.instant("lane_died", pid=pid, tid=pid, reason=reason)
        metrics = self._metrics
        if metrics is not None:
            metrics.counter(
                "repro_lane_deaths_total", WORKER_METRIC_HELP["repro_lane_deaths_total"]
            ).inc()
        log = self._log
        if log is not None:
            log.emit("warning", "lane_died", pid=pid, reason=reason, lane=lane)

    def summary(self) -> dict:
        """Manifest-ready digest of what the relay saw.

        Lanes are rolled up by role rather than listed per pid — a long
        speculative run forks hundreds of short-lived children and the
        manifest should not grow with them (the trace has the full
        per-pid story).
        """
        by_role: dict[str, int] = {}
        for name in self.lane_names.values():
            by_role[name] = by_role.get(name, 0) + 1
        return {
            "payloads": self.payloads,
            "lane_count": len(self.lane_names),
            "lanes_by_role": dict(sorted(by_role.items())),
            "counters": {
                name: round(value, 6) for name, value in sorted(self.counters.items())
            },
            "lane_deaths": list(self.lane_deaths),
        }
