"""Cross-run regression diffing: what changed between run A and run B.

The failure mode this localizes is specific to collective
reconciliation: one flipped merge decision propagates through the
dependency graph and silently moves precision/recall several hops
away. Comparing final partitions says *that* quality moved; comparing
the two runs' provenance logs says *which* pair flipped first, which
channel score or threshold flipped it, and — by walking the
``trigger_pair`` chain upstream — which seed decision the downstream
flip is ultimately attributable to.

:func:`diff_runs` consumes two run manifests (see
:mod:`repro.obs.manifest`) plus, optionally, their provenance logs,
and produces a :class:`DiffVerdict`:

* **quality regressions** — per class / metric family / metric, drops
  beyond ``quality_tolerance``;
* **flipped pairs** — merged in exactly one of the runs, each
  attributed to the evidence channel whose score moved the most
  between the runs' decision records, with before/after channel
  scores, thresholds, and the upstream root-cause chain;
* **phase slowdowns** beyond a relative tolerance *and* an absolute
  floor (so micro-benchmark noise on sub-50 ms phases never gates CI);
* **new degradations** and completed→degraded transitions.

``verdict.regressed`` drives the CLI exit code; a run diffed against
itself is guaranteed clean. Flips are localization evidence, not a
gate by themselves: a flip that *improves* quality (it shows up in
``quality_improvements``) should not fail a build.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DiffVerdict", "diff_runs", "final_merges", "root_cause_chain"]

#: metric families / metrics compared per class.
_FAMILIES = ("pairwise", "bcubed")
_METRICS = ("precision", "recall", "f1")

_MERGE_DECISIONS = ("merge", "transitive_merge")

#: triggers that start a propagation chain (nothing upstream of them).
_ROOT_TRIGGERS = ("seed", "incremental")


@dataclass
class DiffVerdict:
    """Structured result of :func:`diff_runs` (JSON-ready via
    :meth:`to_dict`; ``regressed`` drives the CLI exit code)."""

    run_a: str
    run_b: str
    datasets: tuple[str, str]
    config_changes: list[str] = field(default_factory=list)
    partition_changed: bool = False
    quality_regressions: list[dict] = field(default_factory=list)
    quality_improvements: list[dict] = field(default_factory=list)
    flipped_pairs: list[dict] = field(default_factory=list)
    flips_total: int = 0
    phase_regressions: list[dict] = field(default_factory=list)
    new_degradations: list[str] = field(default_factory=list)
    completed_regression: bool = False

    @property
    def regressed(self) -> bool:
        return bool(
            self.quality_regressions
            or self.phase_regressions
            or self.new_degradations
            or self.completed_regression
        )

    def to_dict(self) -> dict:
        return {
            "run_a": self.run_a,
            "run_b": self.run_b,
            "datasets": list(self.datasets),
            "config_changes": self.config_changes,
            "partition_changed": self.partition_changed,
            "quality_regressions": self.quality_regressions,
            "quality_improvements": self.quality_improvements,
            "flipped_pairs": self.flipped_pairs,
            "flips_total": self.flips_total,
            "phase_regressions": self.phase_regressions,
            "new_degradations": self.new_degradations,
            "completed_regression": self.completed_regression,
            "regressed": self.regressed,
        }


def final_merges(provenance) -> dict:
    """``{pair: merge DecisionRecord}`` — a pair's final outcome is
    "merged" iff any record reconciled it (unions are never undone)."""
    merges: dict = {}
    for record in provenance.records:
        if record.decision in _MERGE_DECISIONS and record.pair not in merges:
            merges[record.pair] = record
    return merges


def root_cause_chain(provenance, record, *, limit: int = 32) -> list[dict]:
    """Walk a decision's ``trigger_pair`` links back to the seed.

    Returns the chain *upstream-first*: the first entry is the root
    cause (a seed/incremental activation), the last is *record*
    itself. Each hop is the decision on the upstream pair that queued
    the downstream one, so the chain reads as the actual propagation
    path through the dependency graph. Cycle-guarded and bounded.
    """
    chain: list[dict] = []
    seen: set = set()
    current = record
    while current is not None and len(chain) < limit:
        if current.pair in seen:
            break
        seen.add(current.pair)
        chain.append(
            {
                "pair": list(current.pair),
                "class": current.class_name,
                "decision": current.decision,
                "trigger": current.trigger,
                "score": current.score,
            }
        )
        if current.trigger in _ROOT_TRIGGERS or current.trigger_pair is None:
            break
        upstream = provenance.decisions_for(*current.trigger_pair)
        # The decision that caused the activation is the latest one on
        # the upstream pair at or before this record's sequence number.
        current = next(
            (rec for rec in reversed(upstream) if rec.seq <= current.seq), None
        )
    chain.reverse()
    return chain


def _config_changes(config_a: dict, config_b: dict, prefix: str = "") -> list[str]:
    keys = sorted(set(config_a) | set(config_b))
    changed: list[str] = []
    for key in keys:
        left, right = config_a.get(key), config_b.get(key)
        if isinstance(left, dict) and isinstance(right, dict):
            changed.extend(_config_changes(left, right, f"{prefix}{key}."))
        elif left != right:
            changed.append(f"{prefix}{key}")
    return changed


def _quality_deltas(manifest_a: dict, manifest_b: dict, tolerance: float):
    regressions: list[dict] = []
    improvements: list[dict] = []
    quality_a = manifest_a.get("quality", {})
    quality_b = manifest_b.get("quality", {})
    for class_name in sorted(set(quality_a) | set(quality_b)):
        scores_a = quality_a.get(class_name, {})
        scores_b = quality_b.get(class_name, {})
        for family in _FAMILIES:
            for metric in _METRICS:
                left = scores_a.get(family, {}).get(metric)
                right = scores_b.get(family, {}).get(metric)
                if left is None or right is None:
                    continue
                delta = round(right - left, 6)
                if not delta:
                    continue
                entry = {
                    "class": class_name,
                    "family": family,
                    "metric": metric,
                    "a": left,
                    "b": right,
                    "delta": delta,
                }
                if delta < -tolerance:
                    regressions.append(entry)
                elif delta > 0:
                    improvements.append(entry)
    return regressions, improvements


def _phase_regressions(
    manifest_a: dict, manifest_b: dict, tolerance: float, floor: float
) -> list[dict]:
    execution_a = manifest_a.get("execution", {})
    execution_b = manifest_b.get("execution", {})
    timings_a = dict(execution_a.get("phase_seconds") or {})
    timings_b = dict(execution_b.get("phase_seconds") or {})
    for key in ("build_seconds", "iterate_seconds"):
        timings_a.setdefault(key.replace("_seconds", ""), execution_a.get(key, 0.0))
        timings_b.setdefault(key.replace("_seconds", ""), execution_b.get(key, 0.0))
    slow: list[dict] = []
    for phase in sorted(set(timings_a) & set(timings_b)):
        left, right = float(timings_a[phase]), float(timings_b[phase])
        if right > left * (1.0 + tolerance) and right - left > floor:
            slow.append(
                {
                    "phase": phase,
                    "a_seconds": round(left, 6),
                    "b_seconds": round(right, 6),
                    "ratio": round(right / left, 3) if left else None,
                }
            )
    return slow


def _attribute_flip(record_a, record_b) -> dict:
    """Which evidence channel moved most between the two runs' last
    decisions on a pair (falling back to threshold, then support)."""
    channels_a = dict(record_a.channels) if record_a is not None else {}
    channels_b = dict(record_b.channels) if record_b is not None else {}
    best_channel = None
    best_move = 0.0
    for channel in sorted(set(channels_a) | set(channels_b)):
        move = abs(channels_b.get(channel, 0.0) - channels_a.get(channel, 0.0))
        if move > best_move:
            best_channel, best_move = channel, move
    threshold_a = record_a.threshold if record_a is not None else None
    threshold_b = record_b.threshold if record_b is not None else None
    if best_channel is not None:
        cause = "channel_score"
    elif threshold_a != threshold_b:
        cause = "threshold"
    else:
        cause = "propagation"
    return {
        "cause": cause,
        "channel": best_channel,
        "channel_score_a": channels_a.get(best_channel) if best_channel else None,
        "channel_score_b": channels_b.get(best_channel) if best_channel else None,
        "score_a": record_a.score if record_a is not None else None,
        "score_b": record_b.score if record_b is not None else None,
        "threshold_a": threshold_a,
        "threshold_b": threshold_b,
    }


def _flips(provenance_a, provenance_b, max_flips: int):
    merges_a = final_merges(provenance_a)
    merges_b = final_merges(provenance_b)
    flipped = sorted(set(merges_a) ^ set(merges_b))
    entries: list[dict] = []
    for pair in flipped[:max_flips]:
        merged_in_a = pair in merges_a
        record_a = merges_a.get(pair) or provenance_a.last_decision(*pair)
        record_b = merges_b.get(pair) or provenance_b.last_decision(*pair)
        known = record_a or record_b
        merged_record = record_a if merged_in_a else record_b
        merged_log = provenance_a if merged_in_a else provenance_b
        entry = {
            "pair": list(pair),
            "class": known.class_name if known is not None else None,
            "direction": "merged->unmerged" if merged_in_a else "unmerged->merged",
            "decision_a": record_a.decision if record_a is not None else None,
            "decision_b": record_b.decision if record_b is not None else None,
            "attribution": _attribute_flip(record_a, record_b),
            "root_cause": root_cause_chain(merged_log, merged_record)
            if merged_record is not None
            else [],
        }
        entries.append(entry)
    return entries, len(flipped)


def diff_runs(
    manifest_a: dict,
    manifest_b: dict,
    *,
    provenance_a=None,
    provenance_b=None,
    label_a: str = "A",
    label_b: str = "B",
    quality_tolerance: float = 0.0,
    phase_tolerance: float = 0.25,
    phase_floor: float = 0.05,
    max_flips: int = 20,
) -> DiffVerdict:
    """Compare two run manifests (and optionally their provenance).

    *quality_tolerance* is absolute: a per-class metric may drop by up
    to this much without gating (default 0 — runs are deterministic,
    so any drop is real). *phase_tolerance* is relative and
    *phase_floor* absolute; both must be exceeded for a phase slowdown
    to count. Flip localization requires both provenance logs; without
    them the verdict still carries quality/phase/degradation results.
    """
    verdict = DiffVerdict(
        run_a=label_a,
        run_b=label_b,
        datasets=(
            manifest_a.get("run", {}).get("dataset", "?"),
            manifest_b.get("run", {}).get("dataset", "?"),
        ),
    )
    verdict.config_changes = _config_changes(
        manifest_a.get("config", {}), manifest_b.get("config", {})
    )
    verdict.partition_changed = (
        manifest_a.get("partition", {}).get("digest")
        != manifest_b.get("partition", {}).get("digest")
    )
    verdict.quality_regressions, verdict.quality_improvements = _quality_deltas(
        manifest_a, manifest_b, quality_tolerance
    )
    verdict.phase_regressions = _phase_regressions(
        manifest_a, manifest_b, phase_tolerance, phase_floor
    )

    kinds_a = {event.get("kind") for event in manifest_a.get("degradations", [])}
    kinds_b = {event.get("kind") for event in manifest_b.get("degradations", [])}
    verdict.new_degradations = sorted(kinds_b - kinds_a)
    verdict.completed_regression = bool(
        manifest_a.get("run", {}).get("completed")
        and not manifest_b.get("run", {}).get("completed")
    )

    if provenance_a is not None and provenance_b is not None:
        verdict.flipped_pairs, verdict.flips_total = _flips(
            provenance_a, provenance_b, max_flips
        )
    return verdict
