"""Live run monitoring: the ``--live`` stderr HUD and ``repro watch``.

Two windows into a running (or finished) reconciliation, both built
from pure, byte-stable renderers in the :mod:`repro.obs.render`
style so golden tests can pin their output:

* :class:`LiveHud` — installed as the engine's ``step_hook`` by the
  CLI's ``--live`` flag. It redraws one stderr line in place
  (``\\r`` + erase-to-end) with the current phase, queue depth,
  merges, the iterate-path cache hit rate and an ETA extrapolated
  from its own queue-drain samples (the same convergence signal the
  manifest samples record). The hook only *reads* engine state —
  queue length and stats counters — so a ``--live`` run stays
  byte-identical to a silent one.
* ``repro watch <run_dir>`` — tails the run's ``events.jsonl``
  (which ``--run-dir`` now writes by default) and renders a snapshot
  of a *concurrent or finished* run from the event stream alone:
  no engine access, works across processes and after the fact.
  ``--once`` prints one multi-line snapshot and exits; without it
  the watcher follows the file like ``tail -f``, redrawing a HUD
  line until ``run_end`` arrives.
"""

from __future__ import annotations

import json
import sys
import time
from collections import deque
from pathlib import Path

__all__ = [
    "LiveHud",
    "render_hud",
    "render_watch",
    "watch_snapshot",
    "follow_events",
    "read_events",
]


def _fmt_count(value) -> str:
    return "?" if value is None else f"{value:,}"


def _fmt_eta(seconds) -> str:
    if seconds is None:
        return "--"
    seconds = max(0, int(seconds))
    if seconds < 90:
        return f"{seconds}s"
    minutes, rest = divmod(seconds, 60)
    return f"{minutes}m{rest:02d}s"


def render_hud(
    *,
    phase: str,
    step=None,
    queued=None,
    merges=None,
    hit_rate=None,
    eta=None,
) -> str:
    """One status line; every part is optional except the phase.

    ``hit_rate`` is a 0..1 float or ``None``; ``eta`` is seconds or
    ``None``. Pure and byte-stable: same inputs, same string.
    """
    parts = [f"[{phase}]"]
    if step is not None:
        parts.append(f"step {_fmt_count(step)}")
    if queued is not None:
        parts.append(f"queued {_fmt_count(queued)}")
    if merges is not None:
        parts.append(f"merges {_fmt_count(merges)}")
    if hit_rate is not None:
        parts.append(f"cache {hit_rate * 100:.1f}%")
    if eta is not None or phase == "iterate":
        parts.append(f"eta {_fmt_eta(eta)}")
    return " · ".join(parts)


class LiveHud:
    """In-place stderr HUD driven by the engine's ``step_hook`` seam.

    *stream* and *clock* are injectable for deterministic tests; the
    default redraw throttle is 5 Hz so the HUD costs nothing
    measurable against a loop doing real work.
    """

    def __init__(
        self,
        stream=None,
        *,
        interval: float = 0.2,
        clock=time.monotonic,
        sample_window: int = 64,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._interval = interval
        self._clock = clock
        self._samples: deque = deque(maxlen=sample_window)
        self._last_draw: float | None = None
        self._phase = "starting"
        self._drawn = False

    # -- engine hooks ---------------------------------------------------
    def phase(self, name: str) -> None:
        """Announce a phase with no step counters yet (build, done)."""
        self._phase = name
        self._draw(render_hud(phase=name))

    def step_hook(self, engine, step: int) -> None:
        """The ``Reconciler.run(step_hook=...)`` callback: read-only."""
        self._phase = "iterate"
        now = self._clock()
        queued = len(engine.queue)
        self._samples.append((now, queued))
        if self._last_draw is not None and now - self._last_draw < self._interval:
            return
        self._last_draw = now
        stats = engine.stats
        hits = stats.values_cache_hits + stats.contacts_cache_hits
        misses = stats.values_cache_misses + stats.contacts_cache_misses
        self._draw(
            render_hud(
                phase="iterate",
                step=step,
                queued=queued,
                merges=stats.merges,
                hit_rate=hits / (hits + misses) if hits + misses else None,
                eta=self._eta(queued),
            )
        )

    def _eta(self, queued: int):
        """Seconds until the queue drains at the sampled net rate.

        Extrapolates from the oldest and newest samples in the window;
        a growing queue (enrichment storm) yields ``None`` ("--") —
        honest, since no finish time can be projected from it.
        """
        if len(self._samples) < 2:
            return None
        t_old, q_old = self._samples[0]
        t_new, q_new = self._samples[-1]
        if t_new <= t_old:
            return None
        rate = (q_old - q_new) / (t_new - t_old)
        if rate <= 0:
            return None
        return queued / rate

    # -- drawing --------------------------------------------------------
    def _draw(self, line: str) -> None:
        self._stream.write("\r" + line + "\x1b[K")
        self._stream.flush()
        self._drawn = True

    def close(self) -> None:
        """Finish the HUD line so later stderr output starts clean."""
        if self._drawn:
            self._stream.write("\n")
            self._stream.flush()
            self._drawn = False


# ----------------------------------------------------------------------
# repro watch: event-log folding
# ----------------------------------------------------------------------

def watch_snapshot(events: list[dict]) -> dict:
    """Fold an event stream into one run-status snapshot.

    Works on any prefix of a run's events (a live tail) as well as the
    complete log; unknown events are counted but otherwise ignored, so
    the watcher never breaks when the taxonomy grows.
    """
    snap = {
        "dataset": None,
        "algorithm": None,
        "references": None,
        "workers": None,
        "iterate_workers": None,
        "resumed": False,
        "phase": "starting",
        "step": None,
        "queued": None,
        "merges": None,
        "recomputations": None,
        "checkpoints": 0,
        "degradations": 0,
        "lane_deaths": 0,
        "pairs_poisoned": 0,
        "completed": None,
        "stop_reason": None,
        "events": len(events),
    }
    for event in events:
        name = event.get("event")
        if name == "run_start":
            snap["dataset"] = event.get("dataset")
            snap["algorithm"] = event.get("algorithm")
            snap["references"] = event.get("references")
            snap["workers"] = event.get("workers")
            snap["iterate_workers"] = event.get("iterate_workers")
        elif name == "resume":
            snap["resumed"] = True
        elif name == "build_start":
            snap["phase"] = "build"
        elif name == "build_end":
            snap["phase"] = "build"
            snap["queued"] = event.get("queued")
        elif name == "iterate_start":
            snap["phase"] = "iterate"
            snap["queued"] = event.get("queued")
        elif name == "iterate_progress":
            snap["phase"] = "iterate"
            snap["step"] = event.get("step")
            snap["queued"] = event.get("queued")
            snap["merges"] = event.get("merges")
            snap["recomputations"] = event.get("recomputations")
        elif name == "iterate_end":
            snap["step"] = event.get("steps")
            snap["merges"] = event.get("merges")
            snap["stop_reason"] = event.get("stop_reason")
        elif name == "run_end":
            snap["phase"] = "done"
            snap["completed"] = event.get("completed")
            snap["stop_reason"] = event.get("stop_reason")
            snap["merges"] = event.get("merges")
            snap["recomputations"] = event.get("recomputations")
        elif name == "checkpoint_saved":
            snap["checkpoints"] += 1
        elif name == "degradation":
            snap["degradations"] += 1
        elif name == "lane_died":
            snap["lane_deaths"] += 1
        elif name == "pair_poisoned":
            snap["pairs_poisoned"] += 1
    return snap


def render_watch(snap: dict) -> str:
    """Multi-line snapshot for ``repro watch --once``; byte-stable."""
    run = snap["dataset"] if snap["dataset"] is not None else "?"
    algorithm = snap["algorithm"] if snap["algorithm"] is not None else "?"
    lines = [
        f"run: {run} ({algorithm}) · {_fmt_count(snap['references'])} references"
        + (" · resumed" if snap["resumed"] else ""),
        f"phase: {snap['phase']}",
    ]
    if snap["step"] is not None or snap["queued"] is not None:
        lines.append(
            f"progress: step {_fmt_count(snap['step'])}"
            f" · queued {_fmt_count(snap['queued'])}"
            f" · merges {_fmt_count(snap['merges'])}"
            f" · recomputations {_fmt_count(snap['recomputations'])}"
        )
    if snap["workers"] is not None:
        lines.append(
            f"workers: {snap['workers']} build / "
            f"{snap['iterate_workers']} iterate"
        )
    lines.append(
        f"checkpoints: {snap['checkpoints']}"
        f" · degradations: {snap['degradations']}"
        f" · lane deaths: {snap['lane_deaths']}"
        f" · pairs poisoned: {snap['pairs_poisoned']}"
    )
    if snap["phase"] == "done":
        verdict = "completed" if snap["completed"] else "stopped"
        lines.append(f"result: {verdict} ({snap['stop_reason']})")
    return "\n".join(lines)


def _hud_from_snapshot(snap: dict) -> str:
    return render_hud(
        phase=snap["phase"],
        step=snap["step"],
        queued=snap["queued"],
        merges=snap["merges"],
    )


def read_events(path: str | Path) -> list[dict]:
    """Parse an events.jsonl file, tolerating a reader/writer race.

    A concurrent writer may be mid-append, so an unterminated final
    line is a *fragment*, not corruption: it is held back entirely and
    picked up complete on the next poll (:func:`follow_events` re-reads
    the file once it grows again), never half-parsed or dropped.
    Interior lines that fail to parse are genuine corruption and are
    skipped.
    """
    events = []
    try:
        text = Path(path).read_text()
    except FileNotFoundError:
        return events
    if text and not text.endswith("\n"):
        text = text[: text.rfind("\n") + 1]
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return events


def follow_events(
    path: str | Path,
    *,
    stream=None,
    interval: float = 0.5,
    clock=time.monotonic,
    sleep=time.sleep,
    max_idle: float | None = None,
) -> dict:
    """Tail *path* like ``tail -f``, redrawing a HUD line per poll.

    Returns the final snapshot when a ``run_end`` event arrives, or —
    with *max_idle* set — when the file has not grown for that many
    seconds (the run died without a ``run_end``; the watcher should
    not hang forever on a corpse). Ctrl-C simply propagates.
    """
    stream = stream if stream is not None else sys.stderr
    path = Path(path)
    last_size = -1
    last_growth = clock()
    snap = watch_snapshot([])
    while True:
        try:
            size = path.stat().st_size
        except FileNotFoundError:
            size = -1
        if size != last_size:
            last_size = size
            last_growth = clock()
            snap = watch_snapshot(read_events(path))
            stream.write("\r" + _hud_from_snapshot(snap) + "\x1b[K")
            stream.flush()
        if snap["phase"] == "done":
            break
        if max_idle is not None and clock() - last_growth > max_idle:
            break
        sleep(interval)
    stream.write("\n")
    stream.flush()
    return snap
