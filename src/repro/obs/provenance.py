"""Merge-provenance audit log: every decision, with its evidence.

The engine's behaviour is defined by *decisions* — merge, non-merge,
or defer (stay below threshold) — each taken from a concrete bundle of
evidence: per-channel scores, the S_rv combination, strong/weak
boolean support, and the dependency-graph propagation that triggered
the recomputation in the first place. A :class:`ProvenanceLog`
records one :class:`DecisionRecord` per decision, in decision order,
so the run can be *replayed* rather than re-derived:

* ``repro explain`` answers from the actual records (what the engine
  saw at decision time) instead of recomputing similarities against
  post-hoc cluster state;
* audits can ask "which channel carried this merge" or "what
  propagation chain led here" for any pair, merged or not.

Records are append-only and exportable as JSONL. Sequence numbers are
local to the log; they are never serialised into checkpoints, so
provenance cannot perturb resume determinism.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

from ..core.nodes import PairKey, pair_key

__all__ = ["DecisionRecord", "ProvenanceLog"]

#: decision tags, stable and machine-readable.
MERGE = "merge"
NON_MERGE_CONFLICT = "non_merge_conflict"
NON_MERGE_ENEMY = "non_merge_enemy"
DEFER = "defer"
TRANSITIVE = "transitive_merge"
#: a supervised build quarantined the pair (scored as no-merge after
#: repeated scoring failures isolated it; see runtime.supervisor).
PAIR_POISONED = "pair_poisoned"

DECISIONS = (
    MERGE,
    NON_MERGE_CONFLICT,
    NON_MERGE_ENEMY,
    DEFER,
    TRANSITIVE,
    PAIR_POISONED,
)

#: activation causes (what put the node on the queue).
TRIGGERS = ("seed", "real", "strong", "weak", "fusion", "incremental")


@dataclass(frozen=True)
class DecisionRecord:
    """One engine decision about one element pair.

    ``channels`` holds the per-channel evidence scores that fed S_rv
    at decision time; ``s_rv`` the combined real-valued score,
    ``strong_support`` / ``weak_support`` the boolean counts *used*
    (zero when S_rv stayed below ``t_rv``). ``trigger`` says why the
    node was recomputed (``seed`` = initial queue seeding, ``strong``
    / ``weak`` / ``real`` = propagation along that edge type from
    ``trigger_pair``, ``fusion`` = reactivation after an enrichment
    fusion). ``score`` is the node's (monotone) score after the
    decision and ``threshold`` the merge bar it was compared against.
    """

    seq: int
    pair: PairKey
    class_name: str
    decision: str
    score: float
    threshold: float
    s_rv: float
    t_rv: float
    strong_support: int
    weak_support: int
    channels: dict[str, float] = field(default_factory=dict)
    trigger: str = "seed"
    trigger_pair: PairKey | None = None
    recompute_index: int = 0

    def to_dict(self) -> dict:
        data = asdict(self)
        data["pair"] = list(self.pair)
        if self.trigger_pair is not None:
            data["trigger_pair"] = list(self.trigger_pair)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "DecisionRecord":
        # Tolerate extra keys: sharded runs annotate each row with its
        # shard/phase attribution, and future writers may add more.
        known = {f.name for f in fields(cls)}
        data = {key: value for key, value in data.items() if key in known}
        data["pair"] = tuple(data["pair"])
        if data.get("trigger_pair") is not None:
            data["trigger_pair"] = tuple(data["trigger_pair"])
        return cls(**data)


class ProvenanceLog:
    """Append-only decision log with per-pair lookup.

    The engine notes the *cause* of each queue activation
    (:meth:`note_activation`); when the node is eventually popped and
    recomputed, the pending cause is consumed into the decision record
    (:meth:`take_activation`). ``jsonl_path`` additionally streams
    every record to a JSONL file as it is recorded (append mode, so a
    resumed run continues the same audit trail).
    """

    def __init__(self, jsonl_path: str | Path | None = None) -> None:
        self.records: list[DecisionRecord] = []
        self._by_pair: dict[PairKey, list[int]] = {}
        self._pending: dict[PairKey, tuple[str, PairKey | None]] = {}
        self.jsonl_path = Path(jsonl_path) if jsonl_path is not None else None
        self._handle = None

    def __len__(self) -> int:
        return len(self.records)

    # -- activation causes ---------------------------------------------
    def note_activation(
        self, key: PairKey, trigger: str, source: PairKey | None = None
    ) -> None:
        """Remember why *key* was (re)queued; the latest cause wins."""
        self._pending[key] = (trigger, source)

    def take_activation(self, key: PairKey) -> tuple[str, PairKey | None]:
        """Consume the pending cause for *key* (default: seed)."""
        return self._pending.pop(key, ("seed", None))

    # -- recording ------------------------------------------------------
    def record(
        self,
        *,
        pair: PairKey,
        class_name: str,
        decision: str,
        score: float,
        threshold: float,
        s_rv: float = 0.0,
        t_rv: float = 0.0,
        strong_support: int = 0,
        weak_support: int = 0,
        channels: dict[str, float] | None = None,
        trigger: str = "seed",
        trigger_pair: PairKey | None = None,
        recompute_index: int = 0,
    ) -> DecisionRecord:
        record = DecisionRecord(
            seq=len(self.records),
            pair=pair,
            class_name=class_name,
            decision=decision,
            score=round(score, 6),
            threshold=threshold,
            s_rv=round(s_rv, 6),
            t_rv=t_rv,
            strong_support=strong_support,
            weak_support=weak_support,
            channels={name: round(value, 6) for name, value in (channels or {}).items()},
            trigger=trigger,
            trigger_pair=trigger_pair,
            recompute_index=recompute_index,
        )
        self.records.append(record)
        self._by_pair.setdefault(record.pair, []).append(record.seq)
        if self.jsonl_path is not None:
            if self._handle is None:
                self.jsonl_path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.jsonl_path.open("a")
            self._handle.write(json.dumps(record.to_dict()) + "\n")
            # Flushed per record: a crashed run's trail must be on disk
            # at least up to its last checkpoint, or the resumed run's
            # audit log would silently miss decisions the restored
            # engine state already contains.
            self._handle.flush()
        return record

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- queries --------------------------------------------------------
    def decisions_for(self, left: str, right: str) -> list[DecisionRecord]:
        """All decisions about the (unordered) pair, in decision order."""
        return [self.records[i] for i in self._by_pair.get(pair_key(left, right), ())]

    def last_decision(self, left: str, right: str) -> DecisionRecord | None:
        decisions = self.decisions_for(left, right)
        return decisions[-1] if decisions else None

    def merge_record(self, left: str, right: str) -> DecisionRecord | None:
        """The decision that merged the pair, if one did."""
        for record in self.decisions_for(left, right):
            if record.decision in (MERGE, TRANSITIVE):
                return record
        return None

    def merged_pairs(self) -> list[PairKey]:
        return [r.pair for r in self.records if r.decision == MERGE]

    def non_merged_pairs(self) -> list[PairKey]:
        return [
            r.pair
            for r in self.records
            if r.decision in (DEFER, NON_MERGE_CONFLICT, NON_MERGE_ENEMY)
        ]

    # -- round-trip -----------------------------------------------------
    def to_jsonl(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            for record in self.records:
                handle.write(json.dumps(record.to_dict()) + "\n")
        return path

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "ProvenanceLog":
        log = cls()
        with Path(path).open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = DecisionRecord.from_dict(json.loads(line))
                log.records.append(record)
                # Index by position, not stored seq: an append-continued
                # file (resume) restarts seq numbering mid-file.
                log._by_pair.setdefault(record.pair, []).append(len(log.records) - 1)
        return log
