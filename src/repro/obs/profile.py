"""Stdlib sampling wall-clock profiler (``--profile``).

A daemon thread wakes every ``interval`` seconds and snapshots the
main thread's Python stack via ``sys._current_frames()`` — the same
mechanism py-spy-style samplers use, minus the external process. No
tracing hooks are installed, so the engine's hot loop runs at full
speed and the overhead is one stack walk per sample (~10 µs at the
default 10 ms interval: well under 1%).

Two export formats land in the run directory:

* **folded stacks** (``profile.folded``) — one ``root;...;leaf count``
  line per distinct stack, the flamegraph.pl / speedscope "folded"
  dialect;
* **speedscope JSON** (``profile.speedscope.json``) — a ``"sampled"``
  profile loadable at speedscope.app (the file is self-contained;
  nothing is fetched).

Sampling is strictly observational: the profiled thread is never
paused or signalled, so a run with ``--profile`` stays byte-identical
to one without. The trade-offs of wall-clock sampling apply — time
blocked on worker harvests *is* attributed to the blocking frame
(that is the point: it shows where the parent waits), and stacks are
a statistical picture, not a call count.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path

__all__ = ["SamplingProfiler", "parse_folded", "top_frames_from_folded"]


def _frame_label(frame) -> str:
    code = frame.f_code
    return f"{code.co_name} ({Path(code.co_filename).name}:{code.co_firstlineno})"


class SamplingProfiler:
    """Samples one thread's stack on a fixed interval.

    By default the *calling* thread is profiled (start it from the
    main thread before ``reconciler.run``); pass ``thread_ident`` to
    target another. Usable as a context manager.
    """

    def __init__(self, interval: float = 0.01, *, thread_ident: int | None = None) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self._target = thread_ident if thread_ident is not None else threading.get_ident()
        #: stack (root→leaf tuple of frame labels) → sample count.
        self.samples: dict[tuple[str, ...], int] = {}
        self.sample_count = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self._target)
            if frame is None:  # pragma: no cover - target thread exited
                continue
            stack: list[str] = []
            while frame is not None:
                stack.append(_frame_label(frame))
                frame = frame.f_back
            stack.reverse()
            key = tuple(stack)
            self.samples[key] = self.samples.get(key, 0) + 1
            self.sample_count += 1

    # -- exports --------------------------------------------------------
    def folded(self) -> dict[str, int]:
        """``"root;...;leaf" -> samples``, sorted for stable output."""
        return {
            ";".join(stack): count
            for stack, count in sorted(self.samples.items())
        }

    def write_folded(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            "".join(f"{stack} {count}\n" for stack, count in self.folded().items())
        )
        return path

    def speedscope(self, name: str = "repro run") -> dict:
        """The samples as a self-contained speedscope ``sampled`` profile."""
        frames: list[dict] = []
        frame_index: dict[str, int] = {}
        samples: list[list[int]] = []
        weights: list[float] = []
        for stack, count in sorted(self.samples.items()):
            indexed = []
            for label in stack:
                index = frame_index.get(label)
                if index is None:
                    index = frame_index[label] = len(frames)
                    frames.append({"name": label})
                indexed.append(index)
            samples.append(indexed)
            weights.append(round(count * self.interval, 9))
        total = round(sum(weights), 9)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "exporter": "repro.obs.profile",
            "activeProfileIndex": 0,
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
        }

    def write_speedscope(self, path: str | Path, name: str = "repro run") -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.speedscope(name), indent=1) + "\n")
        return path

    def top_frames(self, n: int = 10) -> list[dict]:
        """The *n* hottest frames: self samples (leaf position) and
        total samples (anywhere on the stack), hottest-self first."""
        return top_frames_from_folded(self.folded(), n)


def top_frames_from_folded(folded: dict[str, int], n: int = 10) -> list[dict]:
    """:meth:`SamplingProfiler.top_frames` recomputed from a parsed
    folded-stack mapping (what ``repro report`` loads from disk)."""
    self_counts: dict[str, int] = {}
    total_counts: dict[str, int] = {}
    for stack_text, count in folded.items():
        stack = stack_text.split(";")
        if stack:
            self_counts[stack[-1]] = self_counts.get(stack[-1], 0) + count
        for label in set(stack):
            total_counts[label] = total_counts.get(label, 0) + count
    ranked = sorted(
        total_counts,
        key=lambda label: (-self_counts.get(label, 0), -total_counts[label], label),
    )
    return [
        {
            "frame": label,
            "self": self_counts.get(label, 0),
            "total": total_counts[label],
        }
        for label in ranked[:n]
    ]


def parse_folded(text: str) -> dict[str, int]:
    """Parse folded-stack text (``stack count`` per line)."""
    folded: dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        if not stack:
            continue
        try:
            folded[stack] = folded.get(stack, 0) + int(count)
        except ValueError:
            continue
    return folded
