"""Schemas and validators for every telemetry artifact.

Pure-python structural validation (no external JSON-Schema dependency)
for the four machine-readable outputs:

* the JSONL **event log** (``--log-json``),
* the **Chrome trace** file (``--trace``),
* the **metrics snapshot** JSON and the **Prometheus text** export
  (``--metrics``),
* the **provenance** decision records (``--provenance`` / ``explain``).

Each ``validate_*`` raises :class:`SchemaError` naming the offending
field; CI's observability smoke job runs them against real run output
so schema drift fails the build instead of silently breaking
downstream consumers. The ``*_SCHEMA`` dicts document the shapes in
JSON-Schema style for readers and external tooling.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from .events import LEVELS
from .provenance import DECISIONS, TRIGGERS

__all__ = [
    "SchemaError",
    "EVENT_SCHEMA",
    "TRACE_EVENT_SCHEMA",
    "METRIC_SCHEMA",
    "DECISION_SCHEMA",
    "MANIFEST_SCHEMA",
    "CRASH_BUNDLE_SCHEMA",
    "validate_crash_bundle",
    "validate_event",
    "validate_event_log",
    "validate_chrome_trace",
    "validate_metrics_snapshot",
    "validate_decision",
    "validate_provenance_jsonl",
    "validate_manifest",
    "validate_speedscope",
    "trace_process_names",
    "parse_prometheus",
    "parse_labels",
    "unescape_label_value",
]


class SchemaError(ValueError):
    """A telemetry artifact does not match its documented schema."""


EVENT_SCHEMA = {
    "type": "object",
    "required": ["ts", "level", "event"],
    "properties": {
        "ts": {"type": "number"},
        "level": {"enum": sorted(LEVELS)},
        "event": {"type": "string"},
    },
    "additionalProperties": True,  # event-specific flat fields
}

TRACE_EVENT_SCHEMA = {
    "type": "object",
    "required": ["name", "ph", "pid", "tid"],
    "properties": {
        "name": {"type": "string"},
        "ph": {"enum": ["X", "i", "M"]},
        "ts": {"type": "number", "minimum": 0},
        "dur": {"type": "number", "minimum": 0},
        "pid": {"type": "integer"},
        "tid": {"type": "integer"},
        "cat": {"type": "string"},
        "args": {"type": "object"},
    },
}

METRIC_SCHEMA = {
    "type": "object",
    "required": ["type"],
    "properties": {
        "type": {"enum": ["counter", "gauge", "histogram"]},
        "help": {"type": "string"},
        "value": {"type": "number"},
        "count": {"type": "integer"},
        "sum": {"type": "number"},
        "buckets": {"type": "object"},
        "labels": {"type": "object"},  # label name -> string value
    },
}

#: Run manifest (``run.json``): section -> required keys. Sections are
#: dicts except ``convergence`` / ``degradations`` (lists). See
#: :mod:`repro.obs.manifest` for the full field inventory.
MANIFEST_SCHEMA = {
    "type": "object",
    "required": [
        "manifest_version", "kind", "run", "config", "partition",
        "quality", "convergence", "counters", "degradations",
        "execution", "artifacts",
    ],
    "properties": {
        "manifest_version": {"const": 1},
        "kind": {"const": "repro_run_manifest"},
        "run": {"required": ["dataset", "algorithm", "references", "completed"]},
        "partition": {"required": ["digest", "per_class"]},
        "quality": {"type": "object"},  # class -> {pairwise, bcubed, partitions}
        "convergence": {"type": "array"},
        "counters": {"type": "object"},
        "degradations": {"type": "array"},
        "execution": {"required": ["resumed", "build_seconds", "iterate_seconds"]},
        "artifacts": {"type": "object"},  # kind -> path
    },
}

#: Crash bundle (``crash_bundle.json``) dumped by the flight recorder
#: when a run dies or degrades. ``rings`` holds the recorder's four
#: ring buffers, ``stacks`` per-thread formatted stacks, and
#: ``worker_lanes`` the relay's retained lane rings + lane deaths.
CRASH_BUNDLE_SCHEMA = {
    "type": "object",
    "required": [
        "bundle_version", "kind", "reason", "phase", "stop_reason",
        "exception", "config", "stats", "rings", "stacks", "worker_lanes",
    ],
    "properties": {
        "bundle_version": {"const": 1},
        "kind": {"const": "repro_crash_bundle"},
        "reason": {"type": "string"},
        "phase": {"type": ["string", "null"]},
        "stop_reason": {"type": ["string", "null"]},
        "exception": {
            "type": ["object", "null"],
            "required": ["type", "message", "traceback"],
        },
        "config": {"type": "object"},
        "stats": {"type": "object"},  # partial EngineStats (asdict)
        "rings": {
            "required": ["ring_size", "events", "decisions", "chunks", "degradations"]
        },
        "stacks": {"type": "object"},  # "tid (name)" -> [frame lines]
        "worker_lanes": {"required": ["lanes", "deaths"]},
    },
}

DECISION_SCHEMA = {
    "type": "object",
    "required": [
        "seq", "pair", "class_name", "decision", "score", "threshold",
        "s_rv", "t_rv", "strong_support", "weak_support", "channels", "trigger",
    ],
    "properties": {
        "seq": {"type": "integer", "minimum": 0},
        "pair": {"type": "array", "items": {"type": "string"}},
        "decision": {"enum": list(DECISIONS)},
        "trigger": {"enum": list(TRIGGERS)},
        "channels": {"type": "object"},
        "score": {"type": "number", "minimum": 0, "maximum": 1},
    },
}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def validate_event(obj: dict) -> None:
    """One event-log record against :data:`EVENT_SCHEMA`."""
    _require(isinstance(obj, dict), f"event must be an object, got {type(obj).__name__}")
    for key in ("ts", "level", "event"):
        _require(key in obj, f"event missing required field {key!r}: {obj}")
    _require(isinstance(obj["ts"], (int, float)), f"event ts must be numeric: {obj['ts']!r}")
    _require(obj["level"] in LEVELS, f"unknown event level {obj['level']!r}")
    _require(
        isinstance(obj["event"], str) and obj["event"],
        f"event name must be a non-empty string: {obj['event']!r}",
    )


def validate_event_log(path: str | Path) -> int:
    """Every line of a JSONL event log; returns the event count."""
    count = 0
    with Path(path).open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"{path}:{line_number}: not valid JSON: {exc}") from exc
            try:
                validate_event(obj)
            except SchemaError as exc:
                raise SchemaError(f"{path}:{line_number}: {exc}") from exc
            count += 1
    return count


def validate_chrome_trace(obj: dict) -> int:
    """A Chrome trace-event JSON object; returns the event count."""
    _require(isinstance(obj, dict), "trace must be a JSON object")
    _require("traceEvents" in obj, "trace missing 'traceEvents'")
    events = obj["traceEvents"]
    _require(isinstance(events, list) and events, "'traceEvents' must be a non-empty list")
    for index, event in enumerate(events):
        _require(isinstance(event, dict), f"traceEvents[{index}] must be an object")
        for key in ("name", "ph", "pid", "tid"):
            _require(key in event, f"traceEvents[{index}] missing {key!r}")
        phase = event["ph"]
        _require(phase in ("X", "i", "M"), f"traceEvents[{index}] unknown phase {phase!r}")
        if phase == "X":
            for key in ("ts", "dur"):
                _require(key in event, f"traceEvents[{index}] complete event missing {key!r}")
                _require(
                    isinstance(event[key], (int, float)) and event[key] >= 0,
                    f"traceEvents[{index}].{key} must be a non-negative number",
                )
        elif phase == "M":
            args = event.get("args")
            _require(
                isinstance(args, dict),
                f"traceEvents[{index}] metadata event missing 'args' object",
            )
            if event["name"] in ("process_name", "thread_name"):
                _require(
                    isinstance(args.get("name"), str) and args["name"],
                    f"traceEvents[{index}] {event['name']} args.name must be "
                    "a non-empty string",
                )
    return len(events)


def trace_process_names(obj: dict) -> dict[int, str]:
    """``pid -> process name`` from a trace's metadata events.

    The cross-process relay's acceptance check: a parallel run's trace
    must show at least two named lanes (engine + ≥1 worker)."""
    names: dict[int, str] = {}
    for event in obj.get("traceEvents", []):
        if event.get("ph") == "M" and event.get("name") == "process_name":
            names[event["pid"]] = event.get("args", {}).get("name", "")
    return names


def validate_speedscope(obj: dict) -> int:
    """A speedscope JSON profile (``--profile`` export); returns the
    total number of samples across its profiles."""
    _require(isinstance(obj, dict), "speedscope profile must be a JSON object")
    _require(
        str(obj.get("$schema", "")).endswith("file-format-schema.json"),
        "speedscope profile missing its $schema marker",
    )
    shared = obj.get("shared")
    _require(
        isinstance(shared, dict) and isinstance(shared.get("frames"), list),
        "speedscope profile missing shared.frames",
    )
    frames = shared["frames"]
    for index, frame in enumerate(frames):
        _require(
            isinstance(frame, dict) and isinstance(frame.get("name"), str),
            f"shared.frames[{index}] must have a string name",
        )
    profiles = obj.get("profiles")
    _require(
        isinstance(profiles, list) and profiles,
        "speedscope profile needs a non-empty 'profiles' list",
    )
    total = 0
    for p_index, profile in enumerate(profiles):
        _require(isinstance(profile, dict), f"profiles[{p_index}] must be an object")
        _require(
            profile.get("type") == "sampled",
            f"profiles[{p_index}] must be a 'sampled' profile",
        )
        samples = profile.get("samples")
        weights = profile.get("weights")
        _require(
            isinstance(samples, list) and isinstance(weights, list),
            f"profiles[{p_index}] needs 'samples' and 'weights' lists",
        )
        _require(
            len(samples) == len(weights),
            f"profiles[{p_index}]: {len(samples)} samples vs {len(weights)} weights",
        )
        for s_index, stack in enumerate(samples):
            _require(
                isinstance(stack, list)
                and all(
                    isinstance(i, int) and 0 <= i < len(frames) for i in stack
                ),
                f"profiles[{p_index}].samples[{s_index}] has out-of-range "
                "frame indices",
            )
        for w_index, weight in enumerate(weights):
            _require(
                isinstance(weight, (int, float)) and weight >= 0,
                f"profiles[{p_index}].weights[{w_index}] must be non-negative",
            )
        total += len(samples)
    return total


def validate_metrics_snapshot(obj: dict) -> int:
    """A metrics snapshot JSON; returns the metric count."""
    _require(isinstance(obj, dict), "metrics snapshot must be a JSON object")
    _require(bool(obj), "metrics snapshot is empty")
    for name, metric in obj.items():
        _require(isinstance(metric, dict), f"metric {name!r} must be an object")
        kind = metric.get("type")
        _require(
            kind in ("counter", "gauge", "histogram"),
            f"metric {name!r} has unknown type {kind!r}",
        )
        if kind == "histogram":
            for key in ("count", "sum", "buckets"):
                _require(key in metric, f"histogram {name!r} missing {key!r}")
            buckets = metric["buckets"]
            _require(
                isinstance(buckets, dict) and "+Inf" in buckets,
                f"histogram {name!r} buckets must include '+Inf'",
            )
            _require(
                buckets["+Inf"] == metric["count"],
                f"histogram {name!r}: +Inf bucket {buckets['+Inf']} != count {metric['count']}",
            )
            previous = -1
            for bound, cumulative in buckets.items():
                _require(
                    isinstance(cumulative, int) and cumulative >= previous,
                    f"histogram {name!r} bucket {bound!r} not cumulative",
                )
                previous = cumulative
        else:
            _require("value" in metric, f"{kind} {name!r} missing 'value'")
            _require(
                isinstance(metric["value"], (int, float)),
                f"{kind} {name!r} value must be numeric",
            )
    return len(obj)


def validate_decision(obj: dict) -> None:
    """One provenance record against :data:`DECISION_SCHEMA`."""
    _require(isinstance(obj, dict), "decision must be an object")
    for key in DECISION_SCHEMA["required"]:
        _require(key in obj, f"decision missing required field {key!r}: {obj}")
    _require(
        isinstance(obj["pair"], list)
        and len(obj["pair"]) == 2
        and all(isinstance(item, str) for item in obj["pair"]),
        f"decision pair must be a 2-list of strings: {obj['pair']!r}",
    )
    _require(
        obj["decision"] in DECISIONS,
        f"unknown decision {obj['decision']!r}; expected one of {DECISIONS}",
    )
    _require(
        obj["trigger"] in TRIGGERS,
        f"unknown trigger {obj['trigger']!r}; expected one of {TRIGGERS}",
    )
    _require(
        isinstance(obj["channels"], dict)
        and all(isinstance(value, (int, float)) for value in obj["channels"].values()),
        "decision channels must map channel name -> numeric score",
    )
    score = obj["score"]
    _require(
        isinstance(score, (int, float)) and 0.0 <= score <= 1.0,
        f"decision score must be in [0, 1]: {score!r}",
    )


def validate_provenance_jsonl(path: str | Path) -> int:
    """Every line of a provenance JSONL export; returns the count."""
    count = 0
    with Path(path).open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                validate_decision(json.loads(line))
            except (json.JSONDecodeError, SchemaError) as exc:
                raise SchemaError(f"{path}:{line_number}: {exc}") from exc
            count += 1
    return count


def validate_manifest(obj: dict) -> None:
    """A run manifest (``run.json``) against :data:`MANIFEST_SCHEMA`."""
    _require(isinstance(obj, dict), "manifest must be a JSON object")
    for key in MANIFEST_SCHEMA["required"]:
        _require(key in obj, f"manifest missing required section {key!r}")
    _require(
        obj["manifest_version"] == 1,
        f"unsupported manifest_version {obj['manifest_version']!r}",
    )
    _require(
        obj["kind"] == "repro_run_manifest",
        f"manifest kind must be 'repro_run_manifest': {obj['kind']!r}",
    )
    for section, spec in MANIFEST_SCHEMA["properties"].items():
        if "required" not in spec:
            continue
        value = obj[section]
        _require(isinstance(value, dict), f"manifest {section!r} must be an object")
        for key in spec["required"]:
            _require(key in value, f"manifest {section}.{key} missing")
    for section in ("convergence", "degradations"):
        _require(isinstance(obj[section], list), f"manifest {section!r} must be a list")
    digest = obj["partition"]["digest"]
    _require(
        isinstance(digest, str) and digest.startswith("sha256:") and len(digest) == 71,
        f"partition digest must be 'sha256:<64 hex>': {digest!r}",
    )
    for sample in obj["convergence"]:
        _require(isinstance(sample, dict), "convergence samples must be objects")
        for key in ("recomputations", "merges", "queued", "precision", "recall"):
            _require(key in sample, f"convergence sample missing {key!r}: {sample}")
            _require(
                isinstance(sample[key], (int, float)),
                f"convergence sample {key} must be numeric: {sample[key]!r}",
            )
    for class_name, scores in obj["quality"].items():
        for family in ("pairwise", "bcubed"):
            _require(
                family in scores, f"quality[{class_name!r}] missing {family!r}"
            )
            for key in ("precision", "recall", "f1"):
                value = scores[family].get(key)
                _require(
                    isinstance(value, (int, float)) and 0.0 <= value <= 1.0,
                    f"quality[{class_name!r}].{family}.{key} must be in [0, 1]: {value!r}",
                )
    for name, count in obj["counters"].items():
        _require(
            isinstance(count, int) and count >= 0,
            f"counter {name!r} must be a non-negative integer: {count!r}",
        )


def validate_crash_bundle(obj: dict) -> None:
    """A crash bundle against :data:`CRASH_BUNDLE_SCHEMA`."""
    _require(isinstance(obj, dict), "crash bundle must be a JSON object")
    for key in CRASH_BUNDLE_SCHEMA["required"]:
        _require(key in obj, f"crash bundle missing required field {key!r}")
    _require(
        obj["bundle_version"] == 1,
        f"unsupported bundle_version {obj['bundle_version']!r}",
    )
    _require(
        obj["kind"] == "repro_crash_bundle",
        f"crash bundle kind must be 'repro_crash_bundle': {obj['kind']!r}",
    )
    _require(
        isinstance(obj["reason"], str) and obj["reason"],
        f"crash bundle reason must be a non-empty string: {obj['reason']!r}",
    )
    for key in ("phase", "stop_reason"):
        _require(
            obj[key] is None or isinstance(obj[key], str),
            f"crash bundle {key} must be a string or null: {obj[key]!r}",
        )
    exception = obj["exception"]
    if exception is not None:
        _require(isinstance(exception, dict), "crash bundle exception must be an object")
        for key in ("type", "message", "traceback"):
            _require(key in exception, f"crash bundle exception missing {key!r}")
        _require(
            isinstance(exception["traceback"], list),
            "crash bundle exception traceback must be a list of lines",
        )
    for key in ("config", "stats"):
        _require(isinstance(obj[key], dict), f"crash bundle {key} must be an object")
    rings = obj["rings"]
    _require(isinstance(rings, dict), "crash bundle rings must be an object")
    for ring in ("events", "decisions", "chunks", "degradations"):
        _require(ring in rings, f"crash bundle rings missing {ring!r}")
        _require(
            isinstance(rings[ring], list),
            f"crash bundle ring {ring!r} must be a list",
        )
    _require(
        isinstance(rings.get("ring_size"), int),
        "crash bundle rings.ring_size must be an integer",
    )
    stacks = obj["stacks"]
    _require(isinstance(stacks, dict), "crash bundle stacks must be an object")
    for thread, lines in stacks.items():
        _require(
            isinstance(lines, list)
            and all(isinstance(line, str) for line in lines),
            f"crash bundle stack for {thread!r} must be a list of strings",
        )
    lanes = obj["worker_lanes"]
    _require(isinstance(lanes, dict), "crash bundle worker_lanes must be an object")
    for key in ("lanes", "deaths"):
        _require(key in lanes, f"crash bundle worker_lanes missing {key!r}")
    _require(
        isinstance(lanes["lanes"], dict),
        "crash bundle worker_lanes.lanes must be an object",
    )
    _require(
        isinstance(lanes["deaths"], list),
        "crash bundle worker_lanes.deaths must be a list",
    )


def unescape_label_value(value: str) -> str:
    """Invert :func:`repro.obs.metrics.escape_label_value`.

    A manual scan (not chained ``str.replace``) so ``\\\\n`` decodes to
    backslash + ``n``, never to a newline.
    """
    out: list[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            if nxt == "n":
                out.append("\n")
                index += 2
                continue
            if nxt in ('"', "\\"):
                out.append(nxt)
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def parse_labels(sample: str) -> tuple[str, dict[str, str]]:
    """Split a Prometheus sample name into ``(metric, labels)``.

    ``'repro_run_info{dataset="say \\"B\\""}'`` round-trips back to the
    raw label values :meth:`MetricsRegistry.absorb_run_info` was given.
    """
    brace = sample.find("{")
    if brace < 0:
        return sample, {}
    _require(sample.endswith("}"), f"unterminated label set in {sample!r}")
    name = sample[:brace]
    body = sample[brace + 1 : -1]
    labels: dict[str, str] = {}
    index = 0
    while index < len(body):
        equals = body.find("=", index)
        _require(equals > index, f"malformed label in {sample!r}")
        key = body[index:equals].strip().lstrip(",").strip()
        _require(
            body[equals + 1 : equals + 2] == '"',
            f"label value for {key!r} must be quoted in {sample!r}",
        )
        cursor = equals + 2
        raw: list[str] = []
        while cursor < len(body):
            char = body[cursor]
            if char == "\\" and cursor + 1 < len(body):
                raw.append(body[cursor : cursor + 2])
                cursor += 2
                continue
            if char == '"':
                break
            raw.append(char)
            cursor += 1
        _require(
            cursor < len(body) and body[cursor] == '"',
            f"unterminated label value for {key!r} in {sample!r}",
        )
        labels[key] = unescape_label_value("".join(raw))
        index = cursor + 1
        if index < len(body) and body[index] == ",":
            index += 1
    return name, labels


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse Prometheus text exposition format into ``{sample: value}``.

    Strict enough to catch real breakage: every non-comment line must
    be ``name[{labels}] value``, TYPE lines must name a known metric
    kind, and at least one sample must exist.
    """
    samples: dict[str, float] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            _require(
                len(parts) >= 3 and parts[1] in ("HELP", "TYPE"),
                f"line {line_number}: malformed comment {line!r}",
            )
            if parts[1] == "TYPE":
                _require(
                    len(parts) == 4
                    and parts[3] in ("counter", "gauge", "histogram", "summary", "untyped"),
                    f"line {line_number}: malformed TYPE line {line!r}",
                )
            continue
        name, _, value_text = line.rpartition(" ")
        _require(bool(name), f"line {line_number}: no metric name in {line!r}")
        try:
            value = float(value_text)
        except ValueError as exc:
            raise SchemaError(
                f"line {line_number}: sample value {value_text!r} is not a number"
            ) from exc
        _require(not math.isnan(value), f"line {line_number}: NaN sample")
        samples[name] = value
    _require(bool(samples), "no samples found in Prometheus text")
    return samples
