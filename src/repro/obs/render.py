"""Human-readable renderers over telemetry snapshots.

The CLI's ``--stats`` output and degradation notices used to be
ad-hoc ``print(..., file=sys.stderr)`` calls; they are now pure
functions from engine state / metrics snapshots to text, so the same
data renders identically whether it comes from a live run, a metrics
JSON file, or a test. The ``--stats`` format is kept byte-stable with
the pre-observability output.
"""

from __future__ import annotations

__all__ = [
    "hit_rate",
    "render_stats",
    "render_degradations",
    "render_quarantine",
    "render_diff",
]


def hit_rate(hits: int, misses: int) -> str:
    """``"62.5% (5/8)"`` or ``"n/a"`` for an untouched cache."""
    total = hits + misses
    if not total:
        return "n/a"
    return f"{hits / total:.1%} ({hits}/{total})"


def render_stats(stats) -> str:
    """The ``--stats`` block from an :class:`~repro.core.engine.EngineStats`."""
    supervision = {
        name: getattr(stats, name, 0)
        for name in ("task_retries", "task_timeouts", "pool_rebuilds", "pairs_poisoned")
    }
    lines = [
        "engine stats:",
        f"  build {stats.build_seconds:.2f}s, iterate {stats.iterate_seconds:.2f}s "
        f"(workers={stats.parallel_workers})",
    ]
    if any(supervision.values()):
        # Only surfaced when something actually degraded, so the clean
        # --stats block stays byte-identical to earlier generations.
        lines.append(
            "  supervision: retries={task_retries} timeouts={task_timeouts} "
            "pool_rebuilds={pool_rebuilds} pairs_poisoned={pairs_poisoned}".format(
                **supervision
            )
        )
    speculated = getattr(stats, "speculated_nodes", 0)
    if speculated:
        # Mirrors the supervision line: present only when the iterate
        # loop actually ran speculatively.
        hits = getattr(stats, "speculation_hits", 0)
        lines.append(
            f"  speculation: workers={getattr(stats, 'iterate_workers', 1)} "
            f"speculated={speculated} "
            f"hit rate {hit_rate(hits, speculated - hits)} "
            f"invalidated={getattr(stats, 'speculation_invalidated', 0)} "
            f"dropped={getattr(stats, 'speculation_dropped', 0)}"
        )
    lines += [
        f"  candidate_pairs={stats.candidate_pairs} pair_nodes={stats.pair_nodes} "
        f"value_nodes={stats.value_nodes} graph_nodes={stats.graph_nodes}",
        f"  recomputations={stats.recomputations} merges={stats.merges} "
        f"non_merges={stats.non_merges} fusions={stats.fusions}",
        "  cache effectiveness:",
        f"    values cache   {hit_rate(stats.values_cache_hits, stats.values_cache_misses)}",
        f"    contacts cache {hit_rate(stats.contacts_cache_hits, stats.contacts_cache_misses)}",
        f"    feature cache  {hit_rate(stats.feature_cache_hits, stats.feature_cache_misses)}",
        f"    pair-score memo {hit_rate(stats.pair_memo_hits, stats.pair_memo_misses)}, "
        f"prefilter skips {stats.prefilter_skips}",
    ]
    return "\n".join(lines)


def render_degradations(result) -> str:
    """The stderr notice for a degraded run (empty string when clean)."""
    if result.completed and not result.degradations:
        return ""
    lines = []
    if not result.completed:
        lines.append(f"run degraded: stop_reason={result.stop_reason}")
    for event in result.degradations:
        lines.append(f"  [{event.kind}] {event.detail}")
    return "\n".join(lines)


def render_quarantine(quarantined) -> str:
    """The lenient-ingestion notice (empty string when nothing was)."""
    if not quarantined:
        return ""
    return (
        f"quarantined {len(quarantined)} bad records (see quarantine.jsonl)"
    )


def _pair(pair: list) -> str:
    return f"{pair[0]} <-> {pair[1]}"


def render_diff(verdict) -> str:
    """``repro diff`` text from a :class:`~repro.obs.diffing.DiffVerdict`.

    Pure function of the verdict (no wall-clock, no paths beyond the
    labels already inside it), so identical runs render byte-identical
    text — a golden-file test holds this stable.
    """
    lines = [f"run diff: {verdict.run_a} vs {verdict.run_b}"]
    dataset_a, dataset_b = verdict.datasets
    lines.append(
        f"  datasets: {dataset_a}"
        if dataset_a == dataset_b
        else f"  datasets: {dataset_a} vs {dataset_b} (MISMATCH)"
    )
    if verdict.config_changes:
        lines.append("  config changes: " + ", ".join(verdict.config_changes))
    lines.append(
        "  partition: changed" if verdict.partition_changed else "  partition: identical"
    )

    if verdict.completed_regression:
        lines.append("  COMPLETED -> DEGRADED: run B did not finish cleanly")
    for kind in verdict.new_degradations:
        lines.append(f"  new degradation: {kind}")

    if verdict.quality_regressions or verdict.quality_improvements:
        lines.append("  quality deltas (B - A):")
        for entry in verdict.quality_regressions:
            lines.append(
                f"    REGRESSION {entry['class']} {entry['family']}.{entry['metric']}: "
                f"{entry['a']:.6f} -> {entry['b']:.6f} ({entry['delta']:+.6f})"
            )
        for entry in verdict.quality_improvements:
            lines.append(
                f"    improved   {entry['class']} {entry['family']}.{entry['metric']}: "
                f"{entry['a']:.6f} -> {entry['b']:.6f} ({entry['delta']:+.6f})"
            )
    else:
        lines.append("  quality: unchanged")

    if verdict.flips_total:
        shown = len(verdict.flipped_pairs)
        suffix = "" if shown == verdict.flips_total else f" (showing {shown})"
        lines.append(f"  flipped merge decisions: {verdict.flips_total}{suffix}")
        for flip in verdict.flipped_pairs:
            attribution = flip["attribution"]
            lines.append(
                f"    {_pair(flip['pair'])} [{flip['class']}] {flip['direction']}"
            )
            if attribution["channel"] is not None:
                score_a = attribution["channel_score_a"]
                score_b = attribution["channel_score_b"]
                lines.append(
                    f"      channel {attribution['channel']}: "
                    f"{0.0 if score_a is None else score_a:.6f} -> "
                    f"{0.0 if score_b is None else score_b:.6f}"
                )
            threshold_a = attribution["threshold_a"]
            threshold_b = attribution["threshold_b"]
            if None not in (threshold_a, threshold_b) and threshold_a != threshold_b:
                lines.append(f"      threshold: {threshold_a} -> {threshold_b}")
            chain = flip["root_cause"]
            if len(chain) > 1:
                steps = " => ".join(
                    f"{_pair(step['pair'])} ({step['trigger']})" for step in chain
                )
                lines.append(f"      root cause: {steps}")
    else:
        lines.append("  flipped merge decisions: none")

    if verdict.phase_regressions:
        for entry in verdict.phase_regressions:
            ratio = entry["ratio"]
            ratio_text = "" if ratio is None else f" ({ratio:.3f}x)"
            lines.append(
                f"  SLOWDOWN {entry['phase']}: {entry['a_seconds']:.3f}s -> "
                f"{entry['b_seconds']:.3f}s{ratio_text}"
            )

    lines.append("  verdict: REGRESSED" if verdict.regressed else "  verdict: clean")
    return "\n".join(lines)
