"""Human-readable renderers over telemetry snapshots.

The CLI's ``--stats`` output and degradation notices used to be
ad-hoc ``print(..., file=sys.stderr)`` calls; they are now pure
functions from engine state / metrics snapshots to text, so the same
data renders identically whether it comes from a live run, a metrics
JSON file, or a test. The ``--stats`` format is kept byte-stable with
the pre-observability output.
"""

from __future__ import annotations

__all__ = [
    "hit_rate",
    "render_stats",
    "render_degradations",
    "render_quarantine",
]


def hit_rate(hits: int, misses: int) -> str:
    """``"62.5% (5/8)"`` or ``"n/a"`` for an untouched cache."""
    total = hits + misses
    if not total:
        return "n/a"
    return f"{hits / total:.1%} ({hits}/{total})"


def render_stats(stats) -> str:
    """The ``--stats`` block from an :class:`~repro.core.engine.EngineStats`."""
    lines = [
        "engine stats:",
        f"  build {stats.build_seconds:.2f}s, iterate {stats.iterate_seconds:.2f}s "
        f"(workers={stats.parallel_workers})",
        f"  candidate_pairs={stats.candidate_pairs} pair_nodes={stats.pair_nodes} "
        f"value_nodes={stats.value_nodes} graph_nodes={stats.graph_nodes}",
        f"  recomputations={stats.recomputations} merges={stats.merges} "
        f"non_merges={stats.non_merges} fusions={stats.fusions}",
        "  cache effectiveness:",
        f"    values cache   {hit_rate(stats.values_cache_hits, stats.values_cache_misses)}",
        f"    contacts cache {hit_rate(stats.contacts_cache_hits, stats.contacts_cache_misses)}",
        f"    feature cache  {hit_rate(stats.feature_cache_hits, stats.feature_cache_misses)}",
        f"    pair-score memo {hit_rate(stats.pair_memo_hits, stats.pair_memo_misses)}, "
        f"prefilter skips {stats.prefilter_skips}",
    ]
    return "\n".join(lines)


def render_degradations(result) -> str:
    """The stderr notice for a degraded run (empty string when clean)."""
    if result.completed and not result.degradations:
        return ""
    lines = []
    if not result.completed:
        lines.append(f"run degraded: stop_reason={result.stop_reason}")
    for event in result.degradations:
        lines.append(f"  [{event.kind}] {event.detail}")
    return "\n".join(lines)


def render_quarantine(quarantined) -> str:
    """The lenient-ingestion notice (empty string when nothing was)."""
    if not quarantined:
        return ""
    return (
        f"quarantined {len(quarantined)} bad records (see quarantine.jsonl)"
    )
