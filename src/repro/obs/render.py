"""Human-readable renderers over telemetry snapshots.

The CLI's ``--stats`` output and degradation notices used to be
ad-hoc ``print(..., file=sys.stderr)`` calls; they are now pure
functions from engine state / metrics snapshots to text, so the same
data renders identically whether it comes from a live run, a metrics
JSON file, or a test. The ``--stats`` format is kept byte-stable with
the pre-observability output.
"""

from __future__ import annotations

__all__ = [
    "hit_rate",
    "render_stats",
    "render_degradations",
    "render_quarantine",
    "render_diff",
    "render_hotspots",
    "render_doctor",
]


def hit_rate(hits: int, misses: int) -> str:
    """``"62.5% (5/8)"`` or ``"n/a"`` for an untouched cache."""
    total = hits + misses
    if not total:
        return "n/a"
    return f"{hits / total:.1%} ({hits}/{total})"


def render_stats(stats) -> str:
    """The ``--stats`` block from an :class:`~repro.core.engine.EngineStats`."""
    supervision = {
        name: getattr(stats, name, 0)
        for name in ("task_retries", "task_timeouts", "pool_rebuilds", "pairs_poisoned")
    }
    lines = [
        "engine stats:",
        f"  build {stats.build_seconds:.2f}s, iterate {stats.iterate_seconds:.2f}s "
        f"(workers={stats.parallel_workers})",
    ]
    if any(supervision.values()):
        # Only surfaced when something actually degraded, so the clean
        # --stats block stays byte-identical to earlier generations.
        lines.append(
            "  supervision: retries={task_retries} timeouts={task_timeouts} "
            "pool_rebuilds={pool_rebuilds} pairs_poisoned={pairs_poisoned}".format(
                **supervision
            )
        )
    speculated = getattr(stats, "speculated_nodes", 0)
    if speculated:
        # Mirrors the supervision line: present only when the iterate
        # loop actually ran speculatively.
        hits = getattr(stats, "speculation_hits", 0)
        lines.append(
            f"  speculation: workers={getattr(stats, 'iterate_workers', 1)} "
            f"speculated={speculated} "
            f"hit rate {hit_rate(hits, speculated - hits)} "
            f"invalidated={getattr(stats, 'speculation_invalidated', 0)} "
            f"dropped={getattr(stats, 'speculation_dropped', 0)}"
        )
    lines += [
        f"  candidate_pairs={stats.candidate_pairs} pair_nodes={stats.pair_nodes} "
        f"value_nodes={stats.value_nodes} graph_nodes={stats.graph_nodes}",
        f"  recomputations={stats.recomputations} merges={stats.merges} "
        f"non_merges={stats.non_merges} fusions={stats.fusions}",
        "  cache effectiveness:",
        f"    values cache   {hit_rate(stats.values_cache_hits, stats.values_cache_misses)}",
        f"    contacts cache {hit_rate(stats.contacts_cache_hits, stats.contacts_cache_misses)}",
        f"    feature cache  {hit_rate(stats.feature_cache_hits, stats.feature_cache_misses)}",
        f"    pair-score memo {hit_rate(stats.pair_memo_hits, stats.pair_memo_misses)}, "
        f"prefilter skips {stats.prefilter_skips}",
    ]
    return "\n".join(lines)


def render_degradations(result) -> str:
    """The stderr notice for a degraded run (empty string when clean)."""
    if result.completed and not result.degradations:
        return ""
    lines = []
    if not result.completed:
        lines.append(f"run degraded: stop_reason={result.stop_reason}")
    for event in result.degradations:
        lines.append(f"  [{event.kind}] {event.detail}")
    return "\n".join(lines)


def render_quarantine(quarantined) -> str:
    """The lenient-ingestion notice (empty string when nothing was)."""
    if not quarantined:
        return ""
    return (
        f"quarantined {len(quarantined)} bad records (see quarantine.jsonl)"
    )


def _pair(pair: list) -> str:
    return f"{pair[0]} <-> {pair[1]}"


def render_diff(verdict) -> str:
    """``repro diff`` text from a :class:`~repro.obs.diffing.DiffVerdict`.

    Pure function of the verdict (no wall-clock, no paths beyond the
    labels already inside it), so identical runs render byte-identical
    text — a golden-file test holds this stable.
    """
    lines = [f"run diff: {verdict.run_a} vs {verdict.run_b}"]
    dataset_a, dataset_b = verdict.datasets
    lines.append(
        f"  datasets: {dataset_a}"
        if dataset_a == dataset_b
        else f"  datasets: {dataset_a} vs {dataset_b} (MISMATCH)"
    )
    if verdict.config_changes:
        lines.append("  config changes: " + ", ".join(verdict.config_changes))
    lines.append(
        "  partition: changed" if verdict.partition_changed else "  partition: identical"
    )

    if verdict.completed_regression:
        lines.append("  COMPLETED -> DEGRADED: run B did not finish cleanly")
    for kind in verdict.new_degradations:
        lines.append(f"  new degradation: {kind}")

    if verdict.quality_regressions or verdict.quality_improvements:
        lines.append("  quality deltas (B - A):")
        for entry in verdict.quality_regressions:
            lines.append(
                f"    REGRESSION {entry['class']} {entry['family']}.{entry['metric']}: "
                f"{entry['a']:.6f} -> {entry['b']:.6f} ({entry['delta']:+.6f})"
            )
        for entry in verdict.quality_improvements:
            lines.append(
                f"    improved   {entry['class']} {entry['family']}.{entry['metric']}: "
                f"{entry['a']:.6f} -> {entry['b']:.6f} ({entry['delta']:+.6f})"
            )
    else:
        lines.append("  quality: unchanged")

    if verdict.flips_total:
        shown = len(verdict.flipped_pairs)
        suffix = "" if shown == verdict.flips_total else f" (showing {shown})"
        lines.append(f"  flipped merge decisions: {verdict.flips_total}{suffix}")
        for flip in verdict.flipped_pairs:
            attribution = flip["attribution"]
            lines.append(
                f"    {_pair(flip['pair'])} [{flip['class']}] {flip['direction']}"
            )
            if attribution["channel"] is not None:
                score_a = attribution["channel_score_a"]
                score_b = attribution["channel_score_b"]
                lines.append(
                    f"      channel {attribution['channel']}: "
                    f"{0.0 if score_a is None else score_a:.6f} -> "
                    f"{0.0 if score_b is None else score_b:.6f}"
                )
            threshold_a = attribution["threshold_a"]
            threshold_b = attribution["threshold_b"]
            if None not in (threshold_a, threshold_b) and threshold_a != threshold_b:
                lines.append(f"      threshold: {threshold_a} -> {threshold_b}")
            chain = flip["root_cause"]
            if len(chain) > 1:
                steps = " => ".join(
                    f"{_pair(step['pair'])} ({step['trigger']})" for step in chain
                )
                lines.append(f"      root cause: {steps}")
    else:
        lines.append("  flipped merge decisions: none")

    if verdict.phase_regressions:
        for entry in verdict.phase_regressions:
            ratio = entry["ratio"]
            ratio_text = "" if ratio is None else f" ({ratio:.3f}x)"
            lines.append(
                f"  SLOWDOWN {entry['phase']}: {entry['a_seconds']:.3f}s -> "
                f"{entry['b_seconds']:.3f}s{ratio_text}"
            )

    lines.append("  verdict: REGRESSED" if verdict.regressed else "  verdict: clean")
    return "\n".join(lines)


#: degradation kinds produced by RunGuard trips.
_GUARD_KINDS = {"deadline", "budget", "queue_ceiling", "graph_ceiling"}


def render_hotspots(summary: dict) -> str:
    """``repro hotspots`` text from a manifest's hotspot summary.

    Pure function of the recorded summary (no wall-clock, no paths), so
    the same run dir always renders byte-identical text.
    """
    lines = [
        "hotspot attribution "
        f"(sketch capacity {summary.get('sketch_capacity', 0)}, "
        f"{summary.get('pair_updates', 0)} pair timings, "
        f"error bound {summary.get('pair_seconds_error_bound', 0.0):.6f}s):"
    ]
    skew = summary.get("skew") or {}
    if skew:
        lines.append("  blocking skew:")
        for class_name in sorted(skew):
            stats = skew[class_name]
            if not stats.get("blocks"):
                lines.append(f"    {class_name}: no blocks recorded")
                continue
            lines.append(
                f"    {class_name}: {stats['blocks']} blocks, "
                f"gini {stats['gini']:.4f}, max {stats['max_block']} "
                f"({stats['max_block_size']} refs, "
                f"{stats['max_pair_share']:.1%} of pairs), "
                f"oversized {stats['oversized']}"
            )
    top_blocks = summary.get("top_blocks") or []
    if top_blocks:
        lines.append("  top blocks by candidate pairs:")
        for entry in top_blocks:
            lines.append(f"    {entry['block']}  {entry['candidate_pairs']}")
    top_pairs = summary.get("top_pairs") or []
    if top_pairs:
        lines.append("  top pairs by recompute seconds:")
        for entry in top_pairs:
            lines.append(
                f"    {entry['pair']}  {entry['seconds']:.6f}s "
                f"x{entry['recomputations']}"
            )
    channels = summary.get("channels") or []
    if channels:
        lines.append("  channel comparisons:")
        for entry in channels:
            lines.append(f"    {entry['channel']}  {entry['comparisons']}")
    if len(lines) == 1:
        lines.append("  (nothing recorded)")
    return "\n".join(lines)


def _doctor_hints(bundle: dict | None, manifest: dict | None) -> list:
    """Deterministic, actionable hints keyed on what the run recorded."""
    kinds = set()
    if bundle is not None:
        kinds.update(
            entry.get("kind") for entry in bundle["rings"]["degradations"]
        )
    if manifest is not None:
        kinds.update(
            event.get("kind") for event in manifest.get("degradations", [])
        )
    hints = []
    if bundle is not None and bundle.get("exception") is not None:
        hints.append(
            "an unhandled exception ended the run; the decisions ring in "
            "crash_bundle.json shows the last work before it"
        )
    if bundle is not None and bundle["worker_lanes"]["deaths"]:
        hints.append(
            "worker processes died under supervision; rerun with --workers 1 "
            "to isolate the fault, and check memory limits"
        )
    if kinds & _GUARD_KINDS:
        hints.append(
            "a run guard tripped; raise --deadline / --max-recomputations "
            "or reduce the dataset scale"
        )
    if "pair_poisoned" in kinds:
        hints.append(
            "pairs were quarantined as poisoned; inspect poisoned_pairs.jsonl"
        )
    if kinds & {"parallel_fallback", "pool_rebuild"}:
        hints.append(
            "parallel scoring degraded (pool rebuilt or serial fallback); "
            "results are unchanged but slower"
        )
    if kinds & {"speculation_fallback", "speculation_dropped"}:
        hints.append(
            "speculative iterate degraded; results are unchanged but slower"
        )
    hotspots = (manifest.get("execution") or {}).get("hotspots") if manifest else None
    if hotspots:
        skewed = sorted(
            class_name
            for class_name, stats in (hotspots.get("skew") or {}).items()
            if stats.get("max_pair_share", 0.0) >= 0.5 and stats.get("blocks", 0) > 1
        )
        if skewed:
            hints.append(
                "blocking is skew-dominated for " + ", ".join(skewed)
                + "; consider --max-block-size or finer blocking keys"
            )
    return hints


def render_doctor(bundle: dict | None, manifest: dict | None = None) -> str:
    """``repro doctor`` post-mortem text.

    *bundle* is a loaded ``crash_bundle.json`` (or ``None`` when the
    run left none), *manifest* the run's ``run.json`` when one was
    written.  Pure function of both, so a given run dir always renders
    byte-identical output; the matching exit-code policy lives in the
    CLI (0 clean, 1 bundle/degraded, 2 nothing to diagnose).
    """
    if bundle is None and manifest is None:
        return (
            "doctor: nothing to diagnose "
            "(no crash_bundle.json or run.json found)\n  verdict: unknown"
        )
    lines = []
    if bundle is None:
        run = manifest.get("run", {})
        degradations = manifest.get("degradations", [])
        if run.get("completed", False) and not degradations:
            lines.append(
                f"doctor: clean run ({run.get('stop_reason')}; no crash bundle)"
            )
            lines.append("  verdict: clean")
            return "\n".join(lines)
        lines.append("doctor: degraded run (no crash bundle recorded)")
        if run.get("stop_reason"):
            lines.append(f"  stop_reason: {run['stop_reason']}")
        for event in degradations:
            lines.append(f"    [{event.get('kind')}] {event.get('detail', '')}")
        for hint in _doctor_hints(None, manifest):
            lines.append(f"  hint: {hint}")
        lines.append("  verdict: degraded")
        return "\n".join(lines)

    lines.append(f"doctor: {bundle['reason']}")
    if bundle.get("phase"):
        lines.append(f"  phase: {bundle['phase']}")
    if bundle.get("stop_reason"):
        lines.append(f"  stop_reason: {bundle['stop_reason']}")
    exception = bundle.get("exception")
    if exception is not None:
        lines.append(f"  exception: {exception['type']}: {exception['message']}")
    rings = bundle["rings"]
    degradations = rings["degradations"]
    if degradations:
        lines.append(f"  degradations ({len(degradations)} recorded):")
        for entry in degradations[-5:]:
            lines.append(f"    [{entry.get('kind')}] {entry.get('detail', '')}")
    decisions = rings["decisions"]
    if decisions:
        shown = decisions[-5:]
        lines.append(
            f"  last decisions ({len(shown)} of {len(decisions)} retained):"
        )
        for entry in shown:
            score = entry.get("score")
            score_text = "n/a" if score is None else f"{score:.4f}"
            lines.append(
                f"    {_pair(entry['pair'])} [{entry.get('class')}] "
                f"{entry.get('decision')} score={score_text}"
            )
    chunks = rings["chunks"]
    if chunks:
        slowest = max(chunks, key=lambda entry: (entry["seconds"], entry["seq"]))
        lines.append(
            f"  chunks: {len(chunks)} retained, slowest "
            f"{slowest['lane']} {slowest['seconds']:.3f}s"
        )
    lanes = bundle["worker_lanes"]
    if lanes["lanes"] or lanes["deaths"]:
        lines.append(
            f"  worker lanes: {len(lanes['lanes'])} with retained rings, "
            f"{len(lanes['deaths'])} death(s)"
        )
        for death in lanes["deaths"][-5:]:
            lines.append(
                f"    died: {death.get('lane', 'worker')} "
                f"pid={death.get('pid')}: {death.get('reason')}"
            )
    hotspots = (manifest.get("execution") or {}).get("hotspots") if manifest else None
    if hotspots and hotspots.get("top_blocks"):
        lines.append("  hot blocks:")
        for entry in hotspots["top_blocks"][:3]:
            lines.append(
                f"    {entry['block']}  {entry['candidate_pairs']} candidate pairs"
            )
    if hotspots and hotspots.get("top_pairs"):
        lines.append("  suspect pairs (most recompute time):")
        for entry in hotspots["top_pairs"][:3]:
            lines.append(
                f"    {entry['pair']}  {entry['seconds']:.6f}s "
                f"x{entry['recomputations']}"
            )
    for hint in _doctor_hints(bundle, manifest):
        lines.append(f"  hint: {hint}")
    lines.append(
        "  verdict: crashed" if exception is not None else "  verdict: degraded"
    )
    return "\n".join(lines)
