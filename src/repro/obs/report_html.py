"""Self-contained HTML run report: ``repro report <run_dir>``.

One file, stdlib only, zero external assets — every style rule is an
inline ``<style>`` block and every chart is inline SVG, so the report
can be attached to a CI run or mailed around and still render offline.

Charts follow the house data-viz rules: each chart carries exactly one
y-axis (precision/recall share the [0, 1] scale on one chart; merge
counts get their own chart rather than a second axis), series colors
come from the validated categorical palette in fixed slot order with
light/dark variants behind CSS custom properties, every multi-series
chart has a legend plus direct end-of-line labels, and every chart is
backed by a plain table so no value is readable only through color.
Point markers carry ``<title>`` tooltips (the HTML-native hover layer
a static file can ship).
"""

from __future__ import annotations

import html
import json
from pathlib import Path

from .manifest import load_manifest, resolve_artifact
from .profile import parse_folded, top_frames_from_folded
from .schemas import trace_process_names

__all__ = ["render_report", "write_report"]

#: most lanes drawn in the utilization strip; iterate-heavy runs fork
#: a child per chunk and hundreds of two-span rows help nobody.
_MAX_LANES = 16

#: validated categorical palette (slots 1-3 pass all-pairs in both
#: modes): blue, orange, aqua; light / dark steps of the same hues.
_STYLE = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
}
@media (prefers-color-scheme: dark) {
  :root:not([data-theme="light"]) {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
  }
}
:root[data-theme="dark"] {
  color-scheme: dark;
  --surface-1: #1a1a19; --page: #0d0d0d;
  --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #898781;
  --grid: #2c2c2a; --baseline: #383835;
  --border: rgba(255,255,255,0.10);
  --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif; font-size: 14px;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.subtitle { color: var(--text-secondary); margin-bottom: 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 132px;
}
.tile .value { font-size: 22px; font-weight: 600; }
.tile .label { color: var(--text-muted); font-size: 12px; margin-top: 2px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px; margin-top: 8px;
}
table { border-collapse: collapse; width: 100%; }
th, td {
  text-align: left; padding: 5px 10px; border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
th { color: var(--text-muted); font-weight: 500; font-size: 12px; }
td.num, th.num { text-align: right; }
.legend { display: flex; gap: 16px; margin: 4px 0 8px; font-size: 12px;
  color: var(--text-secondary); }
.legend .swatch {
  display: inline-block; width: 10px; height: 10px; border-radius: 2px;
  margin-right: 5px; vertical-align: -1px;
}
.note { color: var(--text-muted); font-size: 12px; }
svg text { font-family: inherit; }
details summary { cursor: pointer; color: var(--text-secondary); font-size: 12px;
  margin-top: 8px; }
"""

_CHART_W, _CHART_H = 640, 220
_PAD_L, _PAD_R, _PAD_T, _PAD_B = 46, 70, 12, 26


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value, digits: int = 3) -> str:
    if value is None:
        return "–"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return f"{value:,}" if isinstance(value, int) else str(value)


def _scale(value, lo, hi, out_lo, out_hi):
    if hi == lo:
        return (out_lo + out_hi) / 2.0
    return out_lo + (value - lo) * (out_hi - out_lo) / (hi - lo)


def _line_chart(samples, series, *, y_max=None, y_fmt="{:.2f}"):
    """Inline-SVG line chart; *series* is ``[(label, css_var, key)]``.

    One y-axis per chart by construction — callers split measures of
    different scale into separate charts.
    """
    xs = [sample["recomputations"] for sample in samples]
    x_lo, x_hi = min(xs), max(xs)
    values = [sample[key] for _, _, key in series for sample in samples]
    top = y_max if y_max is not None else (max(values) or 1)
    plot_r = _CHART_W - _PAD_R
    plot_b = _CHART_H - _PAD_B

    parts = [
        f'<svg viewBox="0 0 {_CHART_W} {_CHART_H}" role="img" '
        f'style="width:100%;max-width:{_CHART_W}px;height:auto;display:block">'
    ]
    # hairline grid + y labels at 0 / mid / top
    for fraction in (0.0, 0.5, 1.0):
        y = _scale(fraction * top, 0, top, plot_b, _PAD_T)
        parts.append(
            f'<line x1="{_PAD_L}" y1="{y:.1f}" x2="{plot_r}" y2="{y:.1f}" '
            f'stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_PAD_L - 6}" y="{y + 4:.1f}" text-anchor="end" '
            f'font-size="11" fill="var(--text-muted)">'
            f"{_esc(y_fmt.format(fraction * top))}</text>"
        )
    # baseline + x extent labels
    parts.append(
        f'<line x1="{_PAD_L}" y1="{plot_b}" x2="{plot_r}" y2="{plot_b}" '
        f'stroke="var(--baseline)" stroke-width="1"/>'
    )
    for x_value, anchor in ((x_lo, "start"), (x_hi, "end")):
        x = _scale(x_value, x_lo, x_hi, _PAD_L, plot_r)
        parts.append(
            f'<text x="{x:.1f}" y="{_CHART_H - 8}" text-anchor="{anchor}" '
            f'font-size="11" fill="var(--text-muted)">{x_value:,}</text>'
        )
    # 2px polylines with >=4px hoverable markers and direct end labels
    for label, css_var, key in series:
        points = [
            (
                _scale(sample["recomputations"], x_lo, x_hi, _PAD_L, plot_r),
                _scale(sample[key], 0, top, plot_b, _PAD_T),
            )
            for sample in samples
        ]
        path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        parts.append(
            f'<polyline points="{path}" fill="none" stroke="var({css_var})" '
            f'stroke-width="2" stroke-linejoin="round"/>'
        )
        for (x, y), sample in zip(points, samples):
            tooltip = (
                f"{label} {y_fmt.format(sample[key])} at "
                f"{sample['recomputations']:,} recomputations"
            )
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" fill="var({css_var})" '
                f'stroke="var(--surface-1)" stroke-width="2">'
                f"<title>{_esc(tooltip)}</title></circle>"
            )
        end_x, end_y = points[-1]
        parts.append(
            f'<text x="{end_x + 8:.1f}" y="{end_y + 4:.1f}" font-size="11" '
            f'fill="var(--text-secondary)">{_esc(label)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _legend(series) -> str:
    items = "".join(
        f'<span><span class="swatch" style="background:var({css_var})"></span>'
        f"{_esc(label)}</span>"
        for label, css_var, _ in series
    )
    return f'<div class="legend">{items}</div>'


def _convergence_table(samples) -> str:
    rows = "".join(
        f"<tr><td class='num'>{s['recomputations']:,}</td>"
        f"<td class='num'>{s['merges']:,}</td>"
        f"<td class='num'>{s['queued']:,}</td>"
        f"<td class='num'>{s['precision']:.4f}</td>"
        f"<td class='num'>{s['recall']:.4f}</td></tr>"
        for s in samples
    )
    return (
        "<details><summary>Data table</summary><table>"
        "<tr><th class='num'>recomputations</th><th class='num'>merges</th>"
        "<th class='num'>queued</th><th class='num'>precision</th>"
        "<th class='num'>recall</th></tr>"
        f"{rows}</table></details>"
    )


def _convergence_section(samples) -> str:
    if len(samples) < 2:
        return (
            '<div class="card"><p class="note">Fewer than two convergence '
            "samples were recorded (short run or sampling disabled); no "
            "curve to draw.</p>"
            + (_convergence_table(samples) if samples else "")
            + "</div>"
        )
    quality_series = [
        ("precision", "--series-1", "precision"),
        ("recall", "--series-2", "recall"),
    ]
    merge_series = [("merges", "--series-3", "merges")]
    return (
        '<div class="card">'
        + _legend(quality_series)
        + _line_chart(samples, quality_series, y_max=1.0)
        + '<p class="note">Precision / recall vs gold, sampled by recomputation '
        "count. Merge volume is charted separately below (one axis per chart)."
        "</p>"
        + _line_chart(
            samples, merge_series, y_fmt="{:,.0f}"
        )
        + '<p class="note">Cumulative merge decisions over the same samples.</p>'
        + _convergence_table(samples)
        + "</div>"
    )


def _waterfall(phase_seconds: dict) -> str:
    phases = [(name, float(seconds)) for name, seconds in phase_seconds.items()]
    if not phases:
        return '<div class="card"><p class="note">No phase timings recorded (run without <code>--trace</code>).</p></div>'
    total = sum(seconds for _, seconds in phases) or 1.0
    bar_h, gap, label_w = 22, 8, 110
    width = 640
    height = len(phases) * (bar_h + gap) + 24
    plot_w = width - label_w - 90
    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'style="width:100%;max-width:{width}px;height:auto;display:block">'
    ]
    offset = 0.0
    for index, (name, seconds) in enumerate(phases):
        y = index * (bar_h + gap) + 8
        x = label_w + plot_w * (offset / total)
        bar_w = max(plot_w * (seconds / total), 2)
        parts.append(
            f'<text x="{label_w - 8}" y="{y + bar_h - 7}" text-anchor="end" '
            f'font-size="12" fill="var(--text-secondary)">{_esc(name)}</text>'
        )
        parts.append(
            f'<rect x="{x:.1f}" y="{y}" width="{bar_w:.1f}" height="{bar_h}" '
            f'rx="4" fill="var(--series-1)">'
            f"<title>{_esc(name)}: {seconds:.3f}s</title></rect>"
        )
        parts.append(
            f'<text x="{x + bar_w + 6:.1f}" y="{y + bar_h - 7}" font-size="11" '
            f'fill="var(--text-muted)">{seconds:.3f}s</text>'
        )
        offset += seconds
    parts.append("</svg>")
    return (
        '<div class="card">'
        + "".join(parts)
        + '<p class="note">Each phase starts where the previous ended '
        "(waterfall); bar length is wall-clock share.</p></div>"
    )


def _lane_rows(trace: dict) -> list[dict]:
    """Per-pid span intervals + busy time from a Chrome trace object."""
    names = trace_process_names(trace)
    spans_by_pid: dict = {}
    for event in trace.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        spans_by_pid.setdefault(event["pid"], []).append(
            (float(event["ts"]), float(event["dur"]))
        )
    lanes = []
    for pid, spans in spans_by_pid.items():
        busy = sum(duration for _, duration in spans)
        lanes.append(
            {
                "pid": pid,
                "name": names.get(pid, f"pid {pid}"),
                "spans": sorted(spans),
                "busy_us": busy,
            }
        )
    # engine lane first (it owns the earliest span), then busiest workers.
    lanes.sort(key=lambda lane: (-lane["busy_us"], lane["pid"]))
    return lanes


def _lanes_section(trace: dict | None) -> str:
    if trace is None:
        return (
            '<div class="card"><p class="note">No trace recorded for this run '
            "— worker-lane strip unavailable. Re-run with <code>--trace</code> "
            "(or <code>--run-dir</code>, which records one by default).</p></div>"
        )
    lanes = _lane_rows(trace)
    if not lanes:
        return (
            '<div class="card"><p class="note">The trace holds no timed spans '
            "— nothing to draw.</p></div>"
        )
    t_lo = min(span[0] for lane in lanes for span in lane["spans"])
    t_hi = max(span[0] + span[1] for lane in lanes for span in lane["spans"])
    total_us = (t_hi - t_lo) or 1.0
    shown = lanes[:_MAX_LANES]
    bar_h, gap, label_w = 16, 6, 190
    width = 640
    height = len(shown) * (bar_h + gap) + 18
    plot_w = width - label_w - 70
    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'style="width:100%;max-width:{width}px;height:auto;display:block">'
    ]
    for index, lane in enumerate(shown):
        y = index * (bar_h + gap) + 6
        utilization = lane["busy_us"] / total_us
        label = f"{lane['name']} · {lane['pid']}"
        parts.append(
            f'<text x="{label_w - 8}" y="{y + bar_h - 4}" text-anchor="end" '
            f'font-size="11" fill="var(--text-secondary)">{_esc(label)}</text>'
        )
        # faint track for the run's full extent, busy segments on top
        parts.append(
            f'<rect x="{label_w}" y="{y}" width="{plot_w}" height="{bar_h}" '
            f'rx="3" fill="var(--grid)"/>'
        )
        color = "--series-1" if index == 0 else "--series-2"
        for start, duration in lane["spans"]:
            x = label_w + plot_w * ((start - t_lo) / total_us)
            seg_w = max(plot_w * (duration / total_us), 1.0)
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{seg_w:.1f}" '
                f'height="{bar_h}" rx="2" fill="var({color})">'
                f"<title>{_esc(lane['name'])}: {duration / 1e6:.4f}s at "
                f"+{(start - t_lo) / 1e6:.4f}s</title></rect>"
            )
        parts.append(
            f'<text x="{label_w + plot_w + 6}" y="{y + bar_h - 4}" '
            f'font-size="11" fill="var(--text-muted)">{utilization:.0%}</text>'
        )
    parts.append("</svg>")
    rows = "".join(
        f"<tr><td>{_esc(lane['name'])}</td><td class='num'>{lane['pid']}</td>"
        f"<td class='num'>{len(lane['spans']):,}</td>"
        f"<td class='num'>{lane['busy_us'] / 1e6:.4f}</td>"
        f"<td class='num'>{lane['busy_us'] / total_us:.1%}</td></tr>"
        for lane in lanes
    )
    hidden = len(lanes) - len(shown)
    hidden_note = (
        f" {hidden} additional lane{'s' if hidden != 1 else ''} are in the "
        "table but not drawn." if hidden > 0 else ""
    )
    return (
        '<div class="card">'
        + "".join(parts)
        + '<p class="note">One row per OS process (pid) in the trace; filled '
        "segments are recorded spans, the percentage is busy time over the "
        f"traced extent.{_esc(hidden_note)}</p>"
        "<details><summary>Data table</summary><table>"
        "<tr><th>lane</th><th class='num'>pid</th><th class='num'>spans</th>"
        "<th class='num'>busy s</th><th class='num'>utilization</th></tr>"
        f"{rows}</table></details></div>"
    )


def _profile_section(folded: dict | None, top_n: int = 12) -> str:
    if not folded:
        return (
            "<h2>Profiler hot frames</h2>"
            '<div class="card"><p class="note">No profile recorded for this '
            "run — hot-frame table unavailable. Re-run with "
            "<code>--profile</code> to sample wall-clock stacks.</p></div>"
        )
    frames = top_frames_from_folded(folded, top_n)
    total_samples = sum(folded.values()) or 1
    rows = "".join(
        f"<tr><td><code>{_esc(frame['frame'])}</code></td>"
        f"<td class='num'>{frame['self']:,}</td>"
        f"<td class='num'>{frame['self'] / total_samples:.1%}</td>"
        f"<td class='num'>{frame['total']:,}</td>"
        f"<td class='num'>{frame['total'] / total_samples:.1%}</td></tr>"
        for frame in frames
    )
    return (
        "<h2>Profiler hot frames</h2>"
        '<div class="card"><table>'
        "<tr><th>frame</th><th class='num'>self</th><th class='num'>self %</th>"
        "<th class='num'>total</th><th class='num'>total %</th></tr>"
        + rows
        + f'</table><p class="note">Top {len(frames)} frames from '
        f"{total_samples:,} wall-clock samples (<code>--profile</code>); "
        '"self" counts samples with the frame on top of the stack, "total" '
        "samples with it anywhere on the stack. Load "
        "<code>profile.speedscope.json</code> in speedscope for the full "
        "flamegraph.</p></div>"
    )


def _hotspots_section(hotspots: dict | None) -> str:
    if not hotspots:
        return (
            '<div class="card"><p class="note">No hotspot attribution in this '
            "manifest (recorded by runs from this version onward); nothing to "
            "rank.</p></div>"
        )
    parts = ['<div class="card">']
    skew = hotspots.get("skew") or {}
    if skew:
        skew_rows = "".join(
            f"<tr><td>{_esc(class_name)}</td>"
            f"<td class='num'>{entry['blocks']:,}</td>"
            f"<td class='num'>{entry['gini']:.4f}</td>"
            f"<td>{_esc(entry['max_block'])}</td>"
            f"<td class='num'>{entry['max_block_size']:,}</td>"
            f"<td class='num'>{entry['max_pair_share']:.1%}</td>"
            f"<td class='num'>{entry['oversized']:,}</td></tr>"
            for class_name, entry in sorted(skew.items())
        )
        parts.append(
            "<table><tr><th>class</th><th class='num'>blocks</th>"
            "<th class='num'>Gini</th><th>largest block</th>"
            "<th class='num'>refs</th><th class='num'>pair share</th>"
            "<th class='num'>oversized</th></tr>"
            + skew_rows
            + '</table><p class="note">Blocking skew per class: Gini over '
            "block sizes and the largest block's share of all candidate "
            "pairs.</p>"
        )
    block_rows = "".join(
        f"<tr><td><code>{_esc(entry['block'])}</code></td>"
        f"<td class='num'>{entry['candidate_pairs']:,.0f}</td>"
        f"<td class='num'>{entry['max_error']:,.0f}</td></tr>"
        for entry in hotspots.get("top_blocks") or []
    )
    if block_rows:
        parts.append(
            "<table><tr><th>block</th><th class='num'>candidate pairs</th>"
            "<th class='num'>max error</th></tr>" + block_rows + "</table>"
        )
    pair_rows = "".join(
        f"<tr><td>{_esc(entry['pair'])}</td>"
        f"<td class='num'>{entry['seconds']:.4f}</td>"
        f"<td class='num'>{entry['recomputations']:,}</td></tr>"
        for entry in hotspots.get("top_pairs") or []
    )
    if pair_rows:
        parts.append(
            "<table><tr><th>pair</th><th class='num'>seconds</th>"
            "<th class='num'>recomputations</th></tr>"
            + pair_rows
            + '</table><p class="note">Heaviest reference pairs by attributed '
            "recompute wall time (Space-Saving sketch; counts are upper "
            "bounds within the stated error).</p>"
        )
    if len(parts) == 1:
        parts.append(
            '<p class="note">The sketch recorded no blocks or pairs '
            "(empty run).</p>"
        )
    parts.append("</div>")
    return "".join(parts)


def _poison_section(poisoned: list[dict] | None) -> str:
    if poisoned is None:
        return (
            '<div class="card"><p class="note">No poisoned-pair log recorded '
            "for this run — quarantine table unavailable. Parallel builds "
            "(<code>--workers N</code> with <code>--run-dir</code>) record "
            "one automatically.</p></div>"
        )
    if not poisoned:
        return (
            '<div class="card"><p class="note">Poisoned-pair log recorded and '
            "empty: no pair crashed its worker.</p></div>"
        )
    rows = "".join(
        f"<tr><td>{_esc(entry['pair'][0])} &harr; {_esc(entry['pair'][1])}</td>"
        f"<td>{_esc(entry.get('class', '?'))}</td>"
        f"<td>{_esc(entry.get('reason', '?'))}</td></tr>"
        for entry in poisoned[:20]
    )
    more = len(poisoned) - 20
    more_note = f" Showing 20 of {len(poisoned)}." if more > 0 else ""
    return (
        '<div class="card"><table>'
        "<tr><th>pair</th><th>class</th><th>reason</th></tr>"
        + rows
        + f'</table><p class="note">Pairs quarantined after repeatedly '
        f"killing build workers.{_esc(more_note)}</p></div>"
    )


def _quality_table(quality: dict) -> str:
    if not quality:
        return '<div class="card"><p class="note">No gold standard — quality table unavailable.</p></div>'
    rows = []
    for class_name in sorted(quality):
        scores = quality[class_name]
        pw, b3 = scores["pairwise"], scores["bcubed"]
        rows.append(
            f"<tr><td>{_esc(class_name)}</td>"
            f"<td class='num'>{pw['precision']:.3f}</td>"
            f"<td class='num'>{pw['recall']:.3f}</td>"
            f"<td class='num'>{pw['f1']:.3f}</td>"
            f"<td class='num'>{b3['precision']:.3f}</td>"
            f"<td class='num'>{b3['recall']:.3f}</td>"
            f"<td class='num'>{b3['f1']:.3f}</td>"
            f"<td class='num'>{scores['partitions']:,}</td></tr>"
        )
    return (
        '<div class="card"><table>'
        "<tr><th>class</th><th class='num'>pair P</th><th class='num'>pair R</th>"
        "<th class='num'>pair F1</th><th class='num'>B³ P</th>"
        "<th class='num'>B³ R</th><th class='num'>B³ F1</th>"
        "<th class='num'>partitions</th></tr>"
        + "".join(rows)
        + "</table></div>"
    )


def _contested_table(decisions) -> str:
    if not decisions:
        return (
            '<div class="card"><p class="note">No provenance log found for this '
            "run — contested-decision table unavailable. Re-run with "
            "<code>--run-dir</code> (provenance is recorded by default) or "
            "<code>--provenance</code>.</p></div>"
        )
    by_pair: dict = {}
    for record in decisions:
        by_pair.setdefault(record.pair, []).append(record)
    contested = []
    for pair, records in by_pair.items():
        final = records[-1]
        margin = abs(final.score - final.threshold)
        contested.append((margin, -len(records), pair, final))
    contested.sort(key=lambda item: (item[0], item[1], item[2]))
    rows = []
    for margin, negative_count, pair, final in contested[:15]:
        channels = ", ".join(
            f"{name}={value:.3f}" for name, value in sorted(final.channels.items())
        )
        rows.append(
            f"<tr><td>{_esc(pair[0])} &harr; {_esc(pair[1])}</td>"
            f"<td>{_esc(final.class_name)}</td>"
            f"<td>{_esc(final.decision)}</td>"
            f"<td class='num'>{final.score:.4f}</td>"
            f"<td class='num'>{final.threshold:.2f}</td>"
            f"<td class='num'>{margin:.4f}</td>"
            f"<td class='num'>{-negative_count}</td>"
            f"<td>{_esc(final.trigger)}</td>"
            f"<td class='num'>{_esc(channels)}</td></tr>"
        )
    return (
        '<div class="card"><table>'
        "<tr><th>pair</th><th>class</th><th>final decision</th>"
        "<th class='num'>score</th><th class='num'>threshold</th>"
        "<th class='num'>margin</th><th class='num'>decisions</th>"
        "<th>trigger</th><th class='num'>channels</th></tr>"
        + "".join(rows)
        + '</table><p class="note">Pairs ranked by how close their final score '
        "sat to the merge threshold (smallest margin first), then by how often "
        "the engine revisited them.</p></div>"
    )


def _tiles(manifest: dict) -> str:
    run = manifest["run"]
    counters = manifest["counters"]
    execution = manifest["execution"]
    partition = manifest["partition"]
    tiles = [
        ("references", f"{run['references']:,}"),
        ("partitions", f"{sum(partition['per_class'].values()):,}"),
        ("merges", f"{counters['merges']:,}"),
        ("non-merges", f"{counters['non_merges']:,}"),
        ("recomputations", f"{counters['recomputations']:,}"),
        ("build", f"{execution['build_seconds']:.2f}s"),
        ("iterate", f"{execution['iterate_seconds']:.2f}s"),
        ("quarantined", f"{run['quarantined']:,}"),
    ]
    rates = execution.get("cache_hit_rates") or {}
    memo = rates.get("pair_memo")
    if memo is not None:
        tiles.append(("pair-memo hits", f"{memo:.1%}"))
    return '<div class="tiles">' + "".join(
        f'<div class="tile"><div class="value">{_esc(value)}</div>'
        f'<div class="label">{_esc(label)}</div></div>'
        for label, value in tiles
    ) + "</div>"


def render_report(
    manifest: dict,
    decisions=None,
    *,
    trace=None,
    profile_folded=None,
    poisoned=None,
) -> str:
    """The full HTML document for one run manifest.

    *trace* is a parsed Chrome trace object (for the worker-lane strip),
    *profile_folded* a parsed folded-stack mapping (for the hot-frame
    table), and *poisoned* the parsed poisoned-pair log entries. All are
    optional; every section renders an explicit "not recorded"
    placeholder when its artifact is absent rather than vanishing.
    """
    run = manifest["run"]
    status = "completed" if run["completed"] else f"degraded ({run.get('stop_reason')})"
    degradations = manifest.get("degradations", [])
    degradation_html = ""
    if degradations:
        items = "".join(
            f"<li><code>{_esc(event.get('kind'))}</code> "
            f"{_esc(event.get('detail', ''))}</li>"
            for event in degradations
        )
        degradation_html = (
            f'<h2>Degradations</h2><div class="card"><ul>{items}</ul></div>'
        )
    subtitle = (
        f"dataset <strong>{_esc(run['dataset'])}</strong> · algorithm "
        f"{_esc(run['algorithm'])} · {status} · partition digest "
        f"<code>{_esc(manifest['partition']['digest'][:19])}…</code>"
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro run report · {_esc(run['dataset'])}</title>
<style>{_STYLE}</style>
</head>
<body>
<h1>Run report · {_esc(run['dataset'])}</h1>
<p class="subtitle">{subtitle}</p>
{_tiles(manifest)}
<h2>Quality vs gold</h2>
{_quality_table(manifest.get('quality', {}))}
<h2>Convergence</h2>
{_convergence_section(manifest.get('convergence', []))}
<h2>Phase timings</h2>
{_waterfall(manifest['execution'].get('phase_seconds') or {
    'build': manifest['execution']['build_seconds'],
    'iterate': manifest['execution']['iterate_seconds'],
})}
<h2>Worker lanes</h2>
{_lanes_section(trace)}
{_profile_section(profile_folded)}
<h2>Workload hotspots</h2>
{_hotspots_section(manifest['execution'].get('hotspots'))}
<h2>Most-contested merge decisions</h2>
{_contested_table(decisions)}
<h2>Poisoned pairs</h2>
{_poison_section(poisoned)}
{degradation_html}
<p class="note">Generated from <code>run.json</code> (manifest v{manifest['manifest_version']}).
Config fingerprint and full counters: <code>{_esc(json.dumps(manifest['counters'], sort_keys=True))}</code></p>
</body>
</html>
"""


def write_report(run_dir: str | Path, output: str | Path | None = None) -> Path:
    """Render ``<run_dir>/run.json`` (+ provenance, when recorded) to a
    single HTML file; returns the output path."""
    from .provenance import ProvenanceLog

    run_dir = Path(run_dir)
    manifest = load_manifest(run_dir)
    decisions = None
    provenance_path = resolve_artifact(manifest, run_dir, "provenance")
    if provenance_path is not None and provenance_path.exists():
        decisions = ProvenanceLog.from_jsonl(provenance_path).records
    trace = None
    trace_path = resolve_artifact(manifest, run_dir, "trace")
    if trace_path is not None and trace_path.exists():
        trace = json.loads(trace_path.read_text())
    profile_folded = None
    profile_path = resolve_artifact(manifest, run_dir, "profile")
    if profile_path is not None and profile_path.exists():
        profile_folded = parse_folded(profile_path.read_text())
    poisoned = None
    poison_path = resolve_artifact(manifest, run_dir, "poison_log")
    if poison_path is None:
        # Older manifests predate the artifact kind; probe the
        # conventional filename the build supervisor writes.
        candidate = run_dir / "poisoned_pairs.jsonl" if run_dir.is_dir() else None
        poison_path = candidate
    if poison_path is not None and poison_path.exists():
        poisoned = [
            json.loads(line)
            for line in poison_path.read_text().splitlines()
            if line.strip()
        ]
    output = Path(output) if output is not None else run_dir / "report.html"
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(
        render_report(
            manifest,
            decisions,
            trace=trace,
            profile_folded=profile_folded,
            poisoned=poisoned,
        )
    )
    return output
