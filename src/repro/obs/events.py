"""Structured run logging: a levelled JSONL event stream.

Every noteworthy moment of a reconciliation run becomes one JSON
object on its own line — machine-readable, greppable, and safely
appendable (a resumed run continues the same file). The taxonomy is
deliberately small and stable:

========================  ==========================================
event                     emitted when
========================  ==========================================
``run_start``             a CLI / harness run begins (dataset, algo)
``build_start``           graph construction begins
``build_phase``           one build phase finished (premerge,
                          ``class:<name>``, wiring, constraints)
``build_end``             graph construction finished (counters)
``iterate_start``         the fixpoint loop begins
``iterate_progress``      periodic progress (step, queue, merges)
``merge`` / ``non_merge`` one reconciliation decision (debug level)
``convergence_sample``    a P/R-vs-gold convergence sample was taken
                          (debug level; run-manifest sampling)
``degradation``           anything degraded (guard trip, pruning,
                          parallel fallback, budget stop)
``task_retry``            a failed scoring chunk is being re-executed
                          by the supervisor (warning level)
``task_timeout``          a scoring task exceeded its deadline and its
                          pool is being torn down (warning level)
``pool_rebuild``          the supervisor rebuilt the worker pool after
                          a crash / timeout or stepped down its
                          degradation ladder (warning level)
``pair_poisoned``         bisection isolated a pair whose scoring
                          keeps failing; it is quarantined and scored
                          as no-merge (error level)
``checkpoint_saved``      a checkpoint was written
``resume``                a run continued from a checkpoint
``quarantine``            lenient ingestion skipped bad records
``iterate_end``           the fixpoint loop finished (stop reason)
``run_end``               the run finished (outcome summary)
========================  ==========================================

Fields beyond ``ts`` / ``level`` / ``event`` are event-specific and
flat (no nesting), so the stream stays trivially loadable into any
log pipeline. Timestamps are wall-clock seconds; they never feed back
into the engine, so logging cannot perturb determinism.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

__all__ = ["LEVELS", "EventLog"]

#: severity name -> numeric rank (standard-library-compatible values).
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class EventLog:
    """A levelled JSONL event sink.

    ``path`` opens (lazily, in append mode — resumed runs continue the
    same file) a JSONL file; ``stream`` writes to an existing
    file-like object instead (e.g. ``sys.stderr``). Events below
    ``level`` are dropped. ``clock`` is injectable for deterministic
    tests.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        stream=None,
        level: str = "info",
        clock=time.time,
    ) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}; expected one of {sorted(LEVELS)}")
        self.path = Path(path) if path is not None else None
        self.level = level
        self.threshold = LEVELS[level]
        self.emitted = 0
        self._clock = clock
        self._stream = stream
        self._handle = None

    def _sink(self):
        if self._stream is not None:
            return self._stream
        if self._handle is None:
            if self.path is None:
                return None
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
        return self._handle

    def emit(self, level: str, event: str, /, **fields) -> None:
        """Write one event; silently dropped when below the log level."""
        if LEVELS.get(level, 0) < self.threshold:
            return
        sink = self._sink()
        if sink is None:
            return
        record = {"ts": round(self._clock(), 6), "level": level, "event": event}
        record.update(fields)
        sink.write(json.dumps(record, sort_keys=False, default=str) + "\n")
        self.emitted += 1

    def flush(self) -> None:
        sink = self._stream if self._stream is not None else self._handle
        if sink is not None:
            try:
                sink.flush()
            except (OSError, ValueError):  # pragma: no cover - closed stream
                pass

    def close(self) -> None:
        self.flush()
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def stderr_log(level: str = "info") -> EventLog:
    """An event log rendering to stderr (human debugging convenience)."""
    return EventLog(stream=sys.stderr, level=level)
