"""Metrics registry: counters, gauges and histograms in one snapshot.

The registry is the single sink for run-level quantities: the engine's
:class:`~repro.core.engine.EngineStats` counters and cache hit/miss
pairs are *absorbed* into it at the end of a run
(:meth:`MetricsRegistry.absorb_stats`), and the hot loop feeds two
live histograms (recompute latency, active-queue depth) while metrics
are enabled. Snapshots export as plain JSON or as Prometheus text
exposition format, so the same registry serves offline bench
attribution and a scrape endpoint.

Metric names follow Prometheus conventions: ``repro_`` prefix,
``_total`` suffix for counters, ``_seconds`` for durations.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "escape_label_value",
    "format_labels",
]

#: default histogram buckets for sub-second latencies (seconds).
LATENCY_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: default buckets for queue depths / counts.
DEPTH_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000)


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format (version 0.0.4).

    Backslash, double-quote and newline are the three characters the
    format reserves inside quoted label values; anything else passes
    through verbatim. Backslash must go first or it would re-escape
    the other two replacements.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_labels(labels: dict[str, str] | None) -> str:
    """``{k="v",...}`` with escaped values, or ``""`` for no labels."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class Counter:
    """Monotone counter."""

    __slots__ = ("name", "help", "value", "labels")
    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: dict | None = None) -> None:
        self.name = name
        self.help = help
        self.value = 0
        self.labels = dict(labels) if labels else None

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down (or be set once at the end)."""

    __slots__ = ("name", "help", "value", "labels")
    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: dict | None = None) -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self.labels = dict(labels) if labels else None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram (cumulative on export, Prometheus-style)."""

    __slots__ = ("name", "help", "buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets=LATENCY_BUCKETS) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # final slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` rows, ending at +Inf."""
        rows: list[tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.buckets, self.counts):
            running += bucket_count
            rows.append((bound, running))
        rows.append((math.inf, self.count))
        return rows


class MetricsRegistry:
    """Create-or-get access to named metrics plus exporters."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def _get(self, name: str, factory, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a "
                f"{factory.__name__.lower()}"
            )
        return metric

    def counter(self, name: str, help: str = "", labels: dict | None = None) -> Counter:
        return self._get(name, Counter, help=help, labels=labels)

    def gauge(self, name: str, help: str = "", labels: dict | None = None) -> Gauge:
        return self._get(name, Gauge, help=help, labels=labels)

    def histogram(self, name: str, help: str = "", buckets=LATENCY_BUCKETS) -> Histogram:
        return self._get(name, Histogram, help=help, buckets=buckets)

    # ------------------------------------------------------------------
    # EngineStats absorption
    # ------------------------------------------------------------------
    #: EngineStats counter field -> (metric name, help). The registry is
    #: the superset: everything EngineStats counts appears here.
    _STAT_COUNTERS = {
        "candidate_pairs": ("repro_candidate_pairs_total", "candidate pairs examined by blocking"),
        "pair_nodes": ("repro_pair_nodes_total", "pair nodes created in the dependency graph"),
        "value_nodes": ("repro_value_nodes_total", "value nodes created in the dependency graph"),
        "recomputations": ("repro_recomputations_total", "pair-node similarity recomputations"),
        "merges": ("repro_merges_total", "reconciliation (merge) decisions"),
        "non_merges": ("repro_non_merges_total", "non-merge (negative) decisions"),
        "premerged_unions": ("repro_premerged_unions_total", "key-agreement pre-merges"),
        "constraint_pairs": ("repro_constraint_pairs_total", "a-priori distinct pairs installed"),
        "fusions": ("repro_fusions_total", "graph node fusions during enrichment"),
        "queue_front_pushes": ("repro_queue_front_pushes_total", "strong-boolean queue-front activations"),
        "queue_back_pushes": ("repro_queue_back_pushes_total", "queue-back activations"),
        "skipped_weak_fanout": ("repro_weak_fanout_skips_total", "weak-edge bundles pruned by the fan-out ceiling"),
        "prefilter_skips": ("repro_prefilter_skips_total", "comparator calls skipped by the upper-bound prefilter"),
        "task_retries": ("repro_task_retries_total", "supervised scoring-chunk retries"),
        "task_timeouts": ("repro_task_timeouts_total", "scoring tasks that exceeded their deadline"),
        "pool_rebuilds": ("repro_pool_rebuilds_total", "worker-pool rebuilds after crashes or timeouts"),
        "pairs_poisoned": ("repro_pairs_poisoned_total", "candidate pairs quarantined as poisoned"),
        "speculated_nodes": ("repro_speculated_nodes_total", "pair nodes scored speculatively ahead of their pop"),
        "speculation_hits": ("repro_speculation_hits_total", "speculative scores validated and committed"),
        "speculation_invalidated": ("repro_speculation_invalidated_total", "speculative scores invalidated by intervening commits"),
        "speculation_dropped": ("repro_speculation_dropped_total", "speculation chunks dropped after exhausting retries"),
        "queue_compactions": ("repro_queue_compactions_total", "active-queue deque compactions"),
    }

    #: (hits field, misses field) -> cache name for hit/miss pairs.
    _STAT_CACHES = {
        "values": ("values_cache_hits", "values_cache_misses"),
        "contacts": ("contacts_cache_hits", "contacts_cache_misses"),
        "feature": ("feature_cache_hits", "feature_cache_misses"),
        "pair_memo": ("pair_memo_hits", "pair_memo_misses"),
    }

    def absorb_stats(self, stats) -> None:
        """Fold an :class:`~repro.core.engine.EngineStats` into the
        registry: counters, phase gauges and per-cache hits/misses."""
        for attr, (name, help_text) in self._STAT_COUNTERS.items():
            counter = self.counter(name, help_text)
            counter.value = getattr(stats, attr)
        self.gauge("repro_build_seconds", "graph build wall-clock").set(
            round(stats.build_seconds, 6)
        )
        self.gauge("repro_iterate_seconds", "fixpoint iteration wall-clock").set(
            round(stats.iterate_seconds, 6)
        )
        self.gauge("repro_parallel_workers", "worker processes used by the build").set(
            stats.parallel_workers
        )
        self.gauge("repro_graph_nodes", "total dependency-graph nodes").set(
            stats.graph_nodes
        )
        self.gauge("repro_degradations", "degradation events recorded").set(
            len(stats.degradations)
        )
        for cache_name, (hits_attr, misses_attr) in self._STAT_CACHES.items():
            hits = getattr(stats, hits_attr)
            misses = getattr(stats, misses_attr)
            self.counter(
                f"repro_{cache_name}_cache_hits_total", f"{cache_name} cache hits"
            ).value = hits
            self.counter(
                f"repro_{cache_name}_cache_misses_total", f"{cache_name} cache misses"
            ).value = misses

    def absorb_run_info(self, **labels: str) -> Gauge:
        """Record run identity (dataset id, algorithm, ...) as the
        conventional ``repro_run_info`` gauge with value 1.

        Label values are free-form strings — dataset ids can contain
        quotes or backslashes — so the exporters escape them per the
        exposition format and :func:`repro.obs.schemas.parse_labels`
        round-trips them.
        """
        info = self.gauge("repro_run_info", "run identity labels (constant 1)")
        info.labels = {key: str(value) for key, value in labels.items()}
        info.set(1)
        return info

    def cache_hit_rates(self) -> dict[str, float | None]:
        """hit/(hit+miss) per absorbed cache; ``None`` when untouched."""
        rates: dict[str, float | None] = {}
        for cache_name in self._STAT_CACHES:
            hits_metric = self._metrics.get(f"repro_{cache_name}_cache_hits_total")
            misses_metric = self._metrics.get(f"repro_{cache_name}_cache_misses_total")
            if hits_metric is None or misses_metric is None:
                continue
            total = hits_metric.value + misses_metric.value
            rates[cache_name] = round(hits_metric.value / total, 4) if total else None
        return rates

    # ------------------------------------------------------------------
    # exporters
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready snapshot of every metric."""
        out: dict[str, dict] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.kind == "histogram":
                out[name] = {
                    "type": "histogram",
                    "help": metric.help,
                    "count": metric.count,
                    "sum": round(metric.sum, 9),
                    "buckets": {
                        ("+Inf" if math.isinf(bound) else repr(bound)): cumulative
                        for bound, cumulative in metric.cumulative()
                    },
                }
            else:
                entry = {
                    "type": metric.kind,
                    "help": metric.help,
                    "value": metric.value,
                }
                if metric.labels:
                    entry["labels"] = dict(metric.labels)
                out[name] = entry
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if metric.kind == "histogram":
                for bound, cumulative in metric.cumulative():
                    label = "+Inf" if math.isinf(bound) else format(bound, "g")
                    lines.append(f'{name}_bucket{{le="{label}"}} {cumulative}')
                lines.append(f"{name}_sum {format(metric.sum, 'g')}")
                lines.append(f"{name}_count {metric.count}")
            else:
                labels = format_labels(metric.labels)
                lines.append(f"{name}{labels} {format(metric.value, 'g')}")
        return "\n".join(lines) + "\n"

    def write(self, path: str | Path) -> Path:
        """Write the snapshot to *path*: Prometheus text for ``.prom`` /
        ``.txt`` paths, JSON otherwise."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.suffix in (".prom", ".txt"):
            path.write_text(self.to_prometheus())
        else:
            path.write_text(json.dumps(self.snapshot(), indent=2) + "\n")
        return path
