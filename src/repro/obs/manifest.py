"""Run manifests: one machine-readable summary per engine/CLI run.

PR 3 left every run with rich but *separate* artifacts (event log,
trace, metrics, provenance); the manifest is the versioned index that
relates them and captures the run's semantic outcome in one place:
configuration fingerprint, dataset id, partition digest, per-class
quality against gold, per-iteration convergence samples, decision
counters, degradations, and pointers to the sibling artifacts. It is
what ``repro diff`` compares and ``repro report`` renders.

The manifest is split into an **invariant core** and two
execution-dependent sections:

* The core (``run``, ``config``, ``partition``, ``quality``,
  ``convergence``, ``counters``, ``degradations``) is a pure function
  of the dataset and the configuration — byte-identical with telemetry
  on or off, and for a resumed run vs an uninterrupted one.
* ``execution`` holds wall-clock timings, phase attributions, cache
  hit rates (caches restart cold on resume, so their counters are
  execution state, not outcome state) and the resume flag;
  ``artifacts`` holds sibling file paths. Both are excluded by
  :func:`invariant_view`, which the invariance tests and ``repro
  diff`` compare on.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict
from pathlib import Path

__all__ = [
    "MANIFEST_VERSION",
    "MANIFEST_FILENAME",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "invariant_view",
    "partition_digest",
    "quality_by_class",
    "resolve_artifact",
]

MANIFEST_VERSION = 1
MANIFEST_FILENAME = "run.json"

#: top-level sections excluded from cross-run invariance comparisons.
EXECUTION_SECTIONS = ("execution", "artifacts")

#: EngineStats fields that describe the run's *outcome* (deterministic
#: across telemetry on/off and resume) rather than its execution.
_COUNTER_FIELDS = (
    "candidate_pairs",
    "pair_nodes",
    "value_nodes",
    "graph_nodes",
    "recomputations",
    "merges",
    "non_merges",
    "premerged_unions",
    "constraint_pairs",
    "fusions",
    "queue_front_pushes",
    "queue_back_pushes",
    "skipped_weak_fanout",
)

#: (cache name, hits field, misses field) — execution-dependent.
_CACHE_FIELDS = (
    ("values", "values_cache_hits", "values_cache_misses"),
    ("contacts", "contacts_cache_hits", "contacts_cache_misses"),
    ("feature", "feature_cache_hits", "feature_cache_misses"),
    ("pair_memo", "pair_memo_hits", "pair_memo_misses"),
)


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def partition_digest(partitions: dict[str, list[list[str]]]) -> str:
    """``sha256:...`` over the canonical JSON form of the partition."""
    return "sha256:" + hashlib.sha256(_canonical(partitions).encode()).hexdigest()


def quality_by_class(
    partitions: dict[str, list[list[str]]], gold_entity_of: dict[str, str]
) -> dict:
    """Per-class pairwise + B-cubed P/R/F against a gold mapping.

    Classes with no gold-covered reference are omitted; an empty gold
    standard yields an empty dict (the manifest still validates).
    """
    # Imported lazily: obs is loaded by repro.core.engine, which the
    # evaluation package itself imports (cycle otherwise).
    from ..evaluation.clustering import bcubed_scores
    from ..evaluation.metrics import pairwise_scores

    quality: dict[str, dict] = {}
    if not gold_entity_of:
        return quality
    for class_name in sorted(partitions):
        clusters = partitions[class_name]
        if not any(ref_id in gold_entity_of for cluster in clusters for ref_id in cluster):
            continue
        pw = pairwise_scores(clusters, gold_entity_of)
        b3 = bcubed_scores(clusters, gold_entity_of)
        quality[class_name] = {
            "pairwise": {
                "precision": round(pw.precision, 6),
                "recall": round(pw.recall, 6),
                "f1": round(pw.f_measure, 6),
            },
            "bcubed": {
                "precision": round(b3.precision, 6),
                "recall": round(b3.recall, 6),
                "f1": round(b3.f_measure, 6),
            },
            "partitions": len(clusters),
        }
    return quality


def _histogram_summaries(metrics) -> dict:
    """count/sum/mean per histogram in the registry — the manifest's
    compressed view of latency and depth distributions (the full
    buckets live in the ``--metrics`` export)."""
    summaries: dict[str, dict] = {}
    for name, metric in sorted(metrics.snapshot().items()):
        if metric.get("type") != "histogram":
            continue
        count = metric["count"]
        summaries[name] = {
            "count": count,
            "sum": round(metric["sum"], 6),
            "mean": round(metric["sum"] / count, 6) if count else None,
        }
    return summaries


def _cache_rates(stats) -> dict:
    rates: dict[str, float | None] = {}
    for cache_name, hits_attr, misses_attr in _CACHE_FIELDS:
        hits = getattr(stats, hits_attr)
        misses = getattr(stats, misses_attr)
        total = hits + misses
        rates[cache_name] = round(hits / total, 4) if total else None
    return rates


def build_manifest(
    *,
    dataset,
    reconciler,
    result,
    algorithm: str = "depgraph",
    artifacts: dict | None = None,
    resumed: bool = False,
    shards: dict | None = None,
) -> dict:
    """Assemble the manifest for one finished run.

    *dataset* is the :class:`~repro.datasets.dataset.Dataset` the run
    reconciled, *reconciler* the finished engine, *result* its
    :class:`~repro.core.result.ReconciliationResult`. *artifacts* maps
    artifact kind (``provenance`` / ``events`` / ``trace`` /
    ``metrics`` / ``partition``) to a path, preferably relative to the
    run directory.

    *shards* (sharded runs only) is the shard runner's summary — plan
    balance, per-shard engines, cross-shard fixpoint rounds. It lands
    in the ``execution`` section: how the work was split is execution
    shape, never outcome (a sharded run's invariant core must equal
    the serial run's).
    """
    from ..runtime.checkpoint import config_fingerprint

    stats = reconciler.stats
    tracer = getattr(reconciler.telemetry, "tracer", None)
    phase_seconds = tracer.phase_timings() if tracer is not None else {}
    metrics = getattr(reconciler.telemetry, "metrics", None)
    relay = getattr(reconciler, "_relay", None)
    hotspots = getattr(reconciler, "hotspots", None)
    return {
        "manifest_version": MANIFEST_VERSION,
        "kind": "repro_run_manifest",
        "generated_by": "repro.obs.manifest",
        "run": {
            "dataset": dataset.name,
            "algorithm": algorithm,
            "references": len(dataset.store),
            "completed": result.completed,
            "stop_reason": result.stop_reason,
            "quarantined": len(dataset.quarantined),
        },
        "config": config_fingerprint(reconciler.config),
        "partition": {
            "digest": partition_digest(result.partitions),
            "per_class": {
                class_name: len(clusters)
                for class_name, clusters in sorted(result.partitions.items())
            },
        },
        "quality": quality_by_class(result.partitions, dataset.gold.entity_of),
        "convergence": [dict(sample) for sample in stats.convergence_samples],
        "counters": {name: getattr(stats, name) for name in _COUNTER_FIELDS},
        "degradations": [asdict(event) for event in stats.degradations],
        "execution": {
            "resumed": bool(resumed),
            "build_seconds": round(stats.build_seconds, 6),
            "iterate_seconds": round(stats.iterate_seconds, 6),
            "total_seconds": round(stats.build_seconds + stats.iterate_seconds, 6),
            "phase_seconds": phase_seconds,
            "cache_hit_rates": _cache_rates(stats),
            "prefilter_skips": stats.prefilter_skips,
            "parallel_workers": stats.parallel_workers,
            # Speculation counters are execution-dependent (they vary
            # with timing and worker count even though results never
            # do), so they live here, NOT in the identity-checked
            # "counters" section.
            "iterate_workers": getattr(stats, "iterate_workers", 1),
            "speculation": {
                "speculated": getattr(stats, "speculated_nodes", 0),
                "hits": getattr(stats, "speculation_hits", 0),
                "invalidated": getattr(stats, "speculation_invalidated", 0),
                "dropped": getattr(stats, "speculation_dropped", 0),
            },
            "queue_compactions": getattr(stats, "queue_compactions", 0),
            # Cross-process telemetry: what the relay harvested from
            # worker/child lanes (None when no relay was attached) and
            # the registry's histogram digests. Execution-only by
            # construction — worker timings vary run to run.
            "worker_telemetry": relay.summary() if relay is not None else None,
            "histograms": _histogram_summaries(metrics) if metrics is not None else {},
            # Heavy-hitter workload attribution (blocks / pairs /
            # channels + blocking skew). Wall-time attributions vary
            # run to run, so the whole summary is execution-only.
            "hotspots": hotspots.summary() if hotspots is not None else None,
            # Sharded execution summary (None for whole-graph runs):
            # component plan, per-shard engine rows, fixpoint rounds.
            "shards": shards,
            "generated_at": round(time.time(), 3),
        },
        "artifacts": dict(artifacts or {}),
    }


def write_manifest(
    manifest: dict, run_dir: str | Path, filename: str = MANIFEST_FILENAME
) -> Path:
    """Write *manifest* as ``<run_dir>/run.json``; returns the path."""
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    path = run_dir / filename
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def load_manifest(path: str | Path) -> dict:
    """Load a manifest from a run directory or a ``run.json`` path."""
    path = Path(path)
    if path.is_dir():
        path = path / MANIFEST_FILENAME
    return json.loads(path.read_text())


def invariant_view(manifest: dict) -> dict:
    """The manifest minus its execution-dependent sections.

    Two runs of the same dataset under the same configuration must
    produce byte-equal invariant views regardless of telemetry sinks
    or checkpoint/resume interruptions; the invariance tests and
    ``repro diff`` compare this view.
    """
    return {
        key: value
        for key, value in manifest.items()
        if key not in EXECUTION_SECTIONS
    }


def resolve_artifact(
    manifest: dict, run_path: str | Path, kind: str
) -> Path | None:
    """Absolute path of one recorded artifact, or ``None``.

    Relative artifact paths resolve against the run directory (the
    directory holding ``run.json``), so a run directory can be moved
    or unpacked anywhere and its manifest keeps working.
    """
    value = manifest.get("artifacts", {}).get(kind)
    if not value:
        return None
    run_path = Path(run_path)
    base = run_path if run_path.is_dir() else run_path.parent
    path = Path(value)
    if not path.is_absolute():
        path = base / path
    return path
