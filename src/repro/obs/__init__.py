"""Observability: structured logs, span traces, metrics, provenance.

Four sinks behind one :class:`Telemetry` facade, threaded through the
engine, perf and runtime subsystems:

* :mod:`~repro.obs.events` — a levelled JSONL event stream
  (``--log-json`` / ``--log-level``),
* :mod:`~repro.obs.tracing` — nested timed spans exported as Chrome
  trace-event JSON (``--trace``, loads in Perfetto),
* :mod:`~repro.obs.metrics` — a counters/gauges/histograms registry
  absorbing :class:`~repro.core.engine.EngineStats`, exported as JSON
  or Prometheus text (``--metrics``),
* :mod:`~repro.obs.provenance` — the merge-provenance audit log every
  ``explain`` replay runs from (``--provenance``).

On top of the sinks sits the **run-analysis layer**:

* :mod:`~repro.obs.manifest` — the versioned ``run.json`` summary
  every ``--run-dir`` run emits (config fingerprint, partition digest,
  per-class quality, convergence samples, counters, timings),
* :mod:`~repro.obs.diffing` — ``repro diff``: cross-run regression
  localization down to the flipped pair, its channel, and the
  root-cause chain through the provenance graph,
* :mod:`~repro.obs.report_html` — ``repro report``: a single
  self-contained HTML file with inline-SVG charts.

And the **cross-process / live layer**:

* :mod:`~repro.obs.relay` — worker-side telemetry capture shipped
  back piggybacked on chunk results and merged into the parent's
  sinks with real pid/tid trace lanes,
* :mod:`~repro.obs.profile` — a stdlib sampling wall-clock profiler
  (``--profile``; folded stacks + speedscope JSON),
* :mod:`~repro.obs.live` — the ``--live`` stderr HUD and the
  ``repro watch`` event-log tailer.

Everything is disabled by default: the engine holds the shared
:data:`NULL_TELEMETRY` null object and its instrumented paths cost
one attribute read when no sink is attached. Telemetry is strictly
observational — partitions are byte-identical with it on or off, and
none of its state (timestamps, span ids, record sequence numbers)
enters checkpoints or their fingerprints.
"""

from .diffing import DiffVerdict, diff_runs
from .events import LEVELS, EventLog
from .flight import (
    CRASH_BUNDLE_FILENAME,
    FlightRecorder,
    build_crash_bundle,
    dump_crash_bundle,
    load_crash_bundle,
)
from .hotspots import HotspotSketch, SpaceSaving, gini
from .live import (
    LiveHud,
    follow_events,
    read_events,
    render_hud,
    render_watch,
    watch_snapshot,
)
from .manifest import (
    MANIFEST_FILENAME,
    MANIFEST_VERSION,
    build_manifest,
    invariant_view,
    load_manifest,
    partition_digest,
    resolve_artifact,
    write_manifest,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    format_labels,
)
from .profile import SamplingProfiler, parse_folded, top_frames_from_folded
from .provenance import DecisionRecord, ProvenanceLog
from .relay import TelemetryRelay, WorkerTelemetry
from .render import (
    hit_rate,
    render_degradations,
    render_diff,
    render_doctor,
    render_hotspots,
    render_quarantine,
    render_stats,
)
from .report_html import render_report, write_report
from .schemas import (
    SchemaError,
    validate_crash_bundle,
    parse_labels,
    parse_prometheus,
    trace_process_names,
    unescape_label_value,
    validate_chrome_trace,
    validate_event,
    validate_event_log,
    validate_decision,
    validate_manifest,
    validate_metrics_snapshot,
    validate_provenance_jsonl,
    validate_speedscope,
)
from .telemetry import NULL_TELEMETRY, Telemetry
from .tracing import Tracer

__all__ = [
    "LEVELS",
    "EventLog",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "escape_label_value",
    "format_labels",
    "DecisionRecord",
    "ProvenanceLog",
    "DiffVerdict",
    "diff_runs",
    "MANIFEST_FILENAME",
    "MANIFEST_VERSION",
    "build_manifest",
    "invariant_view",
    "load_manifest",
    "partition_digest",
    "resolve_artifact",
    "write_manifest",
    "render_report",
    "write_report",
    "hit_rate",
    "render_degradations",
    "render_diff",
    "render_doctor",
    "render_hotspots",
    "render_quarantine",
    "render_stats",
    "CRASH_BUNDLE_FILENAME",
    "FlightRecorder",
    "build_crash_bundle",
    "dump_crash_bundle",
    "load_crash_bundle",
    "HotspotSketch",
    "SpaceSaving",
    "gini",
    "SchemaError",
    "validate_crash_bundle",
    "parse_labels",
    "parse_prometheus",
    "trace_process_names",
    "unescape_label_value",
    "validate_chrome_trace",
    "validate_event",
    "validate_event_log",
    "validate_decision",
    "validate_manifest",
    "validate_metrics_snapshot",
    "validate_provenance_jsonl",
    "validate_speedscope",
    "LiveHud",
    "follow_events",
    "read_events",
    "render_hud",
    "render_watch",
    "watch_snapshot",
    "SamplingProfiler",
    "parse_folded",
    "top_frames_from_folded",
    "TelemetryRelay",
    "WorkerTelemetry",
    "NULL_TELEMETRY",
    "Telemetry",
    "Tracer",
]
