"""Observability: structured logs, span traces, metrics, provenance.

Four sinks behind one :class:`Telemetry` facade, threaded through the
engine, perf and runtime subsystems:

* :mod:`~repro.obs.events` — a levelled JSONL event stream
  (``--log-json`` / ``--log-level``),
* :mod:`~repro.obs.tracing` — nested timed spans exported as Chrome
  trace-event JSON (``--trace``, loads in Perfetto),
* :mod:`~repro.obs.metrics` — a counters/gauges/histograms registry
  absorbing :class:`~repro.core.engine.EngineStats`, exported as JSON
  or Prometheus text (``--metrics``),
* :mod:`~repro.obs.provenance` — the merge-provenance audit log every
  ``explain`` replay runs from (``--provenance``).

Everything is disabled by default: the engine holds the shared
:data:`NULL_TELEMETRY` null object and its instrumented paths cost
one attribute read when no sink is attached. Telemetry is strictly
observational — partitions are byte-identical with it on or off, and
none of its state (timestamps, span ids, record sequence numbers)
enters checkpoints or their fingerprints.
"""

from .events import LEVELS, EventLog
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .provenance import DecisionRecord, ProvenanceLog
from .render import hit_rate, render_degradations, render_quarantine, render_stats
from .schemas import (
    SchemaError,
    parse_prometheus,
    validate_chrome_trace,
    validate_event,
    validate_event_log,
    validate_decision,
    validate_metrics_snapshot,
    validate_provenance_jsonl,
)
from .telemetry import NULL_TELEMETRY, Telemetry
from .tracing import Tracer

__all__ = [
    "LEVELS",
    "EventLog",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DecisionRecord",
    "ProvenanceLog",
    "hit_rate",
    "render_degradations",
    "render_quarantine",
    "render_stats",
    "SchemaError",
    "parse_prometheus",
    "validate_chrome_trace",
    "validate_event",
    "validate_event_log",
    "validate_decision",
    "validate_metrics_snapshot",
    "validate_provenance_jsonl",
    "NULL_TELEMETRY",
    "Telemetry",
    "Tracer",
]
