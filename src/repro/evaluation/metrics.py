"""Evaluation metrics (§2.1, §5.2).

The paper measures *pairwise* precision and recall: recall is the
fraction of same-entity reference pairs that the algorithm reconciled,
precision the fraction of reconciled pairs that are truly same-entity,
and F-measure their harmonic mean. As §5.2 notes, this weighting
"penalizes results more for incorrect reconciliation for popular
entities" — errors on big clusters cost quadratically.

All computations work on counts, never materialised pair sets, so they
stay linear in the number of references.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

__all__ = [
    "PairwiseScores",
    "pairwise_scores",
    "combine_scores",
    "partition_count",
    "entities_with_false_positives",
    "partition_reduction",
]


@dataclass(frozen=True)
class PairwiseScores:
    """Pairwise precision / recall / F-measure plus the raw counts."""

    precision: float
    recall: float
    true_pairs: int
    predicted_pairs: int
    gold_pairs: int

    @property
    def f_measure(self) -> float:
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)

    def row(self) -> str:
        return (
            f"{self.precision:.3f}/{self.recall:.3f}  F={self.f_measure:.3f}"
        )


def _pairs(count: int) -> int:
    return count * (count - 1) // 2


def pairwise_scores(
    predicted: Iterable[Iterable[str]],
    gold: Mapping[str, str],
    *,
    restrict_to: Iterable[str] | None = None,
) -> PairwiseScores:
    """Score a predicted partition against a gold entity mapping.

    *predicted* is an iterable of clusters (iterables of reference
    ids); *gold* maps reference id to gold entity id. References
    without a gold entry are ignored. With *restrict_to*, only the
    given references participate (the PEmail / PArticle subsets).
    """
    allowed = None if restrict_to is None else set(restrict_to)

    true_pairs = 0
    predicted_pairs = 0
    gold_counter: Counter[str] = Counter()
    seen_refs: set[str] = set()

    for cluster in predicted:
        entity_counts: Counter[str] = Counter()
        size = 0
        for ref_id in cluster:
            if allowed is not None and ref_id not in allowed:
                continue
            entity = gold.get(ref_id)
            if entity is None:
                continue
            if ref_id in seen_refs:
                raise ValueError(f"reference {ref_id!r} appears in two clusters")
            seen_refs.add(ref_id)
            entity_counts[entity] += 1
            gold_counter[entity] += 1
            size += 1
        predicted_pairs += _pairs(size)
        true_pairs += sum(_pairs(count) for count in entity_counts.values())

    gold_pairs = sum(_pairs(count) for count in gold_counter.values())
    precision = true_pairs / predicted_pairs if predicted_pairs else 1.0
    recall = true_pairs / gold_pairs if gold_pairs else 1.0
    return PairwiseScores(
        precision=precision,
        recall=recall,
        true_pairs=true_pairs,
        predicted_pairs=predicted_pairs,
        gold_pairs=gold_pairs,
    )


def combine_scores(scores: Iterable[PairwiseScores]) -> PairwiseScores:
    """Micro-average several pairwise scores by summing raw pair counts.

    Used for cross-class quality (run manifests sample precision/recall
    over *all* classes with gold): big classes weigh proportionally to
    their pair universe, matching the paper's pairwise weighting.
    """
    true_pairs = predicted_pairs = gold_pairs = 0
    for score in scores:
        true_pairs += score.true_pairs
        predicted_pairs += score.predicted_pairs
        gold_pairs += score.gold_pairs
    precision = true_pairs / predicted_pairs if predicted_pairs else 1.0
    recall = true_pairs / gold_pairs if gold_pairs else 1.0
    return PairwiseScores(
        precision=precision,
        recall=recall,
        true_pairs=true_pairs,
        predicted_pairs=predicted_pairs,
        gold_pairs=gold_pairs,
    )


def partition_count(
    predicted: Iterable[Iterable[str]],
    *,
    restrict_to: Iterable[str] | None = None,
) -> int:
    """Number of non-empty predicted partitions (Table 4/5's #(Par))."""
    allowed = None if restrict_to is None else set(restrict_to)
    count = 0
    for cluster in predicted:
        if allowed is None:
            members = list(cluster)
        else:
            members = [ref_id for ref_id in cluster if ref_id in allowed]
        if members:
            count += 1
    return count


def entities_with_false_positives(
    predicted: Iterable[Iterable[str]],
    gold: Mapping[str, str],
    *,
    restrict_to: Iterable[str] | None = None,
) -> int:
    """Real-world entities involved in at least one wrong merge.

    Table 6 reports this count: an entity is implicated whenever some
    predicted cluster mixes its references with another entity's.
    """
    allowed = None if restrict_to is None else set(restrict_to)
    implicated: set[str] = set()
    for cluster in predicted:
        entities = {
            gold[ref_id]
            for ref_id in cluster
            if ref_id in gold and (allowed is None or ref_id in allowed)
        }
        if len(entities) > 1:
            implicated |= entities
    return len(implicated)


def partition_reduction(
    baseline_partitions: int, improved_partitions: int, true_entities: int
) -> float:
    """Table 5's improvement measure: "the percentage reduction in the
    difference between the number of result partitions and the number
    of real-world entities"."""
    baseline_gap = baseline_partitions - true_entities
    improved_gap = improved_partitions - true_entities
    if baseline_gap <= 0:
        return 0.0
    return 100.0 * (baseline_gap - improved_gap) / baseline_gap
