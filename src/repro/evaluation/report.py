"""One-shot reproduction report.

:func:`build_report` runs every experiment driver and assembles a
single markdown document — the measured tables next to the paper's
numbers plus a shape checklist — suitable for committing alongside a
result run. Exposed on the CLI as ``python -m repro report``.
"""

from __future__ import annotations

import time
from pathlib import Path

from .experiments import (
    figure6_series,
    table1_dataset_properties,
    table2_class_averages,
    table3_person_subsets,
    table4_per_dataset,
    table5_ablation_grid,
    table6_constraints,
    table7_cora,
)
from .tables import (
    render_figure6,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
    render_table7,
)

__all__ = ["build_report", "write_report", "shape_checklist"]


def shape_checklist(
    table2_rows, table3_rows, table4_rows, grid, table6_rows, table7_rows
) -> list[tuple[str, bool]]:
    """Evaluate the paper's headline claims on measured data."""
    t2 = {row["class"]: row for row in table2_rows}
    t3 = {row["dataset"]: row for row in table3_rows}
    t4 = {row["dataset"]: row for row in table4_rows}
    t6 = {row["method"]: row for row in table6_rows}
    t7 = {row["class"]: row for row in table7_rows}
    cells = grid["cells"]
    checks = [
        (
            "DepGraph F >= InDepDec F on every PIM class (Table 2)",
            all(r["DepGraph_f"] >= r["InDepDec_f"] - 0.01 for r in table2_rows),
        ),
        (
            "Venue recall gains the most from propagation (Table 2)",
            t2["Venue"]["DepGraph_recall"] - t2["Venue"]["InDepDec_recall"]
            >= max(
                t2[c]["DepGraph_recall"] - t2[c]["InDepDec_recall"]
                for c in ("Person", "Article")
            )
            - 0.02,
        ),
        (
            "PArticle shows the largest Person recall gain (Table 3)",
            (t3["PArticle"]["DepGraph_recall"] - t3["PArticle"]["InDepDec_recall"])
            >= (t3["PEmail"]["DepGraph_recall"] - t3["PEmail"]["InDepDec_recall"]),
        ),
        (
            "DepGraph produces fewer partitions on every dataset (Table 4)",
            all(
                row["DepGraph_partitions"] <= row["InDepDec_partitions"]
                for row in table4_rows
            ),
        ),
        (
            "Dataset D shows the owner-split recall signature (Table 4)",
            t4["D"]["DepGraph_recall"]
            <= min(t4[d]["DepGraph_recall"] for d in "ABC") + 0.05,
        ),
        (
            "Evidence accumulates monotonically in FULL mode (Table 5)",
            [
                cells[("Full", e)]
                for e in ("Attr-wise", "Name&Email", "Article", "Contact")
            ]
            == sorted(
                (
                    cells[("Full", e)]
                    for e in ("Attr-wise", "Name&Email", "Article", "Contact")
                ),
                reverse=True,
            ),
        ),
        (
            "Article evidence is inert in TRADITIONAL mode (Table 5)",
            abs(cells[("Traditional", "Article")] - cells[("Traditional", "Name&Email")])
            <= max(2, cells[("Traditional", "Name&Email")] // 50),
        ),
        (
            "Constraints improve precision and reduce implicated entities (Table 6)",
            t6["DepGraph"]["precision"] >= t6["Non-Constraint"]["precision"]
            and t6["DepGraph"]["entities_with_false_positives"]
            <= t6["Non-Constraint"]["entities_with_false_positives"],
        ),
        (
            "Cora venue propagation: recall way up, precision down (Table 7)",
            t7["Venue"]["DepGraph_recall"] > t7["Venue"]["InDepDec_recall"] + 0.2
            and t7["Venue"]["DepGraph_precision"] < t7["Venue"]["InDepDec_precision"],
        ),
        (
            "DepGraph F >= InDepDec F on every Cora class (Table 7)",
            all(r["DepGraph_f"] >= r["InDepDec_f"] - 0.01 for r in table7_rows),
        ),
    ]
    return checks


def build_report(scale: float = 1.0) -> str:
    """Run all experiments and return the markdown report."""
    started = time.perf_counter()
    t1 = table1_dataset_properties(scale)
    t2 = table2_class_averages(scale)
    t3 = table3_person_subsets(scale)
    t4 = table4_per_dataset(scale)
    grid = table5_ablation_grid(scale)
    fig6 = figure6_series(scale)
    t6 = table6_constraints(scale)
    t7 = table7_cora()
    elapsed = time.perf_counter() - started

    checks = shape_checklist(t2, t3, t4, grid, t6, t7)
    passed = sum(1 for _, ok in checks if ok)

    sections = [
        "# Reproduction report — Dong, Halevy & Madhavan, SIGMOD 2005",
        "",
        f"Scale {scale} (PIM datasets; Cora at natural size). "
        f"Full run took {elapsed:.1f}s.",
        "",
        f"## Shape checklist — {passed}/{len(checks)} claims hold",
        "",
    ]
    for claim, ok in checks:
        sections.append(f"- [{'x' if ok else ' '}] {claim}")
    sections.append("")
    for title, body in (
        ("Table 1", render_table1(t1)),
        ("Table 2", render_table2(t2)),
        ("Table 3", render_table3(t3)),
        ("Table 4", render_table4(t4)),
        ("Table 5", render_table5(grid)),
        ("Figure 6", render_figure6(fig6)),
        ("Table 6", render_table6(t6)),
        ("Table 7", render_table7(t7)),
    ):
        sections.append(f"## {title}")
        sections.append("")
        sections.append("```")
        sections.append(body)
        sections.append("```")
        sections.append("")
    return "\n".join(sections)


def write_report(path: str | Path, scale: float = 1.0) -> Path:
    """Build the report and write it to *path*."""
    target = Path(path)
    target.write_text(build_report(scale))
    return target
