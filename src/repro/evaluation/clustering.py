"""Cluster-level metrics beyond the paper's pairwise measure.

The paper evaluates with pairwise precision/recall; downstream users of
an entity-resolution library usually also want:

* **B-cubed** precision/recall (Bagga & Baldwin 1998) — per-reference
  averages, less dominated by huge clusters than pairwise;
* **cluster metrics** — exact-cluster precision/recall/F (how many
  predicted partitions are exactly right);
* **variation of information** — an information-theoretic distance
  between two partitions (0 = identical).

All computations are count-based and linear in the references.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

__all__ = [
    "BCubedScores",
    "bcubed_scores",
    "ClusterScores",
    "cluster_scores",
    "variation_of_information",
]


@dataclass(frozen=True)
class BCubedScores:
    precision: float
    recall: float

    @property
    def f_measure(self) -> float:
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)


def _cluster_lists(
    predicted: Iterable[Iterable[str]], gold: Mapping[str, str]
) -> list[list[str]]:
    clusters = []
    for cluster in predicted:
        members = [ref_id for ref_id in cluster if ref_id in gold]
        if members:
            clusters.append(members)
    return clusters


def bcubed_scores(
    predicted: Iterable[Iterable[str]], gold: Mapping[str, str]
) -> BCubedScores:
    """B-cubed precision and recall of a predicted partition.

    For each reference r: precision(r) = fraction of r's predicted
    cluster sharing r's gold entity; recall(r) = fraction of r's gold
    entity found in r's predicted cluster; scores are averages over all
    references.
    """
    clusters = _cluster_lists(predicted, gold)
    gold_sizes = Counter(gold[ref] for cluster in clusters for ref in cluster)
    total = sum(len(cluster) for cluster in clusters)
    if total == 0:
        return BCubedScores(1.0, 1.0)
    precision_sum = 0.0
    recall_sum = 0.0
    for cluster in clusters:
        entity_counts = Counter(gold[ref] for ref in cluster)
        size = len(cluster)
        for entity, count in entity_counts.items():
            # `count` references each see `count` same-entity neighbours
            # (including themselves) in a `size`-large cluster.
            precision_sum += count * (count / size)
            recall_sum += count * (count / gold_sizes[entity])
    return BCubedScores(precision_sum / total, recall_sum / total)


@dataclass(frozen=True)
class ClusterScores:
    """Exact-cluster agreement: a predicted partition scores only for
    clusters that match a gold cluster member-for-member."""

    precision: float
    recall: float
    exact_clusters: int
    predicted_clusters: int
    gold_clusters: int

    @property
    def f_measure(self) -> float:
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)


def cluster_scores(
    predicted: Iterable[Iterable[str]], gold: Mapping[str, str]
) -> ClusterScores:
    clusters = _cluster_lists(predicted, gold)
    grouped: dict[str, set[str]] = {}
    for ref_id, entity in gold.items():
        grouped.setdefault(entity, set()).add(ref_id)
    gold_sets = {frozenset(members) for members in grouped.values()}
    predicted_sets = [frozenset(cluster) for cluster in clusters]
    exact = sum(1 for cluster in predicted_sets if cluster in gold_sets)
    precision = exact / len(predicted_sets) if predicted_sets else 1.0
    recall = exact / len(gold_sets) if gold_sets else 1.0
    return ClusterScores(
        precision=precision,
        recall=recall,
        exact_clusters=exact,
        predicted_clusters=len(predicted_sets),
        gold_clusters=len(gold_sets),
    )


def variation_of_information(
    predicted: Iterable[Iterable[str]], gold: Mapping[str, str]
) -> float:
    """Meila's Variation of Information between prediction and gold.

    VI = H(P) + H(G) - 2 I(P; G), in nats; 0 iff the partitions agree.
    Only references present in *gold* participate.
    """
    clusters = _cluster_lists(predicted, gold)
    total = sum(len(cluster) for cluster in clusters)
    if total == 0:
        return 0.0
    gold_sizes = Counter(gold[ref] for cluster in clusters for ref in cluster)

    h_predicted = 0.0
    h_gold = 0.0
    mutual = 0.0
    for cluster in clusters:
        p_cluster = len(cluster) / total
        h_predicted -= p_cluster * math.log(p_cluster)
        for entity, count in Counter(gold[ref] for ref in cluster).items():
            p_joint = count / total
            p_gold = gold_sizes[entity] / total
            mutual += p_joint * math.log(p_joint / (p_cluster * p_gold))
    for entity, size in gold_sizes.items():
        p_gold = size / total
        h_gold -= p_gold * math.log(p_gold)
    return max(0.0, h_predicted + h_gold - 2.0 * mutual)
