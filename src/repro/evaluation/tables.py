"""Fixed-width rendering of the paper's tables.

Each ``render_*`` takes the row structures produced by
:mod:`repro.evaluation.experiments` and returns a printable string in
the layout of the corresponding table, side by side with the paper's
published numbers where useful.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = [
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_figure6",
    "render_table6",
    "render_table7",
    "PAPER_NUMBERS",
]

#: The paper's published values, for side-by-side reporting.
PAPER_NUMBERS = {
    "table1": [
        ("PIM A", 27367, 2731, 10.0),
        ("PIM B", 40516, 3033, 13.4),
        ("PIM C", 18018, 2586, 7.0),
        ("PIM D", 17534, 1639, 10.7),
        ("Cora", 6107, 338, 18.1),
    ],
    "table2": {
        "Person": ((0.967, 0.926, 0.946), (0.995, 0.976, 0.986)),
        "Article": ((0.997, 0.977, 0.987), (0.999, 0.976, 0.987)),
        "Venue": ((0.935, 0.790, 0.856), (0.987, 0.937, 0.961)),
    },
    "table3": {
        "Full": ((0.967, 0.926, 0.946), (0.995, 0.976, 0.986)),
        "PArticle": ((0.999, 0.761, 0.864), (0.997, 0.994, 0.996)),
        "PEmail": ((0.999, 0.905, 0.950), (0.995, 0.974, 0.984)),
    },
    "table4": {
        "A": ((0.999, 0.741, 0.851, 3159), (0.999, 0.999, 0.999, 1873)),
        "B": ((0.974, 0.998, 0.986, 2154), (0.999, 0.999, 0.999, 2068)),
        "C": ((0.999, 0.967, 0.983, 1660), (0.982, 0.987, 0.985, 1596)),
        "D": ((0.894, 0.998, 0.943, 1579), (0.999, 0.920, 0.958, 1546)),
    },
    "table5": {
        ("Traditional", "Attr-wise"): 3159,
        ("Traditional", "Name&Email"): 2169,
        ("Traditional", "Article"): 2169,
        ("Traditional", "Contact"): 2096,
        ("Propagation", "Attr-wise"): 3159,
        ("Propagation", "Name&Email"): 2146,
        ("Propagation", "Article"): 2135,
        ("Propagation", "Contact"): 2022,
        ("Merge", "Attr-wise"): 3169,
        ("Merge", "Name&Email"): 2036,
        ("Merge", "Article"): 2036,
        ("Merge", "Contact"): 1910,
        ("Full", "Attr-wise"): 3169,
        ("Full", "Name&Email"): 2002,
        ("Full", "Article"): 1990,
        ("Full", "Contact"): 1873,
    },
    "table5_entities": 1750,
    "table6": {
        "DepGraph": (0.999, 0.9994, 13, 692030),
        "Non-Constraint": (0.947, 0.9996, 61, 590438),
    },
    "table7": {
        "Person": ((0.994, 0.985, 0.989), (1.0, 0.987, 0.993)),
        "Article": ((0.985, 0.913, 0.948), (0.985, 0.924, 0.954)),
        "Venue": ((0.982, 0.362, 0.529), (0.837, 0.714, 0.771)),
    },
    # §5.4's cited comparison systems on Cora articles.
    "cora_citations": [
        ("Parag & Domingos [30] (collective)", 0.842, 0.909),
        ("Bilenko & Mooney [3] (adaptive), F", None, 0.867),
        ("Cohen & Richman [8]", 0.99, 0.925),
    ],
}


def _bar(width: int = 78) -> str:
    return "-" * width


def render_table1(rows: Iterable[dict]) -> str:
    lines = [
        "Table 1: dataset properties (measured | paper)",
        _bar(),
        f"{'Dataset':10s} {'#Refs':>8s} {'#Entities':>10s} {'Ratio':>7s}"
        f"   {'paper #Refs':>12s} {'#Ent':>6s} {'Ratio':>6s}",
    ]
    paper = {name: (refs, ents, ratio) for name, refs, ents, ratio in PAPER_NUMBERS["table1"]}
    for row in rows:
        p_refs, p_ents, p_ratio = paper.get(row["dataset"], ("-", "-", "-"))
        lines.append(
            f"{row['dataset']:10s} {row['references']:8d} {row['entities']:10d}"
            f" {row['ratio']:7.1f}   {p_refs!s:>12s} {p_ents!s:>6s} {p_ratio!s:>6s}"
        )
    return "\n".join(lines)


def _algo_cells(row: dict, algo: str) -> str:
    return (
        f"{row[f'{algo}_precision']:.3f}/{row[f'{algo}_recall']:.3f}"
        f" {row[f'{algo}_f']:.3f}"
    )


def render_table2(rows: Iterable[dict]) -> str:
    lines = [
        "Table 2: average P/R and F per class (PIM A-D)",
        _bar(),
        f"{'Class':9s} {'InDepDec P/R F':>22s} {'DepGraph P/R F':>22s}"
        f"   {'paper InDepDec':>16s} {'paper DepGraph':>16s}",
    ]
    for row in rows:
        paper_i, paper_d = PAPER_NUMBERS["table2"][row["class"]]
        lines.append(
            f"{row['class']:9s} {_algo_cells(row, 'InDepDec'):>22s}"
            f" {_algo_cells(row, 'DepGraph'):>22s}"
            f"   {paper_i[0]:.3f}/{paper_i[1]:.3f} {paper_i[2]:.3f}"
            f"  {paper_d[0]:.3f}/{paper_d[1]:.3f} {paper_d[2]:.3f}"
        )
    return "\n".join(lines)


def render_table3(rows: Iterable[dict]) -> str:
    lines = [
        "Table 3: Person references on Full / PArticle / PEmail",
        _bar(),
        f"{'Dataset':9s} {'InDepDec P/R F':>22s} {'DepGraph P/R F':>22s}"
        f"   {'paper InDepDec':>16s} {'paper DepGraph':>16s}",
    ]
    for row in rows:
        paper_i, paper_d = PAPER_NUMBERS["table3"][row["dataset"]]
        lines.append(
            f"{row['dataset']:9s} {_algo_cells(row, 'InDepDec'):>22s}"
            f" {_algo_cells(row, 'DepGraph'):>22s}"
            f"   {paper_i[0]:.3f}/{paper_i[1]:.3f} {paper_i[2]:.3f}"
            f"  {paper_d[0]:.3f}/{paper_d[1]:.3f} {paper_d[2]:.3f}"
        )
    return "\n".join(lines)


def render_table4(rows: Iterable[dict]) -> str:
    lines = [
        "Table 4: per-dataset Person performance",
        _bar(),
        f"{'DS':3s} {'ent/refs':>11s} "
        f"{'InDepDec P/R F #par':>28s} {'DepGraph P/R F #par':>28s}",
    ]
    for row in rows:
        lines.append(
            f"{row['dataset']:3s} {row['entities']:>4d}/{row['references']:<6d}"
            f" {row['InDepDec_precision']:.3f}/{row['InDepDec_recall']:.3f}"
            f" {row['InDepDec_f']:.3f} {row['InDepDec_partitions']:>5d}"
            f"    {row['DepGraph_precision']:.3f}/{row['DepGraph_recall']:.3f}"
            f" {row['DepGraph_f']:.3f} {row['DepGraph_partitions']:>5d}"
        )
    lines.append("paper:")
    for name, (paper_i, paper_d) in PAPER_NUMBERS["table4"].items():
        lines.append(
            f"{name:3s} {'':11s} {paper_i[0]:.3f}/{paper_i[1]:.3f}"
            f" {paper_i[2]:.3f} {paper_i[3]:>5d}    "
            f"{paper_d[0]:.3f}/{paper_d[1]:.3f} {paper_d[2]:.3f} {paper_d[3]:>5d}"
        )
    return "\n".join(lines)


def render_table5(grid: dict) -> str:
    from ..baselines import EVIDENCE_LEVELS, MODES

    lines = [
        f"Table 5: Person partitions by mode x evidence on PIM A "
        f"({grid['references']} refs, {grid['entities']} entities; "
        f"paper: 24076 refs, 1750 entities)",
        _bar(),
        f"{'Mode':12s}"
        + "".join(f"{evidence.name:>12s}" for evidence in EVIDENCE_LEVELS)
        + f"{'Reduction%':>12s}",
    ]
    for mode in MODES:
        cells = "".join(
            f"{grid['cells'][(mode.name, evidence.name)]:>12d}"
            for evidence in EVIDENCE_LEVELS
        )
        lines.append(
            f"{mode.name:12s}{cells}{grid['mode_reductions'][mode.name]:>11.1f}%"
        )
    reductions = "".join(
        f"{grid['evidence_reductions'][evidence.name]:>11.1f}%"
        for evidence in EVIDENCE_LEVELS
    )
    lines.append(f"{'Reduction%':12s}{reductions}{grid['overall']:>11.1f}%")
    lines.append("paper cells:")
    for mode in MODES:
        cells = "".join(
            f"{PAPER_NUMBERS['table5'][(mode.name, evidence.name)]:>12d}"
            for evidence in EVIDENCE_LEVELS
        )
        lines.append(f"{mode.name:12s}{cells}")
    return "\n".join(lines)


def render_figure6(series: list[dict]) -> str:
    lines = [
        "Figure 6: Person partitions per evidence level (one series per mode)",
        _bar(),
    ]
    for entry in series:
        points = "  ".join(f"{name}={count}" for name, count in entry["points"])
        lines.append(f"{entry['mode']:12s} {points}")
    return "\n".join(lines)


def render_table6(rows: Iterable[dict]) -> str:
    lines = [
        "Table 6: effect of constraints (PIM A, Person)",
        _bar(),
        f"{'Method':16s} {'Prec/Recall':>15s} {'#EntFP':>8s} {'#Nodes':>10s}"
        f"   {'paper P/R':>15s} {'#EntFP':>7s} {'#Nodes':>8s}",
    ]
    for row in rows:
        paper = PAPER_NUMBERS["table6"][row["method"]]
        lines.append(
            f"{row['method']:16s} {row['precision']:.3f}/{row['recall']:.4f}"
            f" {row['entities_with_false_positives']:>8d}"
            f" {row['graph_nodes']:>10d}"
            f"   {paper[0]:.3f}/{paper[1]:.4f} {paper[2]:>7d} {paper[3]:>8d}"
        )
    return "\n".join(lines)


def render_table7(rows: Iterable[dict]) -> str:
    lines = [
        "Table 7: the Cora citation benchmark",
        _bar(),
        f"{'Class':9s} {'InDepDec P/R F':>22s} {'DepGraph P/R F':>22s}"
        f"   {'paper InDepDec':>16s} {'paper DepGraph':>16s}",
    ]
    for row in rows:
        paper_i, paper_d = PAPER_NUMBERS["table7"][row["class"]]
        lines.append(
            f"{row['class']:9s} {_algo_cells(row, 'InDepDec'):>22s}"
            f" {_algo_cells(row, 'DepGraph'):>22s}"
            f"   {paper_i[0]:.3f}/{paper_i[1]:.3f} {paper_i[2]:.3f}"
            f"  {paper_d[0]:.3f}/{paper_d[1]:.3f} {paper_d[2]:.3f}"
        )
    lines.append("published comparison systems (articles):")
    for name, precision, recall in PAPER_NUMBERS["cora_citations"]:
        p = "-" if precision is None else f"{precision:.3f}"
        lines.append(f"  {name:40s} {p}/{recall:.3f}")
    return "\n".join(lines)
