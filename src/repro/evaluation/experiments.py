"""Experiment drivers: one function per table/figure of the paper.

Every driver returns plain data structures (lists of row dicts) so the
benchmark harness can both print the paper-style table and assert on
the expected qualitative shape. Generated datasets are cached per
(name, scale) within the process — the ablation grid alone reconciles
dataset A sixteen times and must not regenerate it each run.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from ..baselines import EVIDENCE_LEVELS, MODES, ablation_config, indepdec_config
from ..core.engine import Reconciler
from ..core.model import EngineConfig
from ..core.references import Reference, ReferenceStore
from ..core.result import ReconciliationResult
from ..datasets import Dataset, generate_cora_dataset, generate_pim_dataset
from ..datasets.pim import PIM_DATASET_NAMES
from ..domains import CoraDomainModel, PimDomainModel
from .metrics import (
    PairwiseScores,
    entities_with_false_positives,
    pairwise_scores,
    partition_count,
    partition_reduction,
)

__all__ = [
    "RunOutcome",
    "reconcile",
    "pim_dataset",
    "cora_dataset",
    "person_subset",
    "table1_dataset_properties",
    "table2_class_averages",
    "table3_person_subsets",
    "table4_per_dataset",
    "table5_ablation_grid",
    "figure6_series",
    "table6_constraints",
    "table7_cora",
]


@dataclass
class RunOutcome:
    """One reconciliation run scored against gold."""

    dataset: Dataset
    result: ReconciliationResult
    scores: dict[str, PairwiseScores]

    def partitions(self, class_name: str) -> int:
        return self.result.partition_count(class_name)


@functools.lru_cache(maxsize=16)
def pim_dataset(name: str, scale: float = 1.0) -> Dataset:
    return generate_pim_dataset(name, scale=scale)


@functools.lru_cache(maxsize=2)
def cora_dataset() -> Dataset:
    return generate_cora_dataset()


def reconcile(
    dataset: Dataset,
    config: EngineConfig,
    *,
    domain=None,
    classes: tuple[str, ...] | None = None,
) -> RunOutcome:
    """Run one configuration over *dataset* and score every class."""
    if domain is None:
        domain = (
            CoraDomainModel() if dataset.name == "Cora" else PimDomainModel()
        )
    reconciler = Reconciler(dataset.store, domain, config)
    result = reconciler.run()
    gold = dataset.gold.entity_of
    class_names = classes or dataset.store.schema.class_names
    scores = {
        class_name: pairwise_scores(result.clusters(class_name), gold)
        for class_name in class_names
    }
    return RunOutcome(dataset=dataset, result=result, scores=scores)


def person_subset(dataset: Dataset, source: str) -> Dataset:
    """The §5.3 PEmail / PArticle subset of a PIM dataset.

    ``source="email"`` keeps only the email-extracted person references;
    ``source="bibtex"`` keeps the bibliography-extracted person
    references together with their articles and venues (the association
    evidence the subset experiment is about).
    """
    keep: set[str] = set()
    for reference in dataset.store:
        if reference.class_name == "Person":
            if dataset.gold.source_of[reference.ref_id] == source:
                keep.add(reference.ref_id)
        elif source == "bibtex":
            keep.add(reference.ref_id)
    references = []
    for reference in dataset.store:
        if reference.ref_id not in keep:
            continue
        # Drop association links pointing outside the subset.
        filtered = {}
        for attribute, vals in reference.values.items():
            schema_class = dataset.store.schema.cls(reference.class_name)
            if schema_class.attribute(attribute).is_association:
                vals = tuple(v for v in vals if v in keep)
                if not vals:
                    continue
            filtered[attribute] = vals
        references.append(
            Reference(
                ref_id=reference.ref_id,
                class_name=reference.class_name,
                values=filtered,
                source=reference.source,
            )
        )
    from ..datasets.gold import GoldStandard

    gold = GoldStandard()
    for reference in references:
        gold.add(
            reference.ref_id,
            dataset.gold.entity_of[reference.ref_id],
            reference.class_name,
            dataset.gold.source_of[reference.ref_id],
        )
    store = ReferenceStore(dataset.store.schema, references)
    store.validate()
    label = "PEmail" if source == "email" else "PArticle"
    return Dataset(
        name=f"{dataset.name} {label}", store=store, gold=gold, world=dataset.world
    )


# ---------------------------------------------------------------------------
# Table 1 — dataset properties
# ---------------------------------------------------------------------------
def table1_dataset_properties(scale: float = 1.0) -> list[dict]:
    """#references, #entities and their ratio for PIM A-D and Cora."""
    rows = [pim_dataset(name, scale).summary() for name in PIM_DATASET_NAMES]
    rows.append(cora_dataset().summary())
    return rows


# ---------------------------------------------------------------------------
# Table 2 — average P/R/F per class over the PIM datasets
# ---------------------------------------------------------------------------
def table2_class_averages(scale: float = 1.0) -> list[dict]:
    """InDepDec vs DepGraph averaged over the four PIM datasets."""
    domain = PimDomainModel()
    sums: dict[tuple[str, str], list[float]] = {}
    for name in PIM_DATASET_NAMES:
        dataset = pim_dataset(name, scale)
        for algo, config in (
            ("InDepDec", indepdec_config(domain)),
            ("DepGraph", EngineConfig()),
        ):
            outcome = reconcile(dataset, config, domain=PimDomainModel())
            for class_name, score in outcome.scores.items():
                bucket = sums.setdefault((algo, class_name), [0.0, 0.0, 0.0])
                bucket[0] += score.precision
                bucket[1] += score.recall
                bucket[2] += score.f_measure
    count = len(PIM_DATASET_NAMES)
    rows = []
    for class_name in ("Person", "Article", "Venue"):
        row = {"class": class_name}
        for algo in ("InDepDec", "DepGraph"):
            precision, recall, f_measure = sums[(algo, class_name)]
            row[f"{algo}_precision"] = precision / count
            row[f"{algo}_recall"] = recall / count
            row[f"{algo}_f"] = f_measure / count
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Table 3 — Person references on Full / PArticle / PEmail
# ---------------------------------------------------------------------------
def table3_person_subsets(scale: float = 1.0) -> list[dict]:
    """Average Person scores on the full datasets and both subsets."""
    domain = PimDomainModel()
    rows = []
    for subset in ("Full", "PArticle", "PEmail"):
        sums = {"InDepDec": [0.0, 0.0], "DepGraph": [0.0, 0.0]}
        for name in PIM_DATASET_NAMES:
            dataset = pim_dataset(name, scale)
            if subset == "PArticle":
                dataset = person_subset(dataset, "bibtex")
            elif subset == "PEmail":
                dataset = person_subset(dataset, "email")
            for algo, config in (
                ("InDepDec", indepdec_config(domain)),
                ("DepGraph", EngineConfig()),
            ):
                outcome = reconcile(
                    dataset, config, domain=PimDomainModel(), classes=("Person",)
                )
                sums[algo][0] += outcome.scores["Person"].precision
                sums[algo][1] += outcome.scores["Person"].recall
        count = len(PIM_DATASET_NAMES)
        row = {"dataset": subset}
        for algo in ("InDepDec", "DepGraph"):
            precision = sums[algo][0] / count
            recall = sums[algo][1] / count
            f_measure = (
                2 * precision * recall / (precision + recall)
                if precision + recall
                else 0.0
            )
            row[f"{algo}_precision"] = precision
            row[f"{algo}_recall"] = recall
            row[f"{algo}_f"] = f_measure
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Table 4 — per-dataset Person performance
# ---------------------------------------------------------------------------
def table4_per_dataset(scale: float = 1.0) -> list[dict]:
    """Person P/R/F and partition counts for each PIM dataset."""
    domain = PimDomainModel()
    rows = []
    for name in PIM_DATASET_NAMES:
        dataset = pim_dataset(name, scale)
        row = {
            "dataset": name,
            "entities": dataset.gold.entity_count("Person"),
            "references": dataset.gold.reference_count("Person"),
        }
        for algo, config in (
            ("InDepDec", indepdec_config(domain)),
            ("DepGraph", EngineConfig()),
        ):
            outcome = reconcile(
                dataset, config, domain=PimDomainModel(), classes=("Person",)
            )
            score = outcome.scores["Person"]
            row[f"{algo}_precision"] = score.precision
            row[f"{algo}_recall"] = score.recall
            row[f"{algo}_f"] = score.f_measure
            row[f"{algo}_partitions"] = outcome.partitions("Person")
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Table 5 / Figure 6 — the evidence x mode ablation grid on PIM A
# ---------------------------------------------------------------------------
def table5_ablation_grid(scale: float = 1.0, dataset_name: str = "A") -> dict:
    """Person partition counts for every (mode, evidence) cell.

    Returns ``{"cells": {(mode, evidence): partitions}, "entities": N,
    "mode_reductions": ..., "evidence_reductions": ..., "overall": ...}``
    following Table 5's reduction formula.
    """
    dataset = pim_dataset(dataset_name, scale)
    entities = dataset.gold.entity_count("Person")
    cells: dict[tuple[str, str], int] = {}
    for mode in MODES:
        for evidence in EVIDENCE_LEVELS:
            config = ablation_config(evidence, mode)
            outcome = reconcile(
                dataset, config, domain=PimDomainModel(), classes=("Person",)
            )
            cells[(mode.name, evidence.name)] = outcome.partitions("Person")
    first_evidence = EVIDENCE_LEVELS[0].name
    last_evidence = EVIDENCE_LEVELS[-1].name
    first_mode = MODES[0].name
    last_mode = MODES[-1].name
    mode_reductions = {
        mode.name: partition_reduction(
            cells[(mode.name, first_evidence)],
            cells[(mode.name, last_evidence)],
            entities,
        )
        for mode in MODES
    }
    evidence_reductions = {
        evidence.name: partition_reduction(
            cells[(first_mode, evidence.name)],
            cells[(last_mode, evidence.name)],
            entities,
        )
        for evidence in EVIDENCE_LEVELS
    }
    overall = partition_reduction(
        cells[(first_mode, first_evidence)],
        cells[(last_mode, last_evidence)],
        entities,
    )
    return {
        "cells": cells,
        "entities": entities,
        "references": dataset.gold.reference_count("Person"),
        "mode_reductions": mode_reductions,
        "evidence_reductions": evidence_reductions,
        "overall": overall,
    }


def figure6_series(scale: float = 1.0, dataset_name: str = "A") -> list[dict]:
    """Figure 6 is the Table-5 grid plotted as partitions per evidence
    level, one series per mode; this returns exactly those series."""
    grid = table5_ablation_grid(scale, dataset_name)
    series = []
    for mode in MODES:
        series.append(
            {
                "mode": mode.name,
                "points": [
                    (evidence.name, grid["cells"][(mode.name, evidence.name)])
                    for evidence in EVIDENCE_LEVELS
                ],
            }
        )
    return series


# ---------------------------------------------------------------------------
# Table 6 — effect of constraints on PIM A
# ---------------------------------------------------------------------------
def table6_constraints(scale: float = 1.0, dataset_name: str = "A") -> list[dict]:
    """DepGraph vs Non-Constraint: precision/recall, entities involved
    in false positives, and dependency-graph size."""
    dataset = pim_dataset(dataset_name, scale)
    rows = []
    for label, config in (
        ("DepGraph", EngineConfig()),
        ("Non-Constraint", EngineConfig(constraints=False)),
    ):
        outcome = reconcile(
            dataset, config, domain=PimDomainModel(), classes=("Person",)
        )
        score = outcome.scores["Person"]
        rows.append(
            {
                "method": label,
                "precision": score.precision,
                "recall": score.recall,
                "entities_with_false_positives": entities_with_false_positives(
                    outcome.result.clusters("Person"), dataset.gold.entity_of
                ),
                "graph_nodes": outcome.result.stats.graph_nodes,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Table 7 — the Cora benchmark
# ---------------------------------------------------------------------------
def table7_cora() -> list[dict]:
    """InDepDec vs DepGraph per class on the Cora-like corpus."""
    dataset = cora_dataset()
    domain = CoraDomainModel()
    outcomes = {
        algo: reconcile(dataset, config, domain=CoraDomainModel())
        for algo, config in (
            ("InDepDec", indepdec_config(domain)),
            ("DepGraph", EngineConfig()),
        )
    }
    rows = []
    for class_name in ("Person", "Article", "Venue"):
        row = {"class": class_name}
        for algo, outcome in outcomes.items():
            score = outcome.scores[class_name]
            row[f"{algo}_precision"] = score.precision
            row[f"{algo}_recall"] = score.recall
            row[f"{algo}_f"] = score.f_measure
        rows.append(row)
    return rows
