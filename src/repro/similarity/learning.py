"""Learning the linear S_rv weights from labelled pairs.

The paper sets the Equation-1 weights by hand but notes (§4, §7) that
they "can be learned from training data". This module implements that
future-work direction with two small, dependency-free learners:

* :func:`fit_least_squares` — closed-form ridge regression of the
  match label on the evidence vector, then projection onto the simplex
  (non-negative weights summing to at most 1, as Equation 1 requires
  for the score to stay in [0, 1]).
* :class:`PerceptronWeightLearner` — an online margin perceptron for
  streams of labelled pairs (user-feedback style training).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["LabeledPair", "fit_least_squares", "PerceptronWeightLearner", "project_to_simplex"]


@dataclass(frozen=True)
class LabeledPair:
    """One training example: an evidence vector and its match label."""

    features: tuple[float, ...]
    is_match: bool


def project_to_simplex(weights: np.ndarray, *, total: float = 1.0) -> np.ndarray:
    """Project *weights* onto {w : w >= 0, sum(w) <= total}.

    Uses the standard sorted-threshold algorithm for the probability
    simplex, applied only when the positive part exceeds *total*.
    """
    clipped = np.maximum(weights, 0.0)
    if clipped.sum() <= total:
        return clipped
    descending = np.sort(clipped)[::-1]
    cumulative = np.cumsum(descending) - total
    indices = np.arange(1, len(clipped) + 1)
    mask = descending - cumulative / indices > 0
    rho = int(np.nonzero(mask)[0][-1]) + 1
    theta = cumulative[rho - 1] / rho
    return np.maximum(clipped - theta, 0.0)


def fit_least_squares(
    pairs: Sequence[LabeledPair], *, ridge: float = 1e-3, total: float = 1.0
) -> tuple[float, ...]:
    """Fit Equation-1 weights by ridge regression + simplex projection.

    The regression target is 1.0 for matches and 0.0 for non-matches,
    so the learned S_rv approximates the match probability. Raises
    ``ValueError`` on empty or ragged input.
    """
    if not pairs:
        raise ValueError("need at least one labelled pair")
    width = len(pairs[0].features)
    if any(len(pair.features) != width for pair in pairs):
        raise ValueError("feature vectors must share one length")
    design = np.array([pair.features for pair in pairs], dtype=float)
    target = np.array([1.0 if pair.is_match else 0.0 for pair in pairs])
    gram = design.T @ design + ridge * np.eye(width)
    weights = np.linalg.solve(gram, design.T @ target)
    return tuple(float(w) for w in project_to_simplex(weights, total=total))


class PerceptronWeightLearner:
    """Online margin perceptron for S_rv weights.

    Feed labelled pairs with :meth:`update`; read :attr:`weights` at
    any time. Updates that would leave the feasible region are
    projected back, so the current weights always form a valid
    Equation-1 parameterisation.
    """

    def __init__(
        self,
        n_features: int,
        *,
        learning_rate: float = 0.1,
        margin: float = 0.15,
        threshold: float = 0.5,
        total: float = 1.0,
    ) -> None:
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        self._weights = np.full(n_features, 1.0 / n_features)
        self._learning_rate = learning_rate
        self._margin = margin
        self._threshold = threshold
        self._total = total
        self.updates_applied = 0

    @property
    def weights(self) -> tuple[float, ...]:
        return tuple(float(w) for w in self._weights)

    def score(self, features: Sequence[float]) -> float:
        """Current S_rv for an evidence vector."""
        return float(np.dot(self._weights, np.asarray(features, dtype=float)))

    def update(self, pair: LabeledPair) -> bool:
        """Apply one online update; return True when weights moved."""
        features = np.asarray(pair.features, dtype=float)
        if features.shape != self._weights.shape:
            raise ValueError("feature width mismatch")
        score = float(np.dot(self._weights, features))
        if pair.is_match and score < self._threshold + self._margin:
            self._weights = self._weights + self._learning_rate * features
        elif not pair.is_match and score > self._threshold - self._margin:
            self._weights = self._weights - self._learning_rate * features
        else:
            return False
        self._weights = project_to_simplex(self._weights, total=self._total)
        self.updates_applied += 1
        return True

    def fit(self, pairs: Sequence[LabeledPair], *, epochs: int = 10) -> tuple[float, ...]:
        """Run several epochs over *pairs*; return the final weights."""
        for _ in range(epochs):
            moved = False
            for pair in pairs:
                moved = self.update(pair) or moved
            if not moved:
                break
        return self.weights
