"""Registry of the similarity layer's memoisation caches.

Comparator modules (and the domain models built on them) wrap hot pure
functions in ``functools.lru_cache``. A long-lived process — resumed
runs, benchmark loops, services reconciling many datasets — would
otherwise accumulate entries for values it will never see again, so
every such cache registers itself here and
:func:`clear_similarity_caches` empties them all at once.
"""

from __future__ import annotations

__all__ = ["register_cache", "clear_similarity_caches", "registered_caches"]

_REGISTRY: list = []


def register_cache(cached):
    """Register an ``lru_cache``-wrapped function (anything exposing
    ``cache_clear``) for :func:`clear_similarity_caches`; returns it so
    the call composes with the decorator."""
    _REGISTRY.append(cached)
    return cached


def registered_caches() -> tuple:
    return tuple(_REGISTRY)


def clear_similarity_caches() -> int:
    """Empty every registered cache; returns how many were cleared."""
    for cached in _REGISTRY:
        cached.cache_clear()
    return len(_REGISTRY)
