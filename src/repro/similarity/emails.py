"""Email-address parsing and comparison.

Email addresses are the closest thing to a key in personal information:
two references sharing an address denote the same person (modulo
mailing lists). But one person owns several addresses, addresses get
mistyped, and an account often encodes the owner's name — all of which
this module models.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .strings import damerau_levenshtein_similarity
from .tokens import normalize

__all__ = [
    "ParsedEmail",
    "EmailFeatures",
    "email_features",
    "parse_email",
    "email_similarity",
    "email_similarity_features",
    "email_upper_bound",
    "same_server",
]

_EMAIL_RE = re.compile(r"^\s*([^@\s]+)@([^@\s]+)\s*$")
# Separators people use inside account names: john.doe, john_doe, john-doe.
_ACCOUNT_SEP_RE = re.compile(r"[._\-+]")


@dataclass(frozen=True)
class ParsedEmail:
    """An email address split into account and domain.

    ``domain_core`` strips the host part down to the organisation
    ("csail.mit.edu" -> "mit"), which lets us treat addresses at
    different hosts of one institution as same-server for the paper's
    constraint 3 ("a person has a unique account on an email server").
    """

    account: str
    domain: str
    raw: str

    @property
    def account_tokens(self) -> tuple[str, ...]:
        return tuple(token for token in _ACCOUNT_SEP_RE.split(self.account) if token)

    @property
    def domain_core(self) -> str:
        parts = self.domain.split(".")
        if len(parts) >= 2:
            return parts[-2]
        return self.domain


def parse_email(address: str) -> ParsedEmail | None:
    """Parse *address*; return ``None`` when it is not a valid address.

    >>> parse_email("stonebraker@csail.mit.edu").account
    'stonebraker'
    >>> parse_email("not an email") is None
    True
    """
    match = _EMAIL_RE.match(normalize(address))
    if match is None:
        return None
    account, domain = match.groups()
    return ParsedEmail(account=account, domain=domain, raw=f"{account}@{domain}")


def same_server(left: ParsedEmail | str, right: ParsedEmail | str) -> bool:
    """True when the two addresses live on the same mail organisation."""
    left = parse_email(left) if isinstance(left, str) else left
    right = parse_email(right) if isinstance(right, str) else right
    if left is None or right is None:
        return False
    return left.domain_core == right.domain_core


@dataclass(frozen=True)
class EmailFeatures:
    """Parsed address plus the derived pieces :func:`email_similarity`
    needs, computed once per distinct value instead of once per pair.

    ``parsed`` is ``None`` for strings that are not addresses at all,
    mirroring :func:`parse_email`."""

    parsed: ParsedEmail | None
    #: the account's separator-split tokens, as a set.
    tokens: frozenset[str]
    account_length: int


def email_features(value: str) -> EmailFeatures:
    parsed = parse_email(value)
    if parsed is None:
        return EmailFeatures(parsed=None, tokens=frozenset(), account_length=0)
    return EmailFeatures(
        parsed=parsed,
        tokens=frozenset(parsed.account_tokens),
        account_length=len(parsed.account),
    )


def email_upper_bound(left: EmailFeatures, right: EmailFeatures) -> float:
    """Cheap upper bound on ``email_similarity`` of the two addresses.

    Sound because every branch of the comparator that can exceed the
    returned bound is ruled out by a precomputed feature: account edit
    similarity is at most the account-length ratio, and the token
    branches require the exact set relations tested here.
    """
    if left.parsed is None or right.parsed is None:
        return 0.0
    if left.parsed.raw == right.parsed.raw:
        return 1.0
    length_bound = 1.0 - abs(left.account_length - right.account_length) / max(
        left.account_length, right.account_length
    )
    if length_bound >= 0.85:
        # The typo-range branch (and everything below it) stays <= 0.90.
        return 0.90
    if left.tokens and left.tokens == right.tokens:
        return 0.88
    shared = left.tokens & right.tokens
    if shared and max(len(token) for token in shared) >= 4:
        return 0.65
    return length_bound * 0.5


def email_similarity_features(
    left: EmailFeatures, right: EmailFeatures, floor: float = 0.0
) -> float:
    """:func:`email_similarity` over precomputed features (exact)."""
    if left.parsed is None or right.parsed is None:
        return 0.0
    return email_similarity(left.parsed, right.parsed)


def email_similarity(left: ParsedEmail | str, right: ParsedEmail | str) -> float:
    """Similarity of two email addresses in [0, 1].

    Exact equality is key-like evidence (1.0). Same account at a
    different domain is strong (the same handle reused across
    employers). Otherwise similarity decays with account edit distance;
    the domain contributes only a mild boost because shared domains are
    common among colleagues.
    """
    left = parse_email(left) if isinstance(left, str) else left
    right = parse_email(right) if isinstance(right, str) else right
    if left is None or right is None:
        return 0.0
    if left.raw == right.raw:
        return 1.0
    account_sim = damerau_levenshtein_similarity(left.account, right.account)
    if left.account == right.account:
        # Same handle on another server: suggestive but never decisive,
        # and deliberately below t_rv = 0.7 — "hao@" belongs to many
        # Haos, so this evidence must not open the door to boolean
        # boosts either; reconciling two accounts of one person is the
        # name-vs-email channel's job (§5.3's Name&Email discussion).
        return 0.68
    same_domain = left.domain_core == right.domain_core
    if account_sim >= 0.85:
        # Typo-range accounts: likely the same mailbox when the domain
        # agrees, plausible otherwise.
        return 0.90 if same_domain else 0.68
    # Token-level containment: "john.doe" vs "john_doe" style pairs.
    left_tokens = set(left.account_tokens)
    right_tokens = set(right.account_tokens)
    if left_tokens and left_tokens == right_tokens:
        return 0.88 if same_domain else 0.68
    shared = left_tokens & right_tokens
    if shared and max(len(token) for token in shared) >= 4:
        return 0.65 if same_domain else 0.55
    return account_sim * (0.5 if same_domain else 0.4)
