"""Attribute-level similarity substrate.

Everything the reconciliation engine knows about *strings* lives here:
generic metrics (:mod:`repro.similarity.strings`), domain comparators
for names, emails, venues, titles and pages, the cross-attribute
name-vs-email evidence, corpus TF-IDF weighting, and weight learning.
"""

from .caches import clear_similarity_caches, register_cache, registered_caches
from .corpus import TfIdfCorpus
from .emails import (
    EmailFeatures,
    ParsedEmail,
    email_features,
    email_similarity,
    email_similarity_features,
    email_upper_bound,
    parse_email,
    same_server,
)
from .name_email import name_email_similarity
from .names import (
    NameCompat,
    ParsedName,
    full_name_pair,
    name_compatibility,
    name_similarity,
    parse_name,
)
from .nicknames import all_name_forms, canonical_given_names, share_canonical_given_name
from .phonetic import metaphone, phonetic_similarity, soundex
from .strings import (
    containment_similarity,
    damerau_levenshtein_distance,
    damerau_levenshtein_similarity,
    damerau_levenshtein_within,
    dice_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    longest_common_substring_similarity,
    monge_elkan_similarity,
    ngram_similarity,
    prefix_similarity,
)
from .titles import (
    TitleFeatures,
    pages_similarity,
    title_features,
    title_similarity,
    title_similarity_features,
    title_upper_bound,
    year_similarity,
)
from .tokens import acronym_of, is_acronym_of, normalize, tokenize
from .venues import (
    VenueFeatures,
    venue_features,
    venue_name_similarity,
    venue_similarity_features,
    venue_upper_bound,
)

__all__ = [
    "TfIdfCorpus",
    "clear_similarity_caches",
    "register_cache",
    "registered_caches",
    "EmailFeatures",
    "email_features",
    "email_similarity_features",
    "email_upper_bound",
    "TitleFeatures",
    "title_features",
    "title_similarity_features",
    "title_upper_bound",
    "VenueFeatures",
    "venue_features",
    "venue_similarity_features",
    "venue_upper_bound",
    "damerau_levenshtein_within",
    "ParsedEmail",
    "email_similarity",
    "parse_email",
    "same_server",
    "name_email_similarity",
    "NameCompat",
    "ParsedName",
    "full_name_pair",
    "name_compatibility",
    "name_similarity",
    "parse_name",
    "all_name_forms",
    "canonical_given_names",
    "share_canonical_given_name",
    "metaphone",
    "phonetic_similarity",
    "soundex",
    "containment_similarity",
    "damerau_levenshtein_distance",
    "damerau_levenshtein_similarity",
    "dice_similarity",
    "jaccard_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "levenshtein_distance",
    "levenshtein_similarity",
    "longest_common_substring_similarity",
    "monge_elkan_similarity",
    "ngram_similarity",
    "prefix_similarity",
    "pages_similarity",
    "title_similarity",
    "year_similarity",
    "acronym_of",
    "is_acronym_of",
    "normalize",
    "tokenize",
    "venue_name_similarity",
]
