"""Text normalisation and tokenisation utilities.

Every similarity function in :mod:`repro.similarity` works on strings that
have been pushed through the normalisers in this module, so that case,
punctuation and diacritic noise never reaches the metric code.
"""

from __future__ import annotations

import re
import unicodedata
from collections import Counter
from collections.abc import Iterable, Sequence

__all__ = [
    "normalize",
    "strip_accents",
    "tokenize",
    "token_counts",
    "acronym_of",
    "is_acronym_of",
    "expand_whitespace",
    "STOPWORDS",
]

# Words carrying no discriminative signal in titles and venue names.
STOPWORDS = frozenset(
    {
        "a",
        "an",
        "and",
        "at",
        "by",
        "for",
        "in",
        "of",
        "on",
        "or",
        "the",
        "to",
        "with",
    }
)

_WHITESPACE_RE = re.compile(r"\s+")
_TOKEN_RE = re.compile(r"[a-z0-9]+")


def strip_accents(text: str) -> str:
    """Return *text* with combining diacritical marks removed.

    >>> strip_accents("Müller-Gärtner")
    'Muller-Gartner'
    """
    if text.isascii():
        return text
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def expand_whitespace(text: str) -> str:
    """Collapse runs of whitespace into single spaces and strip ends."""
    return _WHITESPACE_RE.sub(" ", text).strip()


def normalize(text: str) -> str:
    """Lower-case, de-accent and whitespace-normalise *text*.

    Punctuation is preserved: token-level helpers decide how to treat
    it, and name parsing needs to see commas and periods.
    """
    return expand_whitespace(strip_accents(text).lower())


def tokenize(text: str, *, drop_stopwords: bool = False) -> list[str]:
    """Split *text* into lower-case alphanumeric tokens.

    >>> tokenize("Distributed Query-Processing!")
    ['distributed', 'query', 'processing']
    """
    tokens = _TOKEN_RE.findall(normalize(text))
    if drop_stopwords:
        tokens = [token for token in tokens if token not in STOPWORDS]
    return tokens


def token_counts(text: str, *, drop_stopwords: bool = False) -> Counter[str]:
    """Return a multiset of the tokens of *text*."""
    return Counter(tokenize(text, drop_stopwords=drop_stopwords))


def acronym_of(tokens: Sequence[str] | str, *, skip_stopwords: bool = True) -> str:
    """Build the acronym of a token sequence (or raw string).

    >>> acronym_of("ACM Conference on Management of Data")
    'acmd'

    Note stopwords ("on", "of") are skipped by default, matching how
    acronyms such as "SIGMOD" are conventionally formed.
    """
    if isinstance(tokens, str):
        tokens = tokenize(tokens)
    if skip_stopwords:
        tokens = [token for token in tokens if token not in STOPWORDS]
    return "".join(token[0] for token in tokens if token)


def is_acronym_of(short: str, long_form: str | Iterable[str]) -> bool:
    """Check whether *short* could abbreviate *long_form*.

    The test is subsequence-based so that partial acronyms also match:
    each character of *short* must pick off the initial of a token of
    *long_form*, in order.

    >>> is_acronym_of("vldb", "Very Large Data Bases")
    True
    >>> is_acronym_of("cacm", "Communications of the ACM")
    False
    """
    short_tokens = tokenize(short)
    if len(short_tokens) != 1:
        return False
    candidate = short_tokens[0]
    if len(candidate) < 2:
        return False
    if len(candidate) < 3:
        return False
    if isinstance(long_form, str):
        long_tokens = tokenize(long_form, drop_stopwords=True)
    else:
        long_tokens = [token for token in long_form if token not in STOPWORDS]
    if len(long_tokens) < 2:
        return False
    initials = "".join(token[0] for token in long_tokens if token)
    # The candidate must cover the full initials string, optionally
    # skipping up to two leading brand/boilerplate tokens ("IEEE
    # International Conference on Data Engineering" -> "icde"). A loose
    # subsequence test would let "acm" claim to abbreviate any phrase
    # with an a..c..m in its initials.
    for skip in range(0, 3):
        if len(initials) - skip < 2:
            break
        if candidate == initials[skip:]:
            return True
    return False
