"""Corpus-weighted token similarity (TF-IDF / soft-TF-IDF).

Long text attributes such as article titles benefit from weighting
rare tokens above ubiquitous ones. :class:`TfIdfCorpus` accumulates
document frequencies over the values seen in a dataset and provides
cosine and soft-cosine similarities against those weights.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable

from .strings import jaro_winkler_similarity
from .tokens import token_counts

__all__ = ["TfIdfCorpus"]


class TfIdfCorpus:
    """Incremental document-frequency statistics over string values.

    The corpus can keep absorbing documents; weights reflect whatever
    has been added so far. With an empty corpus every token has equal
    weight, so the similarities degrade gracefully to unweighted
    cosine.
    """

    def __init__(self, documents: Iterable[str] = ()) -> None:
        self._doc_count = 0
        self._doc_frequency: Counter[str] = Counter()
        for document in documents:
            self.add(document)

    def __len__(self) -> int:
        return self._doc_count

    def add(self, document: str) -> None:
        """Register one document's tokens in the frequency statistics."""
        tokens = set(token_counts(document))
        if not tokens:
            return
        self._doc_count += 1
        self._doc_frequency.update(tokens)

    def idf(self, token: str) -> float:
        """Smoothed inverse document frequency of *token*."""
        if self._doc_count == 0:
            return 1.0
        return math.log(
            (1 + self._doc_count) / (1 + self._doc_frequency.get(token, 0))
        ) + 1.0

    def _weight_vector(self, text: str) -> dict[str, float]:
        counts = token_counts(text)
        return {token: count * self.idf(token) for token, count in counts.items()}

    def cosine(self, left: str, right: str) -> float:
        """TF-IDF cosine similarity of two strings in [0, 1]."""
        left_vec = self._weight_vector(left)
        right_vec = self._weight_vector(right)
        if not left_vec and not right_vec:
            return 1.0
        if not left_vec or not right_vec:
            return 0.0
        dot = sum(
            weight * right_vec[token]
            for token, weight in left_vec.items()
            if token in right_vec
        )
        left_norm = math.sqrt(sum(weight * weight for weight in left_vec.values()))
        right_norm = math.sqrt(sum(weight * weight for weight in right_vec.values()))
        if left_norm == 0.0 or right_norm == 0.0:
            return 0.0
        return min(dot / (left_norm * right_norm), 1.0)

    def soft_cosine(self, left: str, right: str, *, threshold: float = 0.90) -> float:
        """Soft-TF-IDF: tokens match when close by Jaro-Winkler.

        This variant (Cohen et al. 2003) lets "stonbraker" pay into the
        "stonebraker" bucket. Tokens pair greedily above *threshold*.
        """
        left_vec = self._weight_vector(left)
        right_vec = self._weight_vector(right)
        if not left_vec and not right_vec:
            return 1.0
        if not left_vec or not right_vec:
            return 0.0
        # Greedy best-first alignment of close tokens.
        pairs: list[tuple[float, str, str]] = []
        for left_token in left_vec:
            for right_token in right_vec:
                score = (
                    1.0
                    if left_token == right_token
                    else jaro_winkler_similarity(left_token, right_token)
                )
                if score >= threshold:
                    pairs.append((score, left_token, right_token))
        pairs.sort(reverse=True)
        used_left: set[str] = set()
        used_right: set[str] = set()
        dot = 0.0
        for score, left_token, right_token in pairs:
            if left_token in used_left or right_token in used_right:
                continue
            used_left.add(left_token)
            used_right.add(right_token)
            dot += score * left_vec[left_token] * right_vec[right_token]
        left_norm = math.sqrt(sum(weight * weight for weight in left_vec.values()))
        right_norm = math.sqrt(sum(weight * weight for weight in right_vec.values()))
        if left_norm == 0.0 or right_norm == 0.0:
            return 0.0
        return min(dot / (left_norm * right_norm), 1.0)
