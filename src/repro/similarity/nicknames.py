"""Nickname knowledge base for person-name matching.

The paper's running example reconciles "mike" with "Michael
Stonebraker"; resolving such hypocorisms requires a (small, curated)
nickname table. The table below covers the common English given names
plus the transliteration habits the PIM generator uses for Chinese and
Indian names.
"""

from __future__ import annotations

import functools

from .caches import register_cache

__all__ = [
    "canonical_given_names",
    "share_canonical_given_name",
    "all_name_forms",
    "KNOWN_GIVEN_NAMES",
    "NICKNAMES",
]

# nickname -> set of formal given names it may stand for.
NICKNAMES: dict[str, frozenset[str]] = {
    nickname: frozenset(formals)
    for nickname, formals in {
        "abby": ("abigail",),
        "al": ("albert", "alfred", "alan", "alvin"),
        "alex": ("alexander", "alexandra", "alexis"),
        "andy": ("andrew", "anderson"),
        "angie": ("angela",),
        "art": ("arthur",),
        "becky": ("rebecca",),
        "ben": ("benjamin", "bennett"),
        "bert": ("albert", "robert", "herbert"),
        "beth": ("elizabeth", "bethany"),
        "betty": ("elizabeth",),
        "bill": ("william",),
        "billy": ("william",),
        "bob": ("robert",),
        "bobby": ("robert",),
        "brad": ("bradley", "bradford"),
        "cathy": ("catherine", "kathryn"),
        "charlie": ("charles", "charlotte"),
        "chris": ("christopher", "christine", "christian", "christina"),
        "chuck": ("charles",),
        "cindy": ("cynthia",),
        "dan": ("daniel",),
        "danny": ("daniel",),
        "dave": ("david",),
        "davey": ("david",),
        "deb": ("deborah", "debra"),
        "debbie": ("deborah", "debra"),
        "dick": ("richard",),
        "don": ("donald",),
        "donny": ("donald",),
        "doug": ("douglas",),
        "ed": ("edward", "edwin", "edmund"),
        "eddie": ("edward", "edwin"),
        "fred": ("frederick", "alfred"),
        "gabe": ("gabriel",),
        "gene": ("eugene",),
        "greg": ("gregory",),
        "hank": ("henry",),
        "harry": ("harold", "henry", "harrison"),
        "jack": ("john", "jackson"),
        "jake": ("jacob",),
        "jeff": ("jeffrey", "jefferson"),
        "jen": ("jennifer",),
        "jenny": ("jennifer",),
        "jerry": ("gerald", "jerome"),
        "jim": ("james",),
        "jimmy": ("james",),
        "joe": ("joseph",),
        "joey": ("joseph",),
        "john": ("jonathan",),
        "jon": ("jonathan", "john"),
        "josh": ("joshua",),
        "judy": ("judith",),
        "kate": ("katherine", "kathryn", "catherine"),
        "kathy": ("katherine", "kathryn", "catherine"),
        "katie": ("katherine", "kathryn"),
        "ken": ("kenneth",),
        "kenny": ("kenneth",),
        "kim": ("kimberly",),
        "larry": ("lawrence", "laurence"),
        "len": ("leonard",),
        "leo": ("leonard", "leopold"),
        "liz": ("elizabeth",),
        "lou": ("louis", "louise"),
        "maggie": ("margaret",),
        "mandy": ("amanda",),
        "matt": ("matthew",),
        "meg": ("margaret", "megan"),
        "mike": ("michael",),
        "mikey": ("michael",),
        "nate": ("nathan", "nathaniel"),
        "ned": ("edward", "edmund"),
        "nick": ("nicholas",),
        "pam": ("pamela",),
        "pat": ("patrick", "patricia"),
        "patty": ("patricia",),
        "peg": ("margaret",),
        "peggy": ("margaret",),
        "pete": ("peter",),
        "phil": ("philip", "phillip"),
        "rafa": ("rafael",),
        "ray": ("raymond",),
        "rich": ("richard",),
        "rick": ("richard", "frederick"),
        "ricky": ("richard",),
        "rob": ("robert",),
        "robbie": ("robert",),
        "ron": ("ronald",),
        "ronnie": ("ronald", "veronica"),
        "rosie": ("rosemary", "rose", "rosalind"),
        "russ": ("russell",),
        "sam": ("samuel", "samantha"),
        "sammy": ("samuel",),
        "sandy": ("sandra", "alexander"),
        "steve": ("steven", "stephen"),
        "stevie": ("steven", "stephen"),
        "stu": ("stuart",),
        "sue": ("susan", "suzanne"),
        "susie": ("susan", "suzanne"),
        "ted": ("theodore", "edward"),
        "teddy": ("theodore", "edward"),
        "terry": ("terence", "theresa"),
        "tim": ("timothy",),
        "timmy": ("timothy",),
        "toby": ("tobias",),
        "tom": ("thomas",),
        "tommy": ("thomas",),
        "tony": ("anthony", "antonio"),
        "trish": ("patricia",),
        "vicky": ("victoria",),
        "vince": ("vincent",),
        "walt": ("walter",),
        "wendy": ("gwendolyn",),
        "will": ("william",),
        "willy": ("william",),
        "zach": ("zachary",),
        # Transliteration-style short forms used by the synthetic
        # generator for Chinese and Indian given names.
        "xiao": ("xiaoming", "xiaohui", "xiaowei", "xiaoyan"),
        "raj": ("rajesh", "rajiv", "rajan", "rajendra"),
        "venkat": ("venkatesh", "venkataraman"),
        "subra": ("subramanian",),
        "krish": ("krishna", "krishnan"),
    }.items()
}


_FORMAL_TO_NICKNAMES: dict[str, set[str]] = {}
for _nickname, _formals in NICKNAMES.items():
    for _formal in _formals:
        _FORMAL_TO_NICKNAMES.setdefault(_formal, set()).add(_nickname)


@register_cache
@functools.lru_cache(maxsize=8192)
def all_name_forms(name: str) -> frozenset[str]:
    """Every form *name* is known under: itself, its formal expansions,
    and the nicknames of those formals.

    >>> "debbie" in all_name_forms("deborah")
    True
    >>> "deborah" in all_name_forms("deb")
    True
    """
    name = name.lower()
    forms = {name} | NICKNAMES.get(name, frozenset())
    for formal in list(forms):
        forms |= _FORMAL_TO_NICKNAMES.get(formal, set())
    return frozenset(forms)


#: All name tokens the table knows (nicknames and formal names alike).
KNOWN_GIVEN_NAMES: frozenset[str] = frozenset(NICKNAMES) | frozenset(
    formal for formals in NICKNAMES.values() for formal in formals
)


@register_cache
@functools.lru_cache(maxsize=8192)
def canonical_given_names(name: str) -> frozenset[str]:
    """Return the set of formal given names *name* may stand for.

    A formal name canonicalises to itself; a known nickname
    canonicalises to its formal expansions *and* itself (because some
    people use the short form as their legal name).
    """
    name = name.lower()
    formals = NICKNAMES.get(name, frozenset())
    return formals | {name}


@register_cache
@functools.lru_cache(maxsize=8192)
def share_canonical_given_name(left: str, right: str) -> bool:
    """True when the two given names may denote the same formal name.

    >>> share_canonical_given_name("Mike", "Michael")
    True
    >>> share_canonical_given_name("Mike", "Matt")
    False
    """
    return bool(canonical_given_names(left) & canonical_given_names(right))
