"""Person-name parsing and comparison.

Person references in complex information spaces mention the same person
in wildly different formats: ``"Michael Stonebraker"``,
``"Stonebraker, M."``, ``"M. R. Stonebraker"``, or just ``"mike"``.
This module parses such mentions into a structured form and compares
two parsed names for *compatibility* (could they denote the same
person?) and graded similarity.

The compatibility levels feed two different parts of the engine:

* the similarity score of a candidate pair (real-valued evidence), and
* the paper's §5.3 constraint 2 ("same first name but completely
  different last name ... are distinct persons"), which needs an
  explicit *conflict* signal rather than just a low score.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from .nicknames import KNOWN_GIVEN_NAMES, all_name_forms, share_canonical_given_name
from .strings import damerau_levenshtein_similarity_at_least
from .tokens import normalize

__all__ = ["ParsedName", "NameCompat", "parse_name", "name_compatibility", "name_similarity"]

_SUFFIXES = frozenset({"jr", "sr", "ii", "iii", "iv", "phd", "md"})
_NAME_TOKEN_RE = re.compile(r"[a-z]+\.?|[a-z]\.")


class NameCompat(enum.Enum):
    """Qualitative relation between two person-name mentions."""

    EQUAL = "equal"  # same tokens after normalisation
    COMPATIBLE = "compatible"  # one could abbreviate / nickname the other
    SIMILAR = "similar"  # close by edit distance (typo range)
    CONFLICT = "conflict"  # same given name, clearly different surname
    # (or vice versa) - the §5.3 constraint-2 signal
    UNRELATED = "unrelated"  # nothing in common


@dataclass(frozen=True)
class ParsedName:
    """A person-name mention split into given / middle / surname parts.

    ``given`` and ``middle`` hold either full words ("michael") or bare
    initials ("m"). A part is the empty string when absent. ``raw``
    preserves the normalised mention for fallback string comparison.
    """

    given: str = ""
    middle: tuple[str, ...] = field(default_factory=tuple)
    surname: str = ""
    raw: str = ""

    @property
    def given_is_initial(self) -> bool:
        return len(self.given) == 1

    @property
    def is_single_token(self) -> bool:
        """True for mononym mentions such as ``"mike"``."""
        return bool(self.given) and not self.surname

    @property
    def is_full(self) -> bool:
        """True when both a spelled-out given name and a surname exist."""
        return bool(self.surname) and bool(self.given) and not self.given_is_initial


def _clean_tokens(text: str) -> list[str]:
    tokens = _NAME_TOKEN_RE.findall(normalize(text))
    cleaned = []
    for token in tokens:
        token = token.rstrip(".")
        if token and token not in _SUFFIXES:
            cleaned.append(token)
    return cleaned


def parse_name(mention: str) -> ParsedName:
    """Parse a person-name mention into a :class:`ParsedName`.

    Handles both natural order ("Michael R. Stonebraker") and
    bibliography order ("Stonebraker, Michael R."); in the comma form
    the head is always taken as the surname.

    >>> parse_name("Stonebraker, M.").surname
    'stonebraker'
    >>> parse_name("Stonebraker, M.").given
    'm'
    >>> parse_name("mike").is_single_token
    True
    """
    normalized = normalize(mention)
    if "," in normalized:
        head, _, tail = normalized.partition(",")
        surname_tokens = _clean_tokens(head)
        rest = _clean_tokens(tail)
        surname = " ".join(surname_tokens)
        given = rest[0] if rest else ""
        middle = tuple(rest[1:])
        return ParsedName(given=given, middle=middle, surname=surname, raw=normalized)
    tokens = _clean_tokens(normalized)
    if not tokens:
        return ParsedName(raw=normalized)
    if len(tokens) == 1:
        return ParsedName(given=tokens[0], raw=normalized)
    return ParsedName(
        given=tokens[0],
        middle=tuple(tokens[1:-1]),
        surname=tokens[-1],
        raw=normalized,
    )


def _given_names_agree(left: str, right: str) -> bool:
    """Compatible given names: equal, initial-match, or nickname pair."""
    if not left or not right:
        return True  # a missing part never disagrees
    if left == right:
        return True
    if len(left) == 1 or len(right) == 1:
        return left[0] == right[0]
    if share_canonical_given_name(left, right):
        return True
    # Prefix abbreviation without a period: "rob" ~ "robert".
    shorter, longer = sorted((left, right), key=len)
    return len(shorter) >= 3 and longer.startswith(shorter)


def _surnames_agree(left: str, right: str) -> bool:
    if not left or not right:
        return True
    if left == right:
        return True
    # Hyphenated / compound surnames: agreement on any component.
    left_parts = set(left.split())
    right_parts = set(right.split())
    if left_parts & right_parts:
        return True
    return damerau_levenshtein_similarity_at_least(left, right, 0.90) >= 0.90


def _surnames_conflict(left: str, right: str) -> bool:
    """Completely different last names in the §5.3 constraint-2 sense.

    Deliberately conservative: negative evidence is irreversible, so
    two surnames that could be typo variants of one name ("Bnnett" /
    "Bennet") must not conflict. The 0.60 bar keeps one-edit typos of a
    common original on the safe side.
    """
    if not left or not right:
        return False
    if _surnames_agree(left, right):
        return False
    return damerau_levenshtein_similarity_at_least(left, right, 0.60) < 0.60


def _givens_conflict(left: str, right: str) -> bool:
    """Completely different spelled-out first names.

    Compares every known form of each name (formal expansions plus
    their nicknames) so that a typo'd nickname ("debb") never conflicts
    with the formal name ("Deborah"), and a shared >= 3-letter prefix
    always exonerates.
    """
    if not left or not right:
        return False
    if len(left) == 1 or len(right) == 1:
        return left[0] != right[0]
    if _given_names_agree(left, right):
        return False
    for form_l in all_name_forms(left):
        for form_r in all_name_forms(right):
            if form_l[:3] == form_r[:3]:
                return False
            if damerau_levenshtein_similarity_at_least(form_l, form_r, 0.65) >= 0.65:
                return False
    return True


def name_compatibility(left: ParsedName | str, right: ParsedName | str) -> NameCompat:
    """Classify the relation between two name mentions.

    >>> name_compatibility("Michael Stonebraker", "Stonebraker, M.")
    <NameCompat.COMPATIBLE: 'compatible'>
    >>> name_compatibility("Michael Stonebraker", "Michael Carey")
    <NameCompat.CONFLICT: 'conflict'>
    """
    if isinstance(left, str):
        left = parse_name(left)
    if isinstance(right, str):
        right = parse_name(right)
    if not left.raw or not right.raw:
        return NameCompat.UNRELATED
    if left.raw == right.raw or (
        left.given == right.given
        and left.surname == right.surname
        and left.middle == right.middle
    ):
        return NameCompat.EQUAL

    givens_ok = _given_names_agree(left.given, right.given)
    surnames_ok = _surnames_agree(left.surname, right.surname)
    middles_ok = _middles_agree(left.middle, right.middle)

    if left.surname and right.surname:
        if surnames_ok and givens_ok and middles_ok:
            return NameCompat.COMPATIBLE
        # Constraint-2 signals require one side to agree and the other
        # to be *completely* different.
        given_conflict = _givens_conflict(left.given, right.given)
        surname_conflict = _surnames_conflict(left.surname, right.surname)
        if surnames_ok and given_conflict:
            return NameCompat.CONFLICT
        if givens_ok and not left.given_is_initial and not right.given_is_initial:
            if surname_conflict:
                return NameCompat.CONFLICT
        # SIMILAR covers typo variants only: one part must agree while
        # the other stays in typo range. A raw-string blend like
        # "Krishnan, Ramesh" vs "Krishnan, Rajesh" (two real people)
        # must NOT qualify even though most characters coincide.
        if surnames_ok and damerau_levenshtein_similarity_at_least(
            left.given, right.given, 0.80
        ) >= 0.80:
            return NameCompat.SIMILAR
        if givens_ok and damerau_levenshtein_similarity_at_least(
            left.surname, right.surname, 0.80
        ) >= 0.80:
            return NameCompat.SIMILAR
        return NameCompat.UNRELATED

    # At least one mononym: compatible if it matches the other's given
    # name (nicknames included) or surname.
    mono, other = (left, right) if left.is_single_token else (right, left)
    if not mono.is_single_token:
        # Both lack surnames: compare givens directly.
        if _given_names_agree(left.given, right.given):
            return NameCompat.COMPATIBLE
        if damerau_levenshtein_similarity_at_least(left.given, right.given, 0.80) >= 0.80:
            return NameCompat.SIMILAR
        return NameCompat.UNRELATED
    if _given_names_agree(mono.given, other.given):
        return NameCompat.COMPATIBLE
    if other.surname and _surnames_agree(mono.given, other.surname):
        return NameCompat.COMPATIBLE
    if damerau_levenshtein_similarity_at_least(mono.raw, other.raw, 0.80) >= 0.80:
        return NameCompat.SIMILAR
    # A spelled-out mononym that matches neither the given name (after
    # nickname expansion) nor the surname of a *full* name is positive
    # evidence of a different person: this is what keeps ("Matt",
    # "stonebraker@csail...") away from "Michael Stonebraker" (§3.4).
    # The mononym must be a *known* name token — an out-of-vocabulary
    # string ("debb", "ddeb") is more likely a typo'd nickname than a
    # different person, and negative evidence is irreversible. Bare
    # mononym pairs never conflict at all.
    if (
        other.surname
        and len(mono.given) >= 3
        and len(other.given) >= 3
        and mono.given in KNOWN_GIVEN_NAMES
        and _givens_conflict(mono.given, other.given)
    ):
        return NameCompat.CONFLICT
    return NameCompat.UNRELATED


def _middles_agree(left: tuple[str, ...], right: tuple[str, ...]) -> bool:
    if not left or not right:
        return True
    for left_part, right_part in zip(left, right):
        if not _given_names_agree(left_part, right_part):
            return False
    return True


def name_similarity(left: ParsedName | str, right: ParsedName | str) -> float:
    """Graded similarity of two person-name mentions in [0, 1].

    Compatibility dominates raw string distance: "Stonebraker, M." and
    "Michael Stonebraker" score high despite few shared characters,
    while "Michael Stonebraker" and "Michael Carey" score low despite
    a shared token.
    """
    if isinstance(left, str):
        left = parse_name(left)
    if isinstance(right, str):
        right = parse_name(right)
    compat = name_compatibility(left, right)
    if compat is NameCompat.CONFLICT or compat is NameCompat.UNRELATED:
        return 0.0
    # Any pair missing a surname on either side is capped below
    # t_rv = 0.7: a bare "jianguo" (even twice, even in typo range)
    # must not open the door to boolean boosts — mononyms collide
    # across people far too easily. Such pairs reconcile only through
    # cross-attribute corroboration.
    if not (left.surname and right.surname):
        if compat is NameCompat.EQUAL:
            return 0.68
        if compat is NameCompat.SIMILAR:
            return 0.65
        # COMPATIBLE mononym evidence.
        if left.is_single_token and right.is_single_token:
            return 0.60
        return 0.65
    if compat is NameCompat.EQUAL:
        # Equality of full names is decisive. Equality of abbreviated
        # mentions ("L. Zhou" twice) still merges — citation corpora
        # repeat initials verbatim — but scores lower, acknowledging
        # that initials collide ("Lin Zhou" / "Ling Zhou").
        if left.is_full and right.is_full:
            return 1.0
        return 0.88
    if compat is NameCompat.SIMILAR:
        return 0.80
    # COMPATIBLE with surnames on both sides: a full/full match
    # ("Deb Bennett" ~ "Deborah Bennett") is near-decisive; an
    # initial-based match ("Epstein, R.S." ~ "Robert S. Epstein") is
    # deliberately held below the 0.85 merge threshold but above
    # t_rv = 0.7 — one shared article (β = 0.1) or two common contacts
    # (2γ) reconcile it, one common contact alone does not, because
    # initials collide too easily within a research circle.
    if left.is_full and right.is_full:
        return 0.95
    return 0.75


def full_name_pair(left: ParsedName | str, right: ParsedName | str) -> bool:
    """True when both mentions carry a spelled-out given name + surname.

    §4 uses this as the stricter condition for rewarding strong-boolean
    evidence between person names.
    """
    if isinstance(left, str):
        left = parse_name(left)
    if isinstance(right, str):
        right = parse_name(right)
    return left.is_full and right.is_full
