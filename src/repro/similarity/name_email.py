"""Cross-attribute evidence: comparing a person *name* to an *email*.

This is the paper's "Name&Email" evidence channel (§2.2, §5.3): the
account string of "stonebraker@csail.mit.edu" matches the surname of
"Stonebraker, M.", which is positive evidence that the two references
denote one person even though the references share no attribute type.
"""

from __future__ import annotations

import functools

from .caches import register_cache
from .emails import ParsedEmail, parse_email
from .names import ParsedName, parse_name
from .nicknames import all_name_forms
from .strings import damerau_levenshtein_similarity_at_least

__all__ = ["name_email_similarity"]


# The same (token, word) pairs recur across every candidate pair that
# shares a blocking key, and each call runs an edit distance.
@register_cache
@functools.lru_cache(maxsize=65536)
def _account_matches_word(account_token: str, word: str) -> float:
    """Score how well a single account token encodes a single name word."""
    if not account_token or not word:
        return 0.0
    if account_token == word:
        return 1.0
    if (
        len(account_token) >= 4
        and len(word) >= 4
        and (word.startswith(account_token) or account_token.startswith(word))
    ):
        return 0.9
    if damerau_levenshtein_similarity_at_least(account_token, word, 0.85) >= 0.85:
        return 0.85
    return 0.0


def _score_account_against_name(email: ParsedEmail, name: ParsedName) -> float:
    """Best interpretation of the account string as an encoding of *name*."""
    tokens = email.account_tokens
    if not tokens:
        return 0.0
    account = "".join(tokens)
    surname = name.surname
    # Both directions of the nickname relation: a "mike@" account may
    # encode "Michael ...", and a "michael@" account may belong to the
    # reference displayed as "mike".
    givens = all_name_forms(name.given) if name.given else frozenset()

    candidates: list[float] = [0.0]

    # The scores grade how uniquely the account pins down *this* name:
    # a full given+surname encoding is decisive (1.0); a bare surname
    # or an initial+surname is strong but shared by everyone with that
    # surname (0.85-0.9); a bare given name is weak (many Michaels).
    if surname:
        # Account token encodes the surname: "stonebraker@..."
        candidates.extend(
            0.9 * _account_matches_word(token, surname) for token in tokens
        )
        for given in givens:
            # first-initial + surname fused into one token:
            # "mstonebraker" / "stonebrakerm".
            fused = given[0] + surname
            if account == fused or account == surname + given[0]:
                candidates.append(0.9)
            elif damerau_levenshtein_similarity_at_least(account, fused, 0.85) >= 0.85:
                candidates.append(0.85)
            # full given + surname fused: "michaelstonebraker". Only a
            # real given name counts — an initial would make this the
            # (weaker) initial+surname pattern above.
            if len(given) >= 2 and (
                account == given + surname or account == surname + given
            ):
                candidates.append(1.0)

    # Account token encodes the given name (or a nickname of it):
    # "mike@...", "michael.s@..."
    for given in givens:
        for token in tokens:
            score = _account_matches_word(token, given)
            if score > 0:
                candidates.append(score * 0.6)

    # Separated tokens encode given+surname: "michael.stonebraker"
    # (decisive), or initial+surname: "m.stonebraker" (strong).
    if surname and len(tokens) >= 2:
        for i, token in enumerate(tokens):
            if _account_matches_word(token, surname) > 0:
                others = tokens[:i] + tokens[i + 1 :]
                for other in others:
                    for given in givens:
                        if _account_matches_word(other, given) > 0:
                            candidates.append(1.0)
                        elif other == given[0]:
                            candidates.append(0.9)

    return max(candidates)


def name_email_similarity(name: ParsedName | str, email: ParsedEmail | str) -> float:
    """Similarity in [0, 1] between a person name and an email address.

    >>> round(name_email_similarity("Stonebraker, M.", "stonebraker@csail.mit.edu"), 2)
    1.0
    >>> name_email_similarity("Eugene Wong", "stonebraker@csail.mit.edu")
    0.0
    """
    if isinstance(name, str):
        name = parse_name(name)
    if isinstance(email, str):
        parsed = parse_email(email)
        if parsed is None:
            return 0.0
        email = parsed
    if not name.raw:
        return 0.0
    return _score_account_against_name(email, name)
