"""Article-title and page-range similarity."""

from __future__ import annotations

import re

from .corpus import TfIdfCorpus
from .strings import damerau_levenshtein_similarity, jaccard_similarity
from .tokens import tokenize

__all__ = ["title_similarity", "pages_similarity", "year_similarity"]

_PAGE_RE = re.compile(r"(\d+)\s*(?:--?|–|—)\s*(\d+)")
_NUMBER_RE = re.compile(r"\d+")


def title_similarity(left: str, right: str, *, corpus: TfIdfCorpus | None = None) -> float:
    """Similarity of two article titles in [0, 1].

    With a :class:`TfIdfCorpus` the comparison is soft-TF-IDF weighted;
    without one it falls back to token Jaccard blended with edit
    similarity (robust to both word drops and character typos).
    """
    if not left or not right:
        return 0.0
    left_norm = " ".join(tokenize(left))
    right_norm = " ".join(tokenize(right))
    if left_norm and left_norm == right_norm:
        return 1.0
    if corpus is not None and len(corpus) > 0:
        return corpus.soft_cosine(left_norm, right_norm)
    token_score = jaccard_similarity(
        tokenize(left, drop_stopwords=True), tokenize(right, drop_stopwords=True)
    )
    char_score = damerau_levenshtein_similarity(left_norm, right_norm)
    return max(token_score, char_score)


def _parse_pages(text: str) -> tuple[int, int] | None:
    match = _PAGE_RE.search(text)
    if match:
        start, end = int(match.group(1)), int(match.group(2))
        return (start, end) if start <= end else (end, start)
    numbers = _NUMBER_RE.findall(text)
    if len(numbers) == 1:
        page = int(numbers[0])
        return (page, page)
    return None


def pages_similarity(left: str, right: str) -> float:
    """Similarity of two page-range strings.

    Equal ranges score 1; a bare start page matching a range's start
    scores high (citations often drop the end page); disjoint ranges
    score 0.
    """
    if not left or not right:
        return 0.0
    left_range = _parse_pages(left)
    right_range = _parse_pages(right)
    if left_range is None or right_range is None:
        return 1.0 if left.strip() == right.strip() else 0.0
    if left_range == right_range:
        return 1.0
    if left_range[0] == right_range[0]:
        return 0.9
    # Overlapping ranges still suggest the same article (off-by-one OCR).
    if left_range[0] <= right_range[1] and right_range[0] <= left_range[1]:
        return 0.6
    return 0.0


def year_similarity(left: str, right: str) -> float:
    """Similarity of two publication-year strings.

    Equal years score 1; adjacent years score 0.5 (conference vs
    proceedings-printing year); anything else 0. Two-digit years are
    interpreted in the 19xx/20xx window that makes them closest.
    """
    left_years = _NUMBER_RE.findall(left or "")
    right_years = _NUMBER_RE.findall(right or "")
    if not left_years or not right_years:
        return 0.0
    best = 0.0
    for left_text in left_years:
        for right_text in right_years:
            left_year = _expand_year(int(left_text))
            right_year = _expand_year(int(right_text))
            delta = abs(left_year - right_year)
            if delta == 0:
                best = max(best, 1.0)
            elif delta == 1:
                best = max(best, 0.5)
    return best


def _expand_year(year: int) -> int:
    if year >= 100:
        return year
    return 1900 + year if year >= 30 else 2000 + year
