"""Article-title and page-range similarity."""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass

from .corpus import TfIdfCorpus
from .strings import (
    damerau_levenshtein_similarity,
    damerau_levenshtein_within,
    jaccard_similarity,
)
from .tokens import tokenize

__all__ = [
    "TitleFeatures",
    "title_features",
    "title_similarity",
    "title_similarity_features",
    "title_upper_bound",
    "pages_similarity",
    "year_similarity",
]

_PAGE_RE = re.compile(r"(\d+)\s*(?:--?|–|—)\s*(\d+)")
_NUMBER_RE = re.compile(r"\d+")


def title_similarity(left: str, right: str, *, corpus: TfIdfCorpus | None = None) -> float:
    """Similarity of two article titles in [0, 1].

    With a :class:`TfIdfCorpus` the comparison is soft-TF-IDF weighted;
    without one it falls back to token Jaccard blended with edit
    similarity (robust to both word drops and character typos).
    """
    if not left or not right:
        return 0.0
    left_norm = " ".join(tokenize(left))
    right_norm = " ".join(tokenize(right))
    if left_norm and left_norm == right_norm:
        return 1.0
    if corpus is not None and len(corpus) > 0:
        return corpus.soft_cosine(left_norm, right_norm)
    token_score = jaccard_similarity(
        tokenize(left, drop_stopwords=True), tokenize(right, drop_stopwords=True)
    )
    char_score = damerau_levenshtein_similarity(left_norm, right_norm)
    return max(token_score, char_score)


@dataclass(frozen=True)
class TitleFeatures:
    """Everything :func:`title_similarity` derives from one title string,
    computed once per distinct value instead of once per pair."""

    empty: bool
    norm: str
    tokens: frozenset[str]
    #: character multiset of ``norm`` — feeds the edit-distance lower
    #: bound of :func:`title_upper_bound`.
    counts: Counter


def title_features(value: str) -> TitleFeatures:
    norm = " ".join(tokenize(value))
    return TitleFeatures(
        empty=not value,
        norm=norm,
        tokens=frozenset(tokenize(value, drop_stopwords=True)),
        counts=Counter(norm),
    )


def _count_gap(left: Counter, right: Counter) -> int:
    """Sum of per-character count differences between two strings."""
    gap = 0
    for ch, n in left.items():
        gap += abs(n - right.get(ch, 0))
    for ch, n in right.items():
        if ch not in left:
            gap += n
    return gap


def title_upper_bound(left: TitleFeatures, right: TitleFeatures) -> float:
    """Cheap upper bound on ``title_similarity`` of the two values.

    Sound by construction: the Jaccard term is bounded by the token-set
    size ratio, and the edit-similarity term by the length difference
    and the character-count gap (every edit operation changes at most
    one length unit and two character counts).
    """
    if left.empty or right.empty:
        return 0.0
    if left.tokens or right.tokens:
        if left.tokens and right.tokens:
            token_bound = min(len(left.tokens), len(right.tokens)) / max(
                len(left.tokens), len(right.tokens)
            )
        else:
            token_bound = 0.0
    else:
        token_bound = 1.0
    longest = max(len(left.norm), len(right.norm))
    if longest == 0:
        return 1.0
    distance_floor = max(
        abs(len(left.norm) - len(right.norm)),
        _count_gap(left.counts, right.counts) / 2.0,
    )
    char_bound = 1.0 - distance_floor / longest
    return token_bound if token_bound > char_bound else char_bound


def title_similarity_features(
    left: TitleFeatures, right: TitleFeatures, floor: float = 0.0
) -> float:
    """:func:`title_similarity` over precomputed features.

    Returns the exact (no-corpus) ``title_similarity`` value whenever
    that value is at least *floor*; when the true score is below
    *floor* the result is merely guaranteed to also be below *floor*
    (the edit-distance kernel is cut off at the highest bar that still
    matters, which is where the speedup comes from).
    """
    if left.empty or right.empty:
        return 0.0
    if left.norm and left.norm == right.norm:
        return 1.0
    token_score = jaccard_similarity(left.tokens, right.tokens)
    longest = max(len(left.norm), len(right.norm))
    if longest == 0:
        # Both normalise to nothing: token Jaccard (of two empty sets)
        # and edit similarity both say 1.0, exactly as the slow path.
        return 1.0
    bar = token_score if token_score > floor else floor
    # distance <= cutoff  <=>  edit similarity >= bar (the epsilon only
    # ever widens the window, which keeps the result exact).
    cutoff = int((1.0 - bar) * longest + 1e-9)
    distance = damerau_levenshtein_within(left.norm, right.norm, cutoff)
    if distance is None:
        return token_score
    char_score = 1.0 - distance / longest
    return token_score if token_score > char_score else char_score


def _parse_pages(text: str) -> tuple[int, int] | None:
    match = _PAGE_RE.search(text)
    if match:
        start, end = int(match.group(1)), int(match.group(2))
        return (start, end) if start <= end else (end, start)
    numbers = _NUMBER_RE.findall(text)
    if len(numbers) == 1:
        page = int(numbers[0])
        return (page, page)
    return None


def pages_similarity(left: str, right: str) -> float:
    """Similarity of two page-range strings.

    Equal ranges score 1; a bare start page matching a range's start
    scores high (citations often drop the end page); disjoint ranges
    score 0.
    """
    if not left or not right:
        return 0.0
    left_range = _parse_pages(left)
    right_range = _parse_pages(right)
    if left_range is None or right_range is None:
        return 1.0 if left.strip() == right.strip() else 0.0
    if left_range == right_range:
        return 1.0
    if left_range[0] == right_range[0]:
        return 0.9
    # Overlapping ranges still suggest the same article (off-by-one OCR).
    if left_range[0] <= right_range[1] and right_range[0] <= left_range[1]:
        return 0.6
    return 0.0


def year_similarity(left: str, right: str) -> float:
    """Similarity of two publication-year strings.

    Equal years score 1; adjacent years score 0.5 (conference vs
    proceedings-printing year); anything else 0. Two-digit years are
    interpreted in the 19xx/20xx window that makes them closest.
    """
    left_years = _NUMBER_RE.findall(left or "")
    right_years = _NUMBER_RE.findall(right or "")
    if not left_years or not right_years:
        return 0.0
    best = 0.0
    for left_text in left_years:
        for right_text in right_years:
            left_year = _expand_year(int(left_text))
            right_year = _expand_year(int(right_text))
            delta = abs(left_year - right_year)
            if delta == 0:
                best = max(best, 1.0)
            elif delta == 1:
                best = max(best, 0.5)
    return best


def _expand_year(year: int) -> int:
    if year >= 100:
        return year
    return 1900 + year if year >= 30 else 2000 + year
