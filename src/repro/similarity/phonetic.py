"""Phonetic codes: Soundex and a simplified Metaphone.

Classic record-linkage substrate (Newcombe 1959 matched vital records
on Soundex-coded surnames). The codes are available as extra evidence
channels and blocking keys for domains whose names suffer heavy
spelling variation — they complement, not replace, the edit-distance
comparators.
"""

from __future__ import annotations

from .tokens import normalize

__all__ = ["soundex", "metaphone", "phonetic_similarity"]

_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    "l": "4",
    **dict.fromkeys("mn", "5"),
    "r": "6",
}


def soundex(word: str) -> str:
    """American Soundex code of *word* ("" for non-alphabetic input).

    >>> soundex("Robert")
    'R163'
    >>> soundex("Rupert")
    'R163'
    >>> soundex("Ashcraft")
    'A261'
    """
    letters = [ch for ch in normalize(word) if ch.isalpha()]
    if not letters:
        return ""
    first = letters[0]
    encoded: list[str] = []
    previous_code = _SOUNDEX_CODES.get(first, "")
    for ch in letters[1:]:
        code = _SOUNDEX_CODES.get(ch, "")
        if ch in "hw":
            # h/w are transparent: they do not reset the run.
            continue
        if code and code != previous_code:
            encoded.append(code)
        previous_code = code
    return (first.upper() + "".join(encoded) + "000")[:4]


_VOWELS = set("aeiou")


def metaphone(word: str, *, max_length: int = 6) -> str:
    """A compact Metaphone-style key (simplified Philips 1990 rules).

    >>> metaphone("Stonebraker") == metaphone("Stonebracker")
    True
    """
    text = "".join(ch for ch in normalize(word) if ch.isalpha())
    if not text:
        return ""
    # Initial-letter exceptions.
    for prefix in ("kn", "gn", "pn", "wr", "ae"):
        if text.startswith(prefix):
            text = text[1:]
            break
    if text.startswith("x"):
        text = "s" + text[1:]
    result: list[str] = []
    i = 0
    length = len(text)
    while i < length and len(result) < max_length:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < length else ""
        prev = text[i - 1] if i > 0 else ""
        if ch in _VOWELS:
            if i == 0:
                result.append(ch.upper())
            i += 1
            continue
        if ch == prev and ch != "c":
            i += 1
            continue
        if ch == "b":
            if not (i == length - 1 and prev == "m"):
                result.append("B")
        elif ch == "c":
            if nxt == "h":
                result.append("X")
                i += 1
            elif nxt in "iey":
                result.append("S")
            else:
                result.append("K")
        elif ch == "d":
            if nxt == "g" and i + 2 < length and text[i + 2] in "iey":
                result.append("J")
                i += 2
            else:
                result.append("T")
        elif ch == "g":
            if nxt == "h":
                if i + 2 >= length or text[i + 2] in _VOWELS:
                    result.append("K")
                i += 1
            elif nxt in "iey":
                result.append("J")
            else:
                result.append("K")
        elif ch == "h":
            if prev in _VOWELS and nxt not in _VOWELS:
                pass
            else:
                result.append("H")
        elif ch in "fjlmnr":
            result.append(ch.upper())
        elif ch == "k":
            if prev != "c":
                result.append("K")
        elif ch == "p":
            result.append("F" if nxt == "h" else "P")
            if nxt == "h":
                i += 1
        elif ch == "q":
            result.append("K")
        elif ch == "s":
            if nxt == "h":
                result.append("X")
                i += 1
            elif nxt == "i" and i + 2 < length and text[i + 2] in "oa":
                result.append("X")
            else:
                result.append("S")
        elif ch == "t":
            if nxt == "h":
                result.append("0")
                i += 1
            elif nxt == "i" and i + 2 < length and text[i + 2] in "oa":
                result.append("X")
            else:
                result.append("T")
        elif ch == "v":
            result.append("F")
        elif ch == "w":
            if nxt in _VOWELS:
                result.append("W")
        elif ch == "x":
            result.extend(("K", "S"))
        elif ch == "y":
            if nxt in _VOWELS:
                result.append("Y")
        elif ch == "z":
            result.append("S")
        i += 1
    return "".join(result)[:max_length]


def phonetic_similarity(left: str, right: str) -> float:
    """Graded phonetic agreement of two words in [0, 1].

    1.0 when both codes agree, 0.7 on Soundex-only agreement, 0.0
    otherwise. Intended as a coarse supplementary channel.
    """
    if not left or not right:
        return 0.0
    meta_left, meta_right = metaphone(left), metaphone(right)
    if meta_left and meta_left == meta_right:
        return 1.0
    sdx_left, sdx_right = soundex(left), soundex(right)
    if sdx_left and sdx_left == sdx_right:
        return 0.7
    return 0.0
