"""Venue-name similarity with acronym awareness.

Conference and journal mentions range from full names ("ACM Conference
on Management of Data") through branded acronym phrases ("ACM SIGMOD")
to bare acronyms ("SIGMOD", "VLDB"). Pure string metrics score such
pairs near zero; this module layers acronym expansion and containment
on top of token overlap so that they score high, which is what drives
the paper's venue-recall results (Table 2, Table 7).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from .caches import register_cache
from .strings import (
    containment_similarity,
    damerau_levenshtein_similarity,
    damerau_levenshtein_within,
    jaccard_similarity,
    jaro_winkler_similarity,
    monge_elkan_similarity,
)
from .tokens import STOPWORDS, is_acronym_of, tokenize

__all__ = [
    "VenueFeatures",
    "venue_features",
    "venue_name_similarity",
    "venue_similarity_features",
    "venue_upper_bound",
    "KNOWN_ACRONYMS",
    "expand_venue_tokens",
]

# Curated expansions for acronyms whose letters do not line up with the
# venue's full name ("SIGMOD" is not the initials of "Conference on
# Management of Data"). Real deployments learn these from co-citation;
# we seed the table with the ones the synthetic corpus uses.
KNOWN_ACRONYMS: dict[str, frozenset[str]] = {
    "sigmod": frozenset({"management", "data"}),
    "vldb": frozenset({"very", "large", "data", "bases", "databases"}),
    "icde": frozenset({"data", "engineering"}),
    "sigir": frozenset({"information", "retrieval"}),
    "sigkdd": frozenset({"knowledge", "discovery", "data", "mining"}),
    "kdd": frozenset({"knowledge", "discovery", "data", "mining"}),
    "nips": frozenset({"neural", "information", "processing", "systems"}),
    "neurips": frozenset({"neural", "information", "processing", "systems"}),
    "icml": frozenset({"machine", "learning"}),
    "aaai": frozenset({"artificial", "intelligence"}),
    "ijcai": frozenset({"artificial", "intelligence"}),
    "sosp": frozenset({"operating", "systems", "principles"}),
    "osdi": frozenset({"operating", "systems", "design", "implementation"}),
    "podc": frozenset({"principles", "distributed", "computing"}),
    "pods": frozenset({"principles", "database", "systems"}),
    "stoc": frozenset({"theory", "computing"}),
    "focs": frozenset({"foundations", "computer", "science"}),
    "soda": frozenset({"discrete", "algorithms"}),
    "cacm": frozenset({"communications", "acm"}),
    "tods": frozenset({"transactions", "database", "systems"}),
    "tkde": frozenset({"transactions", "knowledge", "data", "engineering"}),
    "jacm": frozenset({"journal", "acm"}),
    "cidr": frozenset({"innovative", "data", "systems", "research"}),
    "edbt": frozenset({"extending", "database", "technology"}),
    "cikm": frozenset({"information", "knowledge", "management"}),
    "www": frozenset({"world", "wide", "web"}),
    "colt": frozenset({"computational", "learning", "theory"}),
    "uai": frozenset({"uncertainty", "artificial", "intelligence"}),
    "acl": frozenset({"association", "computational", "linguistics"}),
    "emnlp": frozenset({"empirical", "methods", "natural", "language", "processing"}),
    "cvpr": frozenset({"computer", "vision", "pattern", "recognition"}),
    "sigcomm": frozenset({"data", "communication"}),
    "infocom": frozenset({"computer", "communications"}),
    "dasfaa": frozenset({"database", "systems", "advanced", "applications"}),
}

# Generic venue boilerplate that should not drive the match. Note
# "transactions" and "journal" are NOT here: they distinguish journal
# series from the conferences sharing their topic tokens (TODS vs PODS
# both speak of database systems; only one is a Transactions).
_GENERIC = frozenset(
    {
        "proceedings",
        "proc",
        "conference",
        "conf",
        "international",
        "intl",
        "annual",
        "symposium",
        "symp",
        "workshop",
        "acm",
        "ieee",
        "usenix",
        "meeting",
    }
)


def expand_venue_tokens(mention: str) -> set[str]:
    """Content tokens of a venue mention, with known acronyms expanded.

    >>> sorted(expand_venue_tokens("ACM SIGMOD"))
    ['data', 'management', 'sigmod']
    """
    tokens = {
        token
        for token in tokenize(mention, drop_stopwords=True)
        # Digits (years, ordinals, volume numbers) say nothing about
        # which venue this is.
        if not token.isdigit()
    }
    expanded = set(tokens)
    for token in tokens:
        expansion = KNOWN_ACRONYMS.get(token)
        if expansion:
            expanded |= expansion
    return expanded - _GENERIC - STOPWORDS


def _acronym_bridge(left_tokens: list[str], right_tokens: list[str]) -> bool:
    """True when one mention is (or contains) an acronym of the other."""
    for token in left_tokens:
        if is_acronym_of(token, right_tokens):
            return True
    for token in right_tokens:
        if is_acronym_of(token, left_tokens):
            return True
    return False


@dataclass(frozen=True)
class VenueFeatures:
    """Everything :func:`venue_name_similarity` derives from one
    mention, computed once per distinct value instead of once per pair."""

    empty: bool
    norm: str
    #: all tokens of the mention, in order (the Monge-Elkan fallback).
    tokens: tuple[str, ...]
    #: stopword-free tokens, in order (the acronym machinery).
    content_tokens: tuple[str, ...]
    #: expanded content tokens (:func:`expand_venue_tokens`).
    content: frozenset[str]
    #: known distinctive acronym tokens present in the mention.
    acronyms: frozenset[str]
    #: tokens long enough to act as an acronym of the other side.
    acronym_candidates: frozenset[str]
    #: the strings an acronym of this mention may equal (the initials,
    #: optionally with up to two leading brand tokens skipped).
    initial_suffixes: frozenset[str]


def venue_features(value: str) -> VenueFeatures:
    tokens = tuple(tokenize(value))
    content_tokens = tuple(tokenize(value, drop_stopwords=True))
    initials = "".join(token[0] for token in content_tokens)
    if len(content_tokens) >= 2:
        suffixes = frozenset(
            initials[skip:] for skip in range(3) if len(initials) - skip >= 2
        )
    else:
        suffixes = frozenset()
    return VenueFeatures(
        empty=not value,
        norm=" ".join(tokens),
        tokens=tokens,
        content_tokens=content_tokens,
        content=frozenset(expand_venue_tokens(value)),
        acronyms=frozenset(t for t in content_tokens if t in KNOWN_ACRONYMS),
        acronym_candidates=frozenset(t for t in content_tokens if len(t) >= 3),
        initial_suffixes=suffixes,
    )


def venue_upper_bound(left: VenueFeatures, right: VenueFeatures) -> float:
    """Cheap upper bound on ``venue_name_similarity`` of the values.

    Two mentions carrying *different* known acronyms short-circuit to
    at most 0.2 in the full comparator (strong negative evidence), and
    that is the one case decidable from precomputed sets alone.
    """
    if left.empty or right.empty:
        return 0.0
    if left.acronyms and right.acronyms and not (left.acronyms & right.acronyms):
        return 0.2
    return 1.0


# Venue vocabularies are tiny ("proceedings", "sigmod", ...) and the
# same token pairs recur across every candidate pair in a block.
@register_cache
@functools.lru_cache(maxsize=65536)
def _token_jw(left: str, right: str) -> float:
    return jaro_winkler_similarity(left, right)


def _monge_elkan_tokens(
    left_tokens: tuple[str, ...], right_tokens: tuple[str, ...]
) -> float:
    """``monge_elkan_similarity`` over already-tokenised mentions."""
    if not left_tokens and not right_tokens:
        return 1.0
    if not left_tokens or not right_tokens:
        return 0.0

    def directed(source: tuple[str, ...], target: tuple[str, ...]) -> float:
        total = 0.0
        for token in source:
            total += max(_token_jw(token, other) for other in target)
        return total / len(source)

    return (directed(left_tokens, right_tokens) + directed(right_tokens, left_tokens)) / 2.0


def venue_similarity_features(
    left: VenueFeatures, right: VenueFeatures, floor: float = 0.0
) -> float:
    """:func:`venue_name_similarity` over precomputed features.

    Exact whenever the true score is at least *floor*; below *floor*
    the result is only guaranteed to stay below *floor* too. The
    acronym and containment layers are pure set operations here, and
    the fuzzy fallbacks are skipped (they are capped at 0.8) or
    cut off at the highest bar that still matters.
    """
    if left.empty or right.empty:
        return 0.0
    if left.norm and left.norm == right.norm:
        return 1.0

    best = 0.0
    if left.content and right.content:
        overlap = containment_similarity(left.content, right.content)
        jaccard = jaccard_similarity(left.content, right.content)
        if overlap >= 1.0 - 1e-9:
            size_gap = abs(len(left.content) - len(right.content))
            if size_gap <= 1 and min(len(left.content), len(right.content)) >= 2:
                candidate = 0.80
            else:
                candidate = 0.70 + 0.1 * jaccard
            if candidate > best:
                best = candidate
        candidate = 0.55 * jaccard + 0.35 * overlap
        if candidate > best:
            best = candidate

    if (left.acronym_candidates & right.initial_suffixes) or (
        right.acronym_candidates & left.initial_suffixes
    ):
        if best < 0.88:
            best = 0.88

    if left.acronyms & right.acronyms:
        if best < 0.95:
            best = 0.95
    elif left.acronyms and right.acronyms:
        return best if best < 0.2 else 0.2

    if best < 0.8:
        # The fallbacks contribute at most 0.8; once the structured
        # layers scored that high they cannot change the maximum.
        candidate = 0.8 * _monge_elkan_tokens(left.tokens, right.tokens)
        if candidate > best:
            best = candidate
        bar = best if best > floor else floor
        if bar <= 0.8:
            longest = max(len(left.norm), len(right.norm))
            if longest == 0:
                best = 0.8  # edit similarity of two empty strings is 1.0
            else:
                cutoff = int((1.0 - bar / 0.8) * longest + 1e-9)
                distance = damerau_levenshtein_within(left.norm, right.norm, cutoff)
                if distance is not None:
                    candidate = 0.8 * (1.0 - distance / longest)
                    if candidate > best:
                        best = candidate

    return best if best < 1.0 else 1.0


def venue_name_similarity(left: str, right: str) -> float:
    """Similarity in [0, 1] of two venue-name mentions.

    >>> venue_name_similarity("ACM Conference on Management of Data",
    ...                       "ACM SIGMOD") >= 0.8
    True
    """
    if not left or not right:
        return 0.0
    left_norm = " ".join(tokenize(left))
    right_norm = " ".join(tokenize(right))
    if left_norm and left_norm == right_norm:
        return 1.0

    left_raw = tokenize(left, drop_stopwords=True)
    right_raw = tokenize(right, drop_stopwords=True)
    left_content = expand_venue_tokens(left)
    right_content = expand_venue_tokens(right)

    scores = [0.0]

    if left_content and right_content:
        overlap = containment_similarity(left_content, right_content)
        jaccard = jaccard_similarity(left_content, right_content)
        if overlap >= 1.0 - 1e-9:
            # One mention's content is contained in the other's. Never
            # decisive on its own — "Machine Learning" (the journal) is
            # contained in "International Conference on Machine
            # Learning" — but strong supporting evidence that lets one
            # reconciled article (β) or an agreeing year settle it.
            size_gap = abs(len(left_content) - len(right_content))
            if size_gap <= 1 and min(len(left_content), len(right_content)) >= 2:
                scores.append(0.80)
            else:
                scores.append(0.70 + 0.1 * jaccard)
        scores.append(0.55 * jaccard + 0.35 * overlap)

    if _acronym_bridge(left_raw, right_raw):
        scores.append(0.88)

    # Shared distinctive acronym token ("sigmod" on both sides, maybe
    # wrapped in different boilerplate).
    left_acros = {token for token in left_raw if token in KNOWN_ACRONYMS}
    right_acros = {token for token in right_raw if token in KNOWN_ACRONYMS}
    if left_acros & right_acros:
        scores.append(0.95)
    elif left_acros and right_acros:
        # Two different known acronyms are strong negative evidence.
        return min(max(scores), 0.2)

    # Fall back to fuzzy token alignment for typo-level noise.
    scores.append(0.8 * monge_elkan_similarity(left_norm, right_norm))
    scores.append(0.8 * damerau_levenshtein_similarity(left_norm, right_norm))

    return min(max(scores), 1.0)
