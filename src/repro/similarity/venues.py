"""Venue-name similarity with acronym awareness.

Conference and journal mentions range from full names ("ACM Conference
on Management of Data") through branded acronym phrases ("ACM SIGMOD")
to bare acronyms ("SIGMOD", "VLDB"). Pure string metrics score such
pairs near zero; this module layers acronym expansion and containment
on top of token overlap so that they score high, which is what drives
the paper's venue-recall results (Table 2, Table 7).
"""

from __future__ import annotations

from .strings import (
    containment_similarity,
    damerau_levenshtein_similarity,
    jaccard_similarity,
    monge_elkan_similarity,
)
from .tokens import STOPWORDS, is_acronym_of, tokenize

__all__ = ["venue_name_similarity", "KNOWN_ACRONYMS", "expand_venue_tokens"]

# Curated expansions for acronyms whose letters do not line up with the
# venue's full name ("SIGMOD" is not the initials of "Conference on
# Management of Data"). Real deployments learn these from co-citation;
# we seed the table with the ones the synthetic corpus uses.
KNOWN_ACRONYMS: dict[str, frozenset[str]] = {
    "sigmod": frozenset({"management", "data"}),
    "vldb": frozenset({"very", "large", "data", "bases", "databases"}),
    "icde": frozenset({"data", "engineering"}),
    "sigir": frozenset({"information", "retrieval"}),
    "sigkdd": frozenset({"knowledge", "discovery", "data", "mining"}),
    "kdd": frozenset({"knowledge", "discovery", "data", "mining"}),
    "nips": frozenset({"neural", "information", "processing", "systems"}),
    "neurips": frozenset({"neural", "information", "processing", "systems"}),
    "icml": frozenset({"machine", "learning"}),
    "aaai": frozenset({"artificial", "intelligence"}),
    "ijcai": frozenset({"artificial", "intelligence"}),
    "sosp": frozenset({"operating", "systems", "principles"}),
    "osdi": frozenset({"operating", "systems", "design", "implementation"}),
    "podc": frozenset({"principles", "distributed", "computing"}),
    "pods": frozenset({"principles", "database", "systems"}),
    "stoc": frozenset({"theory", "computing"}),
    "focs": frozenset({"foundations", "computer", "science"}),
    "soda": frozenset({"discrete", "algorithms"}),
    "cacm": frozenset({"communications", "acm"}),
    "tods": frozenset({"transactions", "database", "systems"}),
    "tkde": frozenset({"transactions", "knowledge", "data", "engineering"}),
    "jacm": frozenset({"journal", "acm"}),
    "cidr": frozenset({"innovative", "data", "systems", "research"}),
    "edbt": frozenset({"extending", "database", "technology"}),
    "cikm": frozenset({"information", "knowledge", "management"}),
    "www": frozenset({"world", "wide", "web"}),
    "colt": frozenset({"computational", "learning", "theory"}),
    "uai": frozenset({"uncertainty", "artificial", "intelligence"}),
    "acl": frozenset({"association", "computational", "linguistics"}),
    "emnlp": frozenset({"empirical", "methods", "natural", "language", "processing"}),
    "cvpr": frozenset({"computer", "vision", "pattern", "recognition"}),
    "sigcomm": frozenset({"data", "communication"}),
    "infocom": frozenset({"computer", "communications"}),
    "dasfaa": frozenset({"database", "systems", "advanced", "applications"}),
}

# Generic venue boilerplate that should not drive the match. Note
# "transactions" and "journal" are NOT here: they distinguish journal
# series from the conferences sharing their topic tokens (TODS vs PODS
# both speak of database systems; only one is a Transactions).
_GENERIC = frozenset(
    {
        "proceedings",
        "proc",
        "conference",
        "conf",
        "international",
        "intl",
        "annual",
        "symposium",
        "symp",
        "workshop",
        "acm",
        "ieee",
        "usenix",
        "meeting",
    }
)


def expand_venue_tokens(mention: str) -> set[str]:
    """Content tokens of a venue mention, with known acronyms expanded.

    >>> sorted(expand_venue_tokens("ACM SIGMOD"))
    ['data', 'management', 'sigmod']
    """
    tokens = {
        token
        for token in tokenize(mention, drop_stopwords=True)
        # Digits (years, ordinals, volume numbers) say nothing about
        # which venue this is.
        if not token.isdigit()
    }
    expanded = set(tokens)
    for token in tokens:
        expansion = KNOWN_ACRONYMS.get(token)
        if expansion:
            expanded |= expansion
    return expanded - _GENERIC - STOPWORDS


def _acronym_bridge(left_tokens: list[str], right_tokens: list[str]) -> bool:
    """True when one mention is (or contains) an acronym of the other."""
    for token in left_tokens:
        if is_acronym_of(token, right_tokens):
            return True
    for token in right_tokens:
        if is_acronym_of(token, left_tokens):
            return True
    return False


def venue_name_similarity(left: str, right: str) -> float:
    """Similarity in [0, 1] of two venue-name mentions.

    >>> venue_name_similarity("ACM Conference on Management of Data",
    ...                       "ACM SIGMOD") >= 0.8
    True
    """
    if not left or not right:
        return 0.0
    left_norm = " ".join(tokenize(left))
    right_norm = " ".join(tokenize(right))
    if left_norm and left_norm == right_norm:
        return 1.0

    left_raw = tokenize(left, drop_stopwords=True)
    right_raw = tokenize(right, drop_stopwords=True)
    left_content = expand_venue_tokens(left)
    right_content = expand_venue_tokens(right)

    scores = [0.0]

    if left_content and right_content:
        overlap = containment_similarity(left_content, right_content)
        jaccard = jaccard_similarity(left_content, right_content)
        if overlap >= 1.0 - 1e-9:
            # One mention's content is contained in the other's. Never
            # decisive on its own — "Machine Learning" (the journal) is
            # contained in "International Conference on Machine
            # Learning" — but strong supporting evidence that lets one
            # reconciled article (β) or an agreeing year settle it.
            size_gap = abs(len(left_content) - len(right_content))
            if size_gap <= 1 and min(len(left_content), len(right_content)) >= 2:
                scores.append(0.80)
            else:
                scores.append(0.70 + 0.1 * jaccard)
        scores.append(0.55 * jaccard + 0.35 * overlap)

    if _acronym_bridge(left_raw, right_raw):
        scores.append(0.88)

    # Shared distinctive acronym token ("sigmod" on both sides, maybe
    # wrapped in different boilerplate).
    left_acros = {token for token in left_raw if token in KNOWN_ACRONYMS}
    right_acros = {token for token in right_raw if token in KNOWN_ACRONYMS}
    if left_acros & right_acros:
        scores.append(0.95)
    elif left_acros and right_acros:
        # Two different known acronyms are strong negative evidence.
        return min(max(scores), 0.2)

    # Fall back to fuzzy token alignment for typo-level noise.
    scores.append(0.8 * monge_elkan_similarity(left_norm, right_norm))
    scores.append(0.8 * damerau_levenshtein_similarity(left_norm, right_norm))

    return min(max(scores), 1.0)
