"""Generic string-similarity metrics, implemented from scratch.

All metrics return a score in ``[0.0, 1.0]`` where ``1.0`` means the two
strings are identical (after the metric's own notion of normalisation)
and ``0.0`` means entirely dissimilar. They are symmetric in their two
arguments.

The suite mirrors the measures surveyed by Cohen, Ravikumar & Fienberg
(IIWeb 2003), which the paper cites as its source of attribute-level
comparators: edit distance, Jaro, Jaro-Winkler, n-gram overlap, and the
hybrid token-level Monge-Elkan and soft-TF-IDF schemes.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from .tokens import tokenize

__all__ = [
    "levenshtein_distance",
    "damerau_levenshtein_distance",
    "damerau_levenshtein_within",
    "levenshtein_similarity",
    "damerau_levenshtein_similarity",
    "damerau_levenshtein_similarity_at_least",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "ngram_similarity",
    "jaccard_similarity",
    "dice_similarity",
    "containment_similarity",
    "longest_common_substring_similarity",
    "monge_elkan_similarity",
    "prefix_similarity",
]


def levenshtein_distance(left: str, right: str) -> int:
    """Classic edit distance (insert / delete / substitute, unit cost)."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    # Keep the shorter string in the inner loop for memory locality.
    if len(left) < len(right):
        left, right = right, left
    previous = list(range(len(right) + 1))
    for i, left_ch in enumerate(left, start=1):
        current = [i]
        for j, right_ch in enumerate(right, start=1):
            substitution = previous[j - 1] + (left_ch != right_ch)
            insertion = current[j - 1] + 1
            deletion = previous[j] + 1
            current.append(min(substitution, insertion, deletion))
        previous = current
    return previous[-1]


def damerau_levenshtein_distance(left: str, right: str) -> int:
    """Edit distance that also counts adjacent transpositions as one edit.

    This is the restricted (optimal string alignment) variant, which is
    the standard choice for typo models.
    """
    if left == right:
        return 0
    rows = len(left) + 1
    cols = len(right) + 1
    table = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        table[i][0] = i
    for j in range(cols):
        table[0][j] = j
    for i in range(1, rows):
        for j in range(1, cols):
            cost = 0 if left[i - 1] == right[j - 1] else 1
            best = min(
                table[i - 1][j] + 1,
                table[i][j - 1] + 1,
                table[i - 1][j - 1] + cost,
            )
            transposable = (
                i > 1
                and j > 1
                and left[i - 1] == right[j - 2]
                and left[i - 2] == right[j - 1]
            )
            if transposable:
                best = min(best, table[i - 2][j - 2] + 1)
            table[i][j] = best
    return table[-1][-1]


def damerau_levenshtein_within(left: str, right: str, cutoff: int) -> int | None:
    """:func:`damerau_levenshtein_distance`, or ``None`` when it
    exceeds *cutoff*.

    Same optimal-string-alignment metric, but computed with the classic
    bounded-distance optimisations: shared prefixes and suffixes are
    stripped first, only the Ukkonen band of width ``2 * cutoff + 1``
    around the diagonal is filled (a cell (i, j) with ``|i - j| >
    cutoff`` cannot lie on a path of cost <= cutoff, because the
    distance is at least ``|i - j|``), and the scan aborts as soon as a
    whole row exceeds the cutoff (row minima of the table are
    non-decreasing). Values <= cutoff are exact; anything larger is
    reported as ``None`` without being computed.
    """
    if cutoff < 0:
        return None
    if left == right:
        return 0
    # Strip the common prefix and suffix: edits only happen in between.
    len_l, len_r = len(left), len(right)
    start = 0
    while start < len_l and start < len_r and left[start] == right[start]:
        start += 1
    end = 0
    while (
        end < len_l - start
        and end < len_r - start
        and left[len_l - 1 - end] == right[len_r - 1 - end]
    ):
        end += 1
    left = left[start : len_l - end]
    right = right[start : len_r - end]
    if len(left) < len(right):
        left, right = right, left
    rows, cols = len(left), len(right)
    if rows - cols > cutoff:
        return None
    if cols == 0:
        return rows if rows <= cutoff else None
    big = cutoff + 1  # out-of-band sentinel: "already too far"
    prev_prev: list[int] | None = None
    prev = [j if j <= big else big for j in range(cols + 1)]
    for i in range(1, rows + 1):
        ch_l = left[i - 1]
        lo = i - cutoff if i - cutoff > 1 else 1
        hi = i + cutoff if i + cutoff < cols else cols
        current = [big] * (cols + 1)
        current[0] = i
        row_min = big
        for j in range(lo, hi + 1):
            ch_r = right[j - 1]
            cost = 0 if ch_l == ch_r else 1
            best = prev[j - 1] + cost
            deletion = prev[j] + 1
            if deletion < best:
                best = deletion
            insertion = current[j - 1] + 1
            if insertion < best:
                best = insertion
            if (
                cost
                and i > 1
                and j > 1
                and ch_l == right[j - 2]
                and ch_r == left[i - 2]
            ):
                transposition = prev_prev[j - 2] + 1
                if transposition < best:
                    best = transposition
            current[j] = best
            if best < row_min:
                row_min = best
        if row_min > cutoff:
            return None
        prev_prev = prev
        prev = current
    distance = prev[cols]
    return distance if distance <= cutoff else None


def _distance_to_similarity(distance: int, left: str, right: str) -> float:
    longest = max(len(left), len(right))
    if longest == 0:
        return 1.0
    return 1.0 - distance / longest


def levenshtein_similarity(left: str, right: str) -> float:
    """Edit distance scaled into [0, 1] by the longer string's length."""
    return _distance_to_similarity(levenshtein_distance(left, right), left, right)


def damerau_levenshtein_similarity(left: str, right: str) -> float:
    """Transposition-aware edit similarity in [0, 1]."""
    return _distance_to_similarity(
        damerau_levenshtein_distance(left, right), left, right
    )


def damerau_levenshtein_similarity_at_least(
    left: str, right: str, floor: float
) -> float:
    """Threshold-aware :func:`damerau_levenshtein_similarity`.

    Returns the exact similarity whenever it is >= *floor*, and some
    value < *floor* (usually 0.0) otherwise, so ``sim_at_least(l, r, t)
    >= t`` is equivalent to ``similarity(l, r) >= t`` while only the
    Ukkonen band of the edit-distance table is ever filled.
    """
    longest = max(len(left), len(right))
    if longest == 0:
        return 1.0
    # similarity >= floor  <=>  distance <= (1 - floor) * longest. The
    # epsilon guards against 0.999...8 float artifacts truncating away
    # a boundary distance; an over-wide cutoff is harmless because the
    # returned distance (and hence similarity) is still exact.
    cutoff = int((1.0 - floor) * longest + 1e-9)
    distance = damerau_levenshtein_within(left, right, cutoff)
    if distance is None:
        return 0.0
    return 1.0 - distance / longest


def jaro_similarity(left: str, right: str) -> float:
    """Jaro similarity: match-window character agreement with transpositions."""
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    window = max(len(left), len(right)) // 2 - 1
    window = max(window, 0)
    left_flags = [False] * len(left)
    right_flags = [False] * len(right)
    matches = 0
    for i, ch in enumerate(left):
        start = max(0, i - window)
        stop = min(i + window + 1, len(right))
        for j in range(start, stop):
            if not right_flags[j] and right[j] == ch:
                left_flags[i] = True
                right_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, flagged in enumerate(left_flags):
        if not flagged:
            continue
        while not right_flags[j]:
            j += 1
        if left[i] != right[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len(left)
        + matches / len(right)
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(
    left: str, right: str, *, prefix_scale: float = 0.1, max_prefix: int = 4
) -> float:
    """Jaro similarity boosted for agreeing prefixes (Winkler's variant)."""
    jaro = jaro_similarity(left, right)
    prefix = 0
    for left_ch, right_ch in zip(left, right):
        if left_ch != right_ch or prefix >= max_prefix:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def _ngrams(text: str, n: int) -> set[str]:
    if len(text) < n:
        return {text} if text else set()
    return {text[i : i + n] for i in range(len(text) - n + 1)}


def ngram_similarity(left: str, right: str, *, n: int = 2) -> float:
    """Jaccard overlap of the character n-gram sets of the two strings."""
    left_grams = _ngrams(left, n)
    right_grams = _ngrams(right, n)
    if not left_grams and not right_grams:
        return 1.0
    if not left_grams or not right_grams:
        return 0.0
    overlap = len(left_grams & right_grams)
    return overlap / len(left_grams | right_grams)


def jaccard_similarity(left: Sequence[str] | set[str], right: Sequence[str] | set[str]) -> float:
    """Jaccard overlap of two token collections."""
    left_set = set(left)
    right_set = set(right)
    if not left_set and not right_set:
        return 1.0
    if not left_set or not right_set:
        return 0.0
    return len(left_set & right_set) / len(left_set | right_set)


def dice_similarity(left: Sequence[str] | set[str], right: Sequence[str] | set[str]) -> float:
    """Sørensen-Dice coefficient of two token collections."""
    left_set = set(left)
    right_set = set(right)
    if not left_set and not right_set:
        return 1.0
    if not left_set or not right_set:
        return 0.0
    return 2.0 * len(left_set & right_set) / (len(left_set) + len(right_set))


def containment_similarity(
    left: Sequence[str] | set[str], right: Sequence[str] | set[str]
) -> float:
    """Overlap divided by the *smaller* set: 1.0 when one contains the other.

    Useful for venue names where one mention is a truncation of the
    other ("SIGMOD" vs "SIGMOD Conference").
    """
    left_set = set(left)
    right_set = set(right)
    if not left_set and not right_set:
        return 1.0
    if not left_set or not right_set:
        return 0.0
    return len(left_set & right_set) / min(len(left_set), len(right_set))


def longest_common_substring_similarity(left: str, right: str) -> float:
    """Length of the longest common substring over the shorter length."""
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    if len(left) > len(right):
        left, right = right, left
    previous = [0] * (len(right) + 1)
    best = 0
    for left_ch in left:
        current = [0]
        for j, right_ch in enumerate(right, start=1):
            length = previous[j - 1] + 1 if left_ch == right_ch else 0
            current.append(length)
            if length > best:
                best = length
        previous = current
    return best / len(left)


def monge_elkan_similarity(
    left: str,
    right: str,
    *,
    inner: Callable[[str, str], float] = jaro_winkler_similarity,
) -> float:
    """Hybrid token similarity: average best inner-match per left token.

    Monge-Elkan is asymmetric; we symmetrise by taking the mean of the
    two directions so the engine can rely on symmetry.
    """
    left_tokens = tokenize(left)
    right_tokens = tokenize(right)
    if not left_tokens and not right_tokens:
        return 1.0
    if not left_tokens or not right_tokens:
        return 0.0

    def directed(source: list[str], target: list[str]) -> float:
        total = 0.0
        for token in source:
            total += max(inner(token, other) for other in target)
        return total / len(source)

    return (directed(left_tokens, right_tokens) + directed(right_tokens, left_tokens)) / 2.0


def prefix_similarity(left: str, right: str) -> float:
    """Shared-prefix length over the length of the longer string."""
    if not left and not right:
        return 1.0
    prefix = 0
    for left_ch, right_ch in zip(left, right):
        if left_ch != right_ch:
            break
        prefix += 1
    return prefix / max(len(left), len(right))
