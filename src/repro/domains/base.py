"""Shared helpers for concrete domain models.

The S_rv functions of both domains follow the same pattern: a small
decision tree over which evidence channels are *present*, realised as
the maximum over a set of linear profiles (Equation 1 instantiated per
availability pattern). Taking the max over profiles keeps S_rv monotone
in every channel score — adding an attribute value can only reveal a
higher-scoring profile, never lower the result — which is the §3.2
termination requirement.
"""

from __future__ import annotations

from collections.abc import Mapping

__all__ = ["max_of_profiles", "PAPER_MERGE_THRESHOLD", "PAPER_BETA", "PAPER_GAMMA"]

#: §5.2: "we set the merge-threshold to 0.85 for all reference
#: similarities".
PAPER_MERGE_THRESHOLD = 0.85
#: §5.2: β = 0.1 for all classes except Venue (0.2).
PAPER_BETA = 0.1
#: §5.2: γ = 0.05 for all classes.
PAPER_GAMMA = 0.05


def max_of_profiles(
    evidence: Mapping[str, float],
    profiles: tuple[tuple[tuple[str, float], ...], ...],
) -> float:
    """Evaluate Equation 1 under each profile; return the best.

    Each profile is a tuple of (channel, weight) terms. A profile
    *applies* only when every one of its channels is present in
    *evidence*; inapplicable profiles are skipped. Returns 0.0 when no
    profile applies.
    """
    best = 0.0
    for profile in profiles:
        score = 0.0
        applicable = True
        for channel, weight in profile:
            value = evidence.get(channel)
            if value is None:
                applicable = False
                break
            score += weight * value
        if applicable and score > best:
            best = score
    return min(best, 1.0)
