"""Concrete domain models: PIM (§5.1) and Cora (§5.4)."""

from .base import PAPER_BETA, PAPER_GAMMA, PAPER_MERGE_THRESHOLD, max_of_profiles
from .cora import CORA_SCHEMA, CoraDomainModel
from .pim import PIM_SCHEMA, PimDomainModel, depgraph_config
from .tuning import (
    TrainingSet,
    TunedDomainModel,
    collect_training_pairs,
    fit_profile_weights,
    tune_domain,
)

__all__ = [
    "TrainingSet",
    "TunedDomainModel",
    "collect_training_pairs",
    "fit_profile_weights",
    "tune_domain",
    "PAPER_BETA",
    "PAPER_GAMMA",
    "PAPER_MERGE_THRESHOLD",
    "max_of_profiles",
    "CORA_SCHEMA",
    "CoraDomainModel",
    "PIM_SCHEMA",
    "PimDomainModel",
    "depgraph_config",
]
