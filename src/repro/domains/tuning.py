"""Tuning S_rv weights from labelled data (the paper's future work #2).

§7: "we will consider how to use user feedback to adjust similarity
functions and improve future reconciliation results." This module
closes that loop for any :class:`~repro.core.model.DomainModel`:

1. :func:`collect_training_pairs` builds a reconciler, harvests every
   candidate pair's channel-evidence vector, and labels it from a gold
   standard (or from explicit user feedback pairs).
2. :func:`fit_profile_weights` learns a single linear profile per class
   with :mod:`repro.similarity.learning`.
3. :class:`TunedDomainModel` wraps the base model, replacing its
   ``rv_score`` with ``max(base, learned)`` — the learned profile can
   only *add* evidence, preserving the engine's monotonicity contract.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from ..core.engine import Reconciler
from ..core.model import DomainModel, EngineConfig
from ..core.references import ReferenceStore
from ..similarity.learning import LabeledPair, fit_least_squares

__all__ = [
    "TrainingSet",
    "collect_training_pairs",
    "fit_profile_weights",
    "TunedDomainModel",
    "tune_domain",
]


@dataclass(frozen=True)
class TrainingSet:
    """Evidence vectors for one class, with the channel order used."""

    class_name: str
    channels: tuple[str, ...]
    pairs: tuple[LabeledPair, ...]

    @property
    def n_matches(self) -> int:
        return sum(1 for pair in self.pairs if pair.is_match)


def collect_training_pairs(
    store: ReferenceStore,
    domain: DomainModel,
    class_name: str,
    gold: Mapping[str, str],
    *,
    config: EngineConfig | None = None,
) -> TrainingSet:
    """Harvest labelled channel-evidence vectors for *class_name*.

    Builds the dependency graph (no iteration), then reads each pair
    node's atomic-channel scores. Missing channels contribute 0.0 —
    the learner sees exactly what Equation 1 would see.
    """
    config = config or EngineConfig(enrich=False, propagate=False, constraints=False)
    reconciler = Reconciler(store, domain, config)
    reconciler.build()
    channels = tuple(
        channel.name for channel in domain.atomic_channels(class_name)
    )
    pairs: list[LabeledPair] = []
    for node in reconciler.graph.nodes():
        if node.class_name != class_name:
            continue
        left_entity = gold.get(node.left)
        right_entity = gold.get(node.right)
        if left_entity is None or right_entity is None:
            continue
        features = tuple(
            node.channel_score(channel) or 0.0 for channel in channels
        )
        pairs.append(LabeledPair(features, left_entity == right_entity))
    return TrainingSet(class_name=class_name, channels=channels, pairs=tuple(pairs))


def fit_profile_weights(training: TrainingSet, *, ridge: float = 1e-3) -> dict[str, float]:
    """Learn one linear Equation-1 profile from a training set."""
    if not training.pairs:
        raise ValueError(f"no labelled pairs for class {training.class_name!r}")
    weights = fit_least_squares(training.pairs, ridge=ridge)
    return dict(zip(training.channels, weights))


class TunedDomainModel(DomainModel):
    """A domain model with a learned profile layered on top.

    Delegates everything to *base*; ``rv_score`` becomes the max of the
    base decision tree and the learned linear profile for the tuned
    class — monotone whenever the base is, since ``max`` preserves
    monotonicity and linear non-negative weights are monotone.
    """

    def __init__(self, base: DomainModel, learned: dict[str, dict[str, float]]):
        self._base = base
        self._learned = learned
        self.schema = base.schema

    # -- delegation -------------------------------------------------------
    def atomic_channels(self, class_name):
        return self._base.atomic_channels(class_name)

    def association_channels(self, class_name):
        return self._base.association_channels(class_name)

    def strong_dependencies(self):
        return self._base.strong_dependencies()

    def weak_dependencies(self):
        return self._base.weak_dependencies()

    def merge_threshold(self, class_name):
        return self._base.merge_threshold(class_name)

    def beta(self, class_name):
        return self._base.beta(class_name)

    def gamma(self, class_name):
        return self._base.gamma(class_name)

    def t_rv(self, class_name):
        return self._base.t_rv(class_name)

    def blocking_keys(self, reference):
        return self._base.blocking_keys(reference)

    def key_values(self, reference):
        return self._base.key_values(reference)

    def conflict(self, class_name, left, right):
        return self._base.conflict(class_name, left, right)

    def distinct_pairs(self, references):
        return self._base.distinct_pairs(references)

    def boolean_evidence_allowed(self, class_name, left, right):
        return self._base.boolean_evidence_allowed(class_name, left, right)

    def class_order(self):
        return self._base.class_order()

    # -- the tuned part -----------------------------------------------------
    def rv_score(self, class_name: str, evidence: Mapping[str, float]) -> float:
        base_score = self._base.rv_score(class_name, evidence)
        weights = self._learned.get(class_name)
        if not weights:
            return base_score
        learned_score = sum(
            weight * evidence.get(channel, 0.0)
            for channel, weight in weights.items()
        )
        return min(1.0, max(base_score, learned_score))


def tune_domain(
    store: ReferenceStore,
    domain: DomainModel,
    gold: Mapping[str, str],
    class_names: Sequence[str],
) -> TunedDomainModel:
    """Convenience: collect, fit and wrap in one call."""
    learned = {}
    for class_name in class_names:
        training = collect_training_pairs(store, domain, class_name, gold)
        if training.pairs and 0 < training.n_matches < len(training.pairs):
            learned[class_name] = fit_profile_weights(training)
    return TunedDomainModel(domain, learned)
