"""The Personal Information Management domain (Figure 1(a), §5.1).

Classes: Person (name, email, coAuthor*, emailContact*), Article
(title, pages, year, authoredBy*, publishedIn*) and Venue (name, year,
location) — conferences and journals merged into one Venue class, as in
the paper's evaluation.

The evidence wiring follows §2.2/§4/§5.2:

* Person pairs: name vs name, email vs email (exact address = key),
  and the cross-attribute name-vs-email channel; strong-boolean
  evidence from reconciled articles (aligned authors); weak-boolean
  evidence from common contacts (coAuthor + emailContact).
* Article pairs: title/pages/year plus real-valued evidence from the
  aligned author pair nodes and the venue pair node (Figure 2(a)).
* Venue pairs: name (acronym-aware) and year; strong-boolean evidence
  from reconciled articles — "a single article cannot be published in
  two different conferences".

Parameters are the paper's (§5.2): merge-threshold 0.85, attribute
merge-threshold 1.0, β = 0.1 (0.2 for Venue), γ = 0.05, t_rv = 0.7
(0.1 for Venue), shared across *all* datasets.
"""

from __future__ import annotations

import functools
from collections.abc import Iterable, Mapping

from ..core.model import (
    AssociationChannel,
    AtomicChannel,
    DomainModel,
    EngineConfig,
    StrongDependency,
    WeakDependency,
)
from ..core.references import Reference
from ..core.schema import Attribute, Schema, SchemaClass
from ..perf.features import FeatureCache
from ..similarity import (
    NameCompat,
    email_features as _plain_email_features,
    canonical_given_names,
    email_similarity,
    email_similarity_features,
    email_upper_bound,
    monge_elkan_similarity,
    name_compatibility,
    name_email_similarity,
    name_similarity,
    pages_similarity,
    register_cache,
    title_similarity,
    title_similarity_features,
    title_upper_bound,
    venue_name_similarity,
    venue_similarity_features,
    venue_upper_bound,
    year_similarity,
)
from ..similarity.tokens import tokenize
from .base import PAPER_BETA, PAPER_GAMMA, PAPER_MERGE_THRESHOLD, max_of_profiles

__all__ = ["PIM_SCHEMA", "PimDomainModel", "depgraph_config"]


PIM_SCHEMA = Schema(
    [
        SchemaClass(
            "Person",
            [
                Attribute.atomic("name"),
                Attribute.atomic("email"),
                Attribute.association("coAuthor", target="Person"),
                Attribute.association("emailContact", target="Person"),
            ],
        ),
        SchemaClass(
            "Article",
            [
                Attribute.atomic("title"),
                Attribute.atomic("pages"),
                Attribute.atomic("year"),
                Attribute.association("authoredBy", target="Person"),
                Attribute.association("publishedIn", target="Venue"),
            ],
        ),
        SchemaClass(
            "Venue",
            [
                Attribute.atomic("name"),
                Attribute.atomic("year"),
                Attribute.atomic("location"),
            ],
        ),
    ]
)


# Comparators are memoised: the same value pair is compared many times
# across candidate pairs. The engine's hot path now runs the
# feature-based fast comparators below plus its own value-pair memo, so
# these string-keyed caches only back the constraint/eligibility checks
# and external callers — bounded tightly and registered for
# clear_similarity_caches().
_CACHE_SIZE = 20_000
_cached_name_sim = register_cache(functools.lru_cache(maxsize=_CACHE_SIZE)(name_similarity))
_cached_email_sim = register_cache(functools.lru_cache(maxsize=_CACHE_SIZE)(email_similarity))
_cached_name_email_sim = register_cache(
    functools.lru_cache(maxsize=_CACHE_SIZE)(name_email_similarity)
)
_cached_title_sim = register_cache(functools.lru_cache(maxsize=_CACHE_SIZE)(title_similarity))
_cached_venue_sim = register_cache(
    functools.lru_cache(maxsize=_CACHE_SIZE)(venue_name_similarity)
)
_cached_name_compat = register_cache(
    functools.lru_cache(maxsize=_CACHE_SIZE)(name_compatibility)
)


@register_cache
@functools.lru_cache(maxsize=_CACHE_SIZE)
def _location_similarity(left: str, right: str) -> float:
    return monge_elkan_similarity(left, right)


# Fast-path comparators over precomputed features. Each is exact
# whenever the true score reaches the floor the engine compares against
# (property-tested in tests/test_perf_features.py).
def _fast_name_similarity(left, right, floor: float) -> float:
    return name_similarity(left, right)  # accepts ParsedName directly


def _fast_name_email_similarity(name_features, email_feats, floor: float) -> float:
    if email_feats.parsed is None:
        return 0.0
    return name_email_similarity(name_features, email_feats.parsed)


# S_rv decision trees, realised as max-over-profiles (see domains.base).
_PERSON_PROFILES = (
    (("name", 1.0),),
    (("email", 1.0),),
    (("name", 0.4), ("name_email", 0.6)),
    (("name_email", 0.75),),
)

_ARTICLE_PROFILES = (
    (("title", 0.80),),
    (("title", 0.70), ("pages", 0.30)),
    (("title", 0.75), ("year", 0.25)),
    (("title", 0.70), ("authors", 0.30)),
    (("title", 0.60), ("pages", 0.25), ("authors", 0.15)),
    (("title", 0.65), ("year", 0.15), ("authors", 0.20)),
    (("title", 0.55), ("pages", 0.20), ("authors", 0.15), ("venue", 0.10)),
)

# Venue identity is the *series* (SIGMOD-1994 and SIGMOD-2004 are one
# venue), so the year contributes nothing; with MAX pooling over
# enriched clusters a year channel would always saturate anyway.
_VENUE_PROFILES = (
    (("name", 0.90),),
    (("name", 0.82), ("location", 0.10)),
)

_PROFILES = {
    "Person": _PERSON_PROFILES,
    "Article": _ARTICLE_PROFILES,
    "Venue": _VENUE_PROFILES,
}


class PimDomainModel(DomainModel):
    """Domain wiring and similarity models for the PIM information space."""

    schema = PIM_SCHEMA

    def __init__(self) -> None:
        # One feature cache per domain instance: every channel fast
        # path, blocking-key derivation and constraint check shares the
        # precomputed per-value features.
        self.feature_cache = FeatureCache()
        name_features = self.feature_cache.extractor("name")
        email_features = self.feature_cache.extractor("email")
        title_features = self.feature_cache.extractor("title")
        venue_features = self.feature_cache.extractor("venue")
        self._name_features = name_features
        self._email_features = email_features
        self._venue_features = venue_features
        self._atomic = {
            "Person": (
                AtomicChannel(
                    name="name",
                    class_name="Person",
                    left_attr="name",
                    right_attr="name",
                    comparator=_cached_name_sim,
                    liberal_threshold=0.5,
                    features_left=name_features,
                    features_right=name_features,
                    fast_comparator=_fast_name_similarity,
                ),
                AtomicChannel(
                    name="email",
                    class_name="Person",
                    left_attr="email",
                    right_attr="email",
                    comparator=_cached_email_sim,
                    liberal_threshold=0.5,
                    is_key=True,
                    features_left=email_features,
                    features_right=email_features,
                    fast_comparator=email_similarity_features,
                    score_upper_bound=email_upper_bound,
                ),
                AtomicChannel(
                    name="name_email",
                    class_name="Person",
                    left_attr="name",
                    right_attr="email",
                    comparator=_cached_name_email_sim,
                    liberal_threshold=0.6,
                    features_left=name_features,
                    features_right=email_features,
                    fast_comparator=_fast_name_email_similarity,
                ),
            ),
            "Article": (
                AtomicChannel(
                    name="title",
                    class_name="Article",
                    left_attr="title",
                    right_attr="title",
                    comparator=_cached_title_sim,
                    liberal_threshold=0.5,
                    features_left=title_features,
                    features_right=title_features,
                    fast_comparator=title_similarity_features,
                    score_upper_bound=title_upper_bound,
                ),
                AtomicChannel(
                    name="pages",
                    class_name="Article",
                    left_attr="pages",
                    right_attr="pages",
                    comparator=pages_similarity,
                    liberal_threshold=0.5,
                ),
                AtomicChannel(
                    name="year",
                    class_name="Article",
                    left_attr="year",
                    right_attr="year",
                    comparator=year_similarity,
                    liberal_threshold=0.5,
                ),
            ),
            "Venue": (
                AtomicChannel(
                    name="name",
                    class_name="Venue",
                    left_attr="name",
                    right_attr="name",
                    comparator=_cached_venue_sim,
                    liberal_threshold=0.25,
                    features_left=venue_features,
                    features_right=venue_features,
                    fast_comparator=venue_similarity_features,
                    score_upper_bound=venue_upper_bound,
                ),
                AtomicChannel(
                    name="year",
                    class_name="Venue",
                    left_attr="year",
                    right_attr="year",
                    comparator=year_similarity,
                    liberal_threshold=0.5,
                ),
                AtomicChannel(
                    name="location",
                    class_name="Venue",
                    left_attr="location",
                    right_attr="location",
                    comparator=_location_similarity,
                    liberal_threshold=0.6,
                ),
            ),
        }
        self._assoc = {
            "Person": (),
            "Article": (
                AssociationChannel(
                    name="authors",
                    class_name="Article",
                    attr="authoredBy",
                    target_class="Person",
                    aggregate="mean_aligned",
                ),
                AssociationChannel(
                    name="venue",
                    class_name="Article",
                    attr="publishedIn",
                    target_class="Venue",
                    aggregate="max",
                ),
            ),
            "Venue": (),
        }

    # -- wiring -----------------------------------------------------------
    def atomic_channels(self, class_name: str):
        return self._atomic[class_name]

    def association_channels(self, class_name: str):
        return self._assoc[class_name]

    def strong_dependencies(self):
        return (
            StrongDependency("Article", "authoredBy", "Person"),
            StrongDependency(
                "Article", "publishedIn", "Venue", ensure_target_nodes=True
            ),
        )

    def weak_dependencies(self):
        return (WeakDependency("Person", ("coAuthor", "emailContact")),)

    # -- scoring ------------------------------------------------------------
    def rv_score(self, class_name: str, evidence: Mapping[str, float]) -> float:
        return max_of_profiles(evidence, _PROFILES[class_name])

    def merge_threshold(self, class_name: str) -> float:
        return PAPER_MERGE_THRESHOLD

    def beta(self, class_name: str) -> float:
        return 0.2 if class_name == "Venue" else PAPER_BETA

    def gamma(self, class_name: str) -> float:
        return PAPER_GAMMA

    def t_rv(self, class_name: str) -> float:
        return 0.1 if class_name == "Venue" else 0.7

    # -- candidates & keys ----------------------------------------------------
    def blocking_keys(self, reference: Reference) -> Iterable[str]:
        if reference.class_name == "Person":
            return _person_blocking_keys(
                reference, self._name_features, self._email_features
            )
        if reference.class_name == "Article":
            return _article_blocking_keys(reference)
        return _venue_blocking_keys(reference, self._venue_features)

    def key_values(self, reference: Reference) -> Iterable[str]:
        if reference.class_name == "Person":
            # Identical email addresses denote one mailbox owner.
            return [
                "em:" + parsed.raw
                for value in reference.get("email")
                if (parsed := self._email_features(value).parsed) is not None
            ]
        if reference.class_name == "Venue":
            # Identical normalised venue strings denote one venue.
            return [
                "vn:" + features.norm
                for value in reference.get("name")
                if (features := self._venue_features(value)).norm
            ]
        return ()

    def boolean_evidence_allowed(
        self, class_name: str, left: Mapping, right: Mapping
    ) -> bool:
        """§4's stricter condition for persons: boolean boosts apply
        only when each side carries a surname-bearing name *or* an
        email account that strongly encodes the other side's name
        (serving as a name form) — a bare "ping" plus a couple of
        shared contacts must not merge onto somebody else's Ping."""
        if class_name != "Person":
            return True
        if _has_structured_name(left, self._name_features) and _has_structured_name(
            right, self._name_features
        ):
            return True
        return _cross_name_evidence(left, right) >= 0.9

    # -- negative evidence -------------------------------------------------
    def conflict(
        self, class_name: str, left: Mapping, right: Mapping
    ) -> bool:
        if class_name != "Person":
            return False
        return _person_conflict(left, right, self._email_features)

    def distinct_pairs(self, references: Iterable[Reference]):
        """§5.3 constraint 1: authors of a paper are distinct persons."""
        for reference in references:
            if reference.class_name != "Article":
                continue
            authors = reference.get("authoredBy")
            for i, left in enumerate(authors):
                for right in authors[i + 1 :]:
                    yield left, right

    def class_order(self):
        # Venue and Person pairs feed Article pairs as real-valued
        # neighbours, so they are computed first (§3.2 heuristic).
        return ("Venue", "Person", "Article")


def _person_blocking_keys(
    reference: Reference, name_features, email_features
) -> Iterable[str]:
    keys: set[str] = set()
    for value in reference.get("name"):
        parsed = name_features(value)
        if parsed.surname:
            for part in parsed.surname.split():
                keys.add("t:" + part)
        if parsed.given and len(parsed.given) >= 3:
            for canonical in canonical_given_names(parsed.given):
                keys.add("t:" + canonical)
    for value in reference.get("email"):
        parsed_email = email_features(value).parsed
        if parsed_email is None:
            continue
        keys.add("e:" + parsed_email.raw)
        for token in parsed_email.account_tokens:
            if len(token) >= 3:
                keys.add("t:" + token)
    return sorted(keys)


def _article_blocking_keys(reference: Reference) -> Iterable[str]:
    keys: set[str] = set()
    for value in reference.get("title"):
        tokens = tokenize(value, drop_stopwords=True)
        # The longest tokens are the most selective ones; three keys
        # give typo'd titles three chances to co-block.
        for token in sorted(tokens, key=lambda t: (-len(t), t))[:3]:
            keys.add("w:" + token)
    for value in reference.get("pages"):
        digits = "".join(ch for ch in value if ch.isdigit() or ch == "-")
        head = digits.split("-", 1)[0]
        if head:
            keys.add("p:" + head)
    return sorted(keys)


def _venue_blocking_keys(reference: Reference, venue_features) -> Iterable[str]:
    keys: set[str] = set()
    for value in reference.get("name"):
        features = venue_features(value)
        for token in features.content:
            keys.add("v:" + token)
        if features.norm:
            keys.add("n:" + features.norm)
    return sorted(keys)


#: Webmail organisations where distinct accounts say nothing about
#: distinct servers "belonging" to one person (constraint 3 exemption).
_PUBLIC_MAIL_HOSTS = frozenset(
    {"gmail", "yahoo", "hotmail", "aol", "outlook", "mail", "gmx", "protonmail"}
)


def _cross_name_evidence(left: Mapping, right: Mapping) -> float:
    """Best name-vs-email score across the two clusters' values."""
    best = 0.0
    for name in left.get("name", ()):
        for email in right.get("email", ()):
            best = max(best, _cached_name_email_sim(name, email))
    for name in right.get("name", ()):
        for email in left.get("email", ()):
            best = max(best, _cached_name_email_sim(name, email))
    return best


def _has_structured_name(values: Mapping, name_features) -> bool:
    return any(
        name_features(mention).surname for mention in values.get("name", ())
    )


def _person_conflict(
    left: Mapping, right: Mapping, email_features=_plain_email_features
) -> bool:
    """Constraints 2 and 3 of §5.3 over pooled cluster values."""
    left_emails = [
        parsed
        for value in left.get("email", ())
        if (parsed := email_features(value).parsed) is not None
    ]
    right_emails = [
        parsed
        for value in right.get("email", ())
        if (parsed := email_features(value).parsed) is not None
    ]
    # Constraint 2's escape hatch: a shared address trumps everything.
    left_raw = {parsed.raw for parsed in left_emails}
    if left_raw & {parsed.raw for parsed in right_emails}:
        return False
    # Constraint 3: one account per person per email server. It only
    # makes sense for institutional servers — everyone has a Gmail
    # account, so public webmail hosts are exempt — and accounts in
    # typo range of each other are tolerated (multi-valued noise, §3.3).
    for parsed_l in left_emails:
        for parsed_r in right_emails:
            if (
                parsed_l.domain_core == parsed_r.domain_core
                and parsed_l.domain_core not in _PUBLIC_MAIL_HOSTS
                and parsed_l.account != parsed_r.account
                and _cached_email_sim(parsed_l.raw, parsed_r.raw) < 0.85
            ):
                return True
    # Constraint 2: same first name + completely different last name (or
    # vice versa), detected by the name-compatibility classifier.
    for name_l in left.get("name", ()):
        for name_r in right.get("name", ()):
            if _cached_name_compat(name_l, name_r) is NameCompat.CONFLICT:
                return True
    return False


def depgraph_config() -> EngineConfig:
    """The full DepGraph configuration used in the paper's evaluation."""
    return EngineConfig()
