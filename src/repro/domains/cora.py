"""The Cora citation domain (Figure 5, §5.4).

Schema: Person (name, coAuthor*), Article (title, pages, authoredBy*,
publishedIn*), Venue (name, year, location). Compared to PIM, person
references carry *only a name* — no email, hence no key attribute and
no cross-attribute channel — and the weak-boolean evidence comes from
co-authors alone. Everything else (parameters, thresholds, the venue
machinery) matches the PIM model, because the paper runs the same
similarity functions and thresholds on all datasets.
"""

from __future__ import annotations

import functools
from collections.abc import Iterable, Mapping

from ..core.model import (
    AssociationChannel,
    AtomicChannel,
    DomainModel,
    StrongDependency,
    WeakDependency,
)
from ..core.references import Reference
from ..core.schema import Attribute, Schema, SchemaClass
from ..perf.features import FeatureCache
from ..similarity import (
    monge_elkan_similarity,
    name_similarity,
    pages_similarity,
    register_cache,
    title_similarity,
    title_similarity_features,
    title_upper_bound,
    venue_name_similarity,
    venue_similarity_features,
    venue_upper_bound,
    year_similarity,
)
from ..similarity.nicknames import canonical_given_names
from ..similarity.tokens import tokenize
from .base import PAPER_BETA, PAPER_GAMMA, PAPER_MERGE_THRESHOLD, max_of_profiles

__all__ = ["CORA_SCHEMA", "CoraDomainModel"]


CORA_SCHEMA = Schema(
    [
        SchemaClass(
            "Person",
            [
                Attribute.atomic("name"),
                Attribute.association("coAuthor", target="Person"),
            ],
        ),
        SchemaClass(
            "Article",
            [
                Attribute.atomic("title"),
                Attribute.atomic("pages"),
                Attribute.atomic("year"),
                Attribute.association("authoredBy", target="Person"),
                Attribute.association("publishedIn", target="Venue"),
            ],
        ),
        SchemaClass(
            "Venue",
            [
                Attribute.atomic("name"),
                Attribute.atomic("year"),
                Attribute.atomic("location"),
            ],
        ),
    ]
)

# Bounded string-keyed memos for callers outside the engine's
# feature-based fast path (see domains.pim for the rationale).
_CACHE_SIZE = 20_000
_cached_name_sim = register_cache(functools.lru_cache(maxsize=_CACHE_SIZE)(name_similarity))
_cached_title_sim = register_cache(functools.lru_cache(maxsize=_CACHE_SIZE)(title_similarity))
_cached_venue_sim = register_cache(
    functools.lru_cache(maxsize=_CACHE_SIZE)(venue_name_similarity)
)


@register_cache
@functools.lru_cache(maxsize=_CACHE_SIZE)
def _location_similarity(left: str, right: str) -> float:
    return monge_elkan_similarity(left, right)


def _fast_name_similarity(left, right, floor: float) -> float:
    return name_similarity(left, right)  # accepts ParsedName directly


_PERSON_PROFILES = ((("name", 1.0),),)

_ARTICLE_PROFILES = (
    (("title", 0.80),),
    (("title", 0.70), ("pages", 0.30)),
    (("title", 0.75), ("year", 0.25)),
    (("title", 0.70), ("authors", 0.30)),
    (("title", 0.60), ("pages", 0.25), ("authors", 0.15)),
    (("title", 0.65), ("year", 0.15), ("authors", 0.20)),
    (("title", 0.55), ("pages", 0.20), ("authors", 0.15), ("venue", 0.10)),
)

# Venue identity is the *series* (SIGMOD-1994 and SIGMOD-2004 are one
# venue), so the year contributes nothing; with MAX pooling over
# enriched clusters a year channel would always saturate anyway.
_VENUE_PROFILES = (
    (("name", 0.90),),
    (("name", 0.82), ("location", 0.10)),
)

_PROFILES = {
    "Person": _PERSON_PROFILES,
    "Article": _ARTICLE_PROFILES,
    "Venue": _VENUE_PROFILES,
}


class CoraDomainModel(DomainModel):
    """Domain wiring for the citation-portal information space."""

    schema = CORA_SCHEMA

    def __init__(self) -> None:
        self.feature_cache = FeatureCache()
        name_features = self.feature_cache.extractor("name")
        title_features = self.feature_cache.extractor("title")
        venue_features = self.feature_cache.extractor("venue")
        self._name_features = name_features
        self._venue_features = venue_features
        self._atomic = {
            "Person": (
                AtomicChannel(
                    name="name",
                    class_name="Person",
                    left_attr="name",
                    right_attr="name",
                    comparator=_cached_name_sim,
                    liberal_threshold=0.5,
                    features_left=name_features,
                    features_right=name_features,
                    fast_comparator=_fast_name_similarity,
                ),
            ),
            "Article": (
                AtomicChannel(
                    name="title",
                    class_name="Article",
                    left_attr="title",
                    right_attr="title",
                    comparator=_cached_title_sim,
                    liberal_threshold=0.5,
                    features_left=title_features,
                    features_right=title_features,
                    fast_comparator=title_similarity_features,
                    score_upper_bound=title_upper_bound,
                ),
                AtomicChannel(
                    name="pages",
                    class_name="Article",
                    left_attr="pages",
                    right_attr="pages",
                    comparator=pages_similarity,
                    liberal_threshold=0.5,
                ),
                AtomicChannel(
                    name="year",
                    class_name="Article",
                    left_attr="year",
                    right_attr="year",
                    comparator=year_similarity,
                    liberal_threshold=0.5,
                ),
            ),
            "Venue": (
                AtomicChannel(
                    name="name",
                    class_name="Venue",
                    left_attr="name",
                    right_attr="name",
                    comparator=_cached_venue_sim,
                    liberal_threshold=0.25,
                    features_left=venue_features,
                    features_right=venue_features,
                    fast_comparator=venue_similarity_features,
                    score_upper_bound=venue_upper_bound,
                ),
                AtomicChannel(
                    name="year",
                    class_name="Venue",
                    left_attr="year",
                    right_attr="year",
                    comparator=year_similarity,
                    liberal_threshold=0.5,
                ),
                AtomicChannel(
                    name="location",
                    class_name="Venue",
                    left_attr="location",
                    right_attr="location",
                    comparator=_location_similarity,
                    liberal_threshold=0.6,
                ),
            ),
        }
        self._assoc = {
            "Person": (),
            "Article": (
                AssociationChannel(
                    name="authors",
                    class_name="Article",
                    attr="authoredBy",
                    target_class="Person",
                    aggregate="mean_aligned",
                ),
                AssociationChannel(
                    name="venue",
                    class_name="Article",
                    attr="publishedIn",
                    target_class="Venue",
                    aggregate="max",
                ),
            ),
            "Venue": (),
        }

    def atomic_channels(self, class_name: str):
        return self._atomic[class_name]

    def association_channels(self, class_name: str):
        return self._assoc[class_name]

    def strong_dependencies(self):
        return (
            StrongDependency("Article", "authoredBy", "Person"),
            StrongDependency(
                "Article", "publishedIn", "Venue", ensure_target_nodes=True
            ),
        )

    def weak_dependencies(self):
        return (WeakDependency("Person", ("coAuthor",)),)

    def rv_score(self, class_name: str, evidence: Mapping[str, float]) -> float:
        return max_of_profiles(evidence, _PROFILES[class_name])

    def merge_threshold(self, class_name: str) -> float:
        return PAPER_MERGE_THRESHOLD

    def beta(self, class_name: str) -> float:
        return 0.2 if class_name == "Venue" else PAPER_BETA

    def gamma(self, class_name: str) -> float:
        return PAPER_GAMMA

    def t_rv(self, class_name: str) -> float:
        return 0.1 if class_name == "Venue" else 0.7

    def blocking_keys(self, reference: Reference) -> Iterable[str]:
        if reference.class_name == "Person":
            return _person_blocking_keys(reference, self._name_features)
        if reference.class_name == "Article":
            return _article_blocking_keys(reference)
        return _venue_blocking_keys(reference, self._venue_features)

    def key_values(self, reference: Reference) -> Iterable[str]:
        if reference.class_name == "Venue":
            return [
                "vn:" + features.norm
                for value in reference.get("name")
                if (features := self._venue_features(value)).norm
            ]
        return ()

    def distinct_pairs(self, references: Iterable[Reference]):
        """Constraint 1: co-authors of one citation are distinct."""
        for reference in references:
            if reference.class_name != "Article":
                continue
            authors = reference.get("authoredBy")
            for i, left in enumerate(authors):
                for right in authors[i + 1 :]:
                    yield left, right

    def class_order(self):
        return ("Venue", "Person", "Article")


def _person_blocking_keys(reference: Reference, name_features) -> Iterable[str]:
    keys: set[str] = set()
    for value in reference.get("name"):
        parsed = name_features(value)
        if parsed.surname:
            for part in parsed.surname.split():
                keys.add("t:" + part)
        if parsed.given and len(parsed.given) >= 3:
            for canonical in canonical_given_names(parsed.given):
                keys.add("t:" + canonical)
    return sorted(keys)


def _article_blocking_keys(reference: Reference) -> Iterable[str]:
    keys: set[str] = set()
    for value in reference.get("title"):
        tokens = tokenize(value, drop_stopwords=True)
        for token in sorted(tokens, key=lambda t: (-len(t), t))[:3]:
            keys.add("w:" + token)
    for value in reference.get("pages"):
        digits = "".join(ch for ch in value if ch.isdigit() or ch == "-")
        head = digits.split("-", 1)[0]
        if head:
            keys.add("p:" + head)
    return sorted(keys)


def _venue_blocking_keys(reference: Reference, venue_features) -> Iterable[str]:
    keys: set[str] = set()
    for value in reference.get("name"):
        features = venue_features(value)
        for token in features.content:
            keys.add("v:" + token)
        if features.norm:
            keys.add("n:" + features.norm)
    return sorted(keys)
