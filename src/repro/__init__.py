"""repro — Reference Reconciliation in Complex Information Spaces.

A complete, from-scratch reproduction of Dong, Halevy & Madhavan
(SIGMOD 2005): the dependency-graph reference-reconciliation algorithm
("DepGraph") with reconciliation propagation, reference enrichment and
negative-evidence constraints, plus everything its evaluation needs —
attribute similarity functions, the PIM and Cora domain models, the
InDepDec baseline, synthetic benchmark datasets with gold standards,
and the experiment harness regenerating every table and figure.

Quickstart::

    from repro import Reconciler, EngineConfig, PimDomainModel
    from repro.core import Reference, ReferenceStore

    domain = PimDomainModel()
    store = ReferenceStore(domain.schema, my_references)
    result = Reconciler(store, domain, EngineConfig()).run()
    for cluster in result.clusters("Person"):
        print(cluster)
"""

from .baselines import ablation_config, indepdec_config
from .core import (
    FULL,
    MERGE,
    PROPAGATION,
    TRADITIONAL,
    EngineConfig,
    IncrementalReconciler,
    Reconciler,
    ReconciliationResult,
    Reference,
    ReferenceStore,
    Schema,
)
from .datasets import Dataset, generate_cora_dataset, generate_pim_dataset
from .domains import CoraDomainModel, PimDomainModel
from .evaluation import pairwise_scores
from .obs import Telemetry

__version__ = "1.0.0"

__all__ = [
    "ablation_config",
    "indepdec_config",
    "FULL",
    "MERGE",
    "PROPAGATION",
    "TRADITIONAL",
    "EngineConfig",
    "IncrementalReconciler",
    "Reconciler",
    "ReconciliationResult",
    "Reference",
    "ReferenceStore",
    "Schema",
    "Dataset",
    "generate_cora_dataset",
    "generate_pim_dataset",
    "CoraDomainModel",
    "PimDomainModel",
    "pairwise_scores",
    "Telemetry",
    "__version__",
]
