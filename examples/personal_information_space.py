"""Reconcile a full synthetic desktop (the paper's PIM scenario).

Generates PIM dataset A — a researcher's mailbox plus bibliography
files, extracted into thousands of Person/Article/Venue references —
and compares the conventional attribute-wise baseline (InDepDec)
against the dependency-graph algorithm (DepGraph), exactly the §5.3
experiment. Prints per-class precision/recall and shows a browsable
entity: all the presentations the algorithm gathered for one person.

Run:  python examples/personal_information_space.py [scale]
"""

import sys

from repro import EngineConfig, PimDomainModel, Reconciler, generate_pim_dataset
from repro.baselines import indepdec_config
from repro.evaluation import pairwise_scores


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    print(f"generating PIM dataset A at scale {scale} ...")
    dataset = generate_pim_dataset("A", scale=scale)
    summary = dataset.summary()
    print(
        f"  {summary['references']} references of "
        f"{summary['entities']} real-world entities "
        f"(ratio {summary['ratio']})"
    )

    domain = PimDomainModel()
    gold = dataset.gold.entity_of
    results = {}
    for label, config in (
        ("InDepDec", indepdec_config(domain)),
        ("DepGraph", EngineConfig()),
    ):
        reconciler = Reconciler(dataset.store, PimDomainModel(), config)
        results[label] = reconciler.run()
        print(f"\n{label}:")
        for class_name in ("Person", "Article", "Venue"):
            scores = pairwise_scores(results[label].clusters(class_name), gold)
            partitions = results[label].partition_count(class_name)
            true_count = dataset.gold.entity_count(class_name)
            print(
                f"  {class_name:8s} P={scores.precision:.3f} "
                f"R={scores.recall:.3f} F={scores.f_measure:.3f}  "
                f"partitions={partitions} (true: {true_count})"
            )

    # Browse the owner: the PIM experience the paper motivates.
    owner = dataset.world.owner
    print(f"\nthe desktop owner is {owner.name.full} — accounts: {owner.emails}")
    owner_refs = [
        ref_id for ref_id, entity in gold.items() if entity == owner.entity_id
    ]
    for label in ("InDepDec", "DepGraph"):
        clusters = [
            cluster
            for cluster in results[label].clusters("Person")
            if any(ref_id in cluster for ref_id in owner_refs)
        ]
        print(f"{label}: owner's {len(owner_refs)} references fall into "
              f"{len(clusters)} partition(s)")

    depgraph_cluster = max(
        (
            cluster
            for cluster in results["DepGraph"].clusters("Person")
            if any(ref_id in cluster for ref_id in owner_refs)
        ),
        key=len,
    )
    names, emails = set(), set()
    for ref_id in depgraph_cluster:
        reference = dataset.store.get(ref_id)
        names.update(reference.get("name"))
        emails.update(reference.get("email"))
    print(f"gathered presentations: names={sorted(names)[:8]} emails={sorted(emails)}")


if __name__ == "__main__":
    main()
