"""Quickstart: reconcile the paper's running example (Figure 1).

Builds the exact references of Figure 1(b) — two Bibtex items and
three email-extracted person references — and runs the full DepGraph
algorithm. The output is Figure 1(c): articles, venues, and persons
reconciled across sources, including the chain that identifies "mike"
<stonebraker@csail.mit.edu> with "Stonebraker, M." and "Michael
Stonebraker".

Run:  python examples/quickstart.py
"""

from repro import EngineConfig, PimDomainModel, Reconciler, Reference, ReferenceStore


def build_references() -> list[Reference]:
    title = "Distributed query processing in a relational data base system"
    return [
        Reference(
            "a1",
            "Article",
            {
                "title": (title,),
                "pages": ("169-180",),
                "authoredBy": ("p1", "p2", "p3"),
                "publishedIn": ("c1",),
            },
        ),
        Reference(
            "a2",
            "Article",
            {
                "title": (title,),
                "pages": ("169-180",),
                "authoredBy": ("p4", "p5", "p6"),
                "publishedIn": ("c2",),
            },
        ),
        Reference("p1", "Person", {"name": ("Robert S. Epstein",), "coAuthor": ("p2", "p3")}),
        Reference("p2", "Person", {"name": ("Michael Stonebraker",), "coAuthor": ("p1", "p3")}),
        Reference("p3", "Person", {"name": ("Eugene Wong",), "coAuthor": ("p1", "p2")}),
        Reference("p4", "Person", {"name": ("Epstein, R.S.",), "coAuthor": ("p5", "p6")}),
        Reference("p5", "Person", {"name": ("Stonebraker, M.",), "coAuthor": ("p4", "p6")}),
        Reference("p6", "Person", {"name": ("Wong, E.",), "coAuthor": ("p4", "p5")}),
        Reference(
            "p7",
            "Person",
            {
                "name": ("Eugene Wong",),
                "email": ("eugene@berkeley.edu",),
                "emailContact": ("p8",),
            },
        ),
        Reference(
            "p8",
            "Person",
            {"email": ("stonebraker@csail.mit.edu",), "emailContact": ("p7",)},
        ),
        Reference("p9", "Person", {"name": ("mike",), "email": ("stonebraker@csail.mit.edu",)}),
        Reference(
            "c1",
            "Venue",
            {
                "name": ("ACM Conference on Management of Data",),
                "year": ("1978",),
                "location": ("Austin, Texas",),
            },
        ),
        Reference("c2", "Venue", {"name": ("ACM SIGMOD",), "year": ("1978",)}),
    ]


def describe(store: ReferenceStore, ref_id: str) -> str:
    reference = store.get(ref_id)
    name = reference.first("name") or ""
    email = reference.first("email") or ""
    title = reference.first("title") or ""
    label = name or title or reference.first("name") or ""
    if email:
        label = f"{label} <{email}>" if label else f"<{email}>"
    return f"{ref_id}: {label or reference.values}"


def main() -> None:
    domain = PimDomainModel()
    store = ReferenceStore(domain.schema, build_references())
    reconciler = Reconciler(store, domain, EngineConfig())
    result = reconciler.run()

    for class_name in ("Article", "Person", "Venue"):
        print(f"\n== {class_name} entities ==")
        for i, cluster in enumerate(result.clusters(class_name), start=1):
            print(f"entity {i}:")
            for ref_id in cluster:
                print(f"   {describe(store, ref_id)}")

    stats = reconciler.stats
    print(
        f"\ngraph: {stats.pair_nodes} pair nodes, {stats.value_nodes} value "
        f"nodes; {stats.merges} merges, {stats.non_merges} non-merges, "
        f"{stats.recomputations} similarity recomputations"
    )


if __name__ == "__main__":
    main()
