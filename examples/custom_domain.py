"""Define your own domain: a product-catalog information space.

The paper's framework is domain-agnostic (§4): everything specific —
comparable attribute pairs, dependency templates, S_rv functions,
constraints — lives in a :class:`DomainModel`. This example builds a
small e-commerce domain (the paper's own motivating example besides
PIM): Products sold by Merchants, where reconciled listings imply
reconciled merchants and shared merchants support listing matches.

Run:  python examples/custom_domain.py
"""

from collections.abc import Iterable, Mapping

from repro import EngineConfig, Reconciler, Reference, ReferenceStore
from repro.core import (
    AssociationChannel,
    AtomicChannel,
    Attribute,
    DomainModel,
    Schema,
    SchemaClass,
    StrongDependency,
    WeakDependency,
)
from repro.domains.base import max_of_profiles
from repro.similarity import (
    jaccard_similarity,
    levenshtein_similarity,
    monge_elkan_similarity,
    tokenize,
)

CATALOG_SCHEMA = Schema(
    [
        SchemaClass(
            "Merchant",
            [Attribute.atomic("name"), Attribute.atomic("website")],
        ),
        SchemaClass(
            "Listing",
            [
                Attribute.atomic("title"),
                Attribute.atomic("brand"),
                Attribute.association("soldBy", target="Merchant"),
            ],
        ),
    ]
)


def title_sim(left: str, right: str) -> float:
    return jaccard_similarity(tokenize(left), tokenize(right))


class CatalogDomainModel(DomainModel):
    """Products and merchants, wired like Article and Venue."""

    schema = CATALOG_SCHEMA

    def atomic_channels(self, class_name):
        if class_name == "Listing":
            return (
                AtomicChannel("title", "Listing", "title", "title", title_sim, 0.3),
                AtomicChannel(
                    "brand", "Listing", "brand", "brand", levenshtein_similarity, 0.6
                ),
            )
        return (
            AtomicChannel(
                "name", "Merchant", "name", "name", monge_elkan_similarity, 0.4
            ),
            AtomicChannel(
                "website",
                "Merchant",
                "website",
                "website",
                levenshtein_similarity,
                0.6,
                is_key=True,
            ),
        )

    def association_channels(self, class_name):
        if class_name == "Listing":
            return (
                AssociationChannel("merchant", "Listing", "soldBy", "Merchant", "max"),
            )
        return ()

    def strong_dependencies(self):
        # Two listings being the same offer implies one merchant.
        return (
            StrongDependency("Listing", "soldBy", "Merchant", ensure_target_nodes=True),
        )

    def weak_dependencies(self):
        return (WeakDependency("Merchant", ()),)  # none, shown for completeness

    def rv_score(self, class_name, evidence: Mapping[str, float]) -> float:
        if class_name == "Listing":
            return max_of_profiles(
                evidence,
                (
                    (("title", 0.75), ("brand", 0.25)),
                    (("title", 0.65), ("brand", 0.15), ("merchant", 0.20)),
                ),
            )
        return max_of_profiles(
            evidence, ((("name", 0.9),), (("name", 0.6), ("website", 0.4)))
        )

    def merge_threshold(self, class_name):
        return 0.85

    def beta(self, class_name):
        return 0.2 if class_name == "Merchant" else 0.1

    def gamma(self, class_name):
        return 0.05

    def t_rv(self, class_name):
        return 0.2 if class_name == "Merchant" else 0.6

    def blocking_keys(self, reference: Reference) -> Iterable[str]:
        keys = set()
        for value in reference.get("title") + reference.get("name"):
            for token in tokenize(value):
                if len(token) >= 3:
                    keys.add(token)
        for value in reference.get("website"):
            keys.add(value.lower())
        return sorted(keys)

    def key_values(self, reference: Reference) -> Iterable[str]:
        return [w.lower() for w in reference.get("website")]


def main() -> None:
    references = [
        Reference("m1", "Merchant", {"name": ("Acme Outdoors",), "website": ("acme-outdoors.com",)}),
        Reference("m2", "Merchant", {"name": ("ACME Outdoor Store",)}),
        Reference("m3", "Merchant", {"name": ("Summit Gear",), "website": ("summitgear.io",)}),
        Reference(
            "l1",
            "Listing",
            {"title": ("Alpine 2-Person Tent, green",), "brand": ("northpeak",), "soldBy": ("m1",)},
        ),
        Reference(
            "l2",
            "Listing",
            {"title": ("NorthPeak Alpine Tent 2 person green",), "brand": ("northpeak",), "soldBy": ("m2",)},
        ),
        Reference(
            "l3",
            "Listing",
            {"title": ("Trail running shoes size 42",), "brand": ("swiftstep",), "soldBy": ("m3",)},
        ),
    ]
    store = ReferenceStore(CATALOG_SCHEMA, references)
    result = Reconciler(store, CatalogDomainModel(), EngineConfig()).run()
    print("listings:", result.clusters("Listing"))
    print("merchants:", result.clusters("Merchant"))
    assert result.same_entity("l1", "l2"), "same tent offer"
    assert result.same_entity("m1", "m2"), "merchant reconciled via its listings"
    assert not result.same_entity("m1", "m3")
    print("ok: reconciling the listings reconciled their merchants")


if __name__ == "__main__":
    main()
