"""Incremental reconciliation: absorbing new mail without a re-run.

The paper's §7 names incremental reconciliation as future work; this
library implements it. We reconcile a base desktop once, then "receive"
a batch of new messages (references held out from the same world) and
fold them in with :class:`IncrementalReconciler.add` — new references
are blocked against the retained indexes, scored against *enriched*
clusters, and only the touched region of the dependency graph
recomputes.

Run:  python examples/incremental_updates.py
"""

import time

from repro import (
    EngineConfig,
    IncrementalReconciler,
    PimDomainModel,
    Reconciler,
    Reference,
    ReferenceStore,
    generate_pim_dataset,
)
from repro.evaluation import pairwise_scores


def split(dataset, batch_size=60):
    """Hold out the most recent person references (the "new mail").

    Links into the held-out region are stripped on both sides, exactly
    what an extractor would produce had those messages not arrived yet.
    """
    refs = list(dataset.store)
    schema = dataset.store.schema
    person_ids = [ref.ref_id for ref in refs if ref.class_name == "Person"]
    held = set(person_ids[-batch_size:])

    def strip(ref):
        values = {}
        for attr, vals in ref.values.items():
            if schema.cls(ref.class_name).attribute(attr).is_association:
                vals = tuple(v for v in vals if v not in held)
                if not vals:
                    continue
            values[attr] = vals
        return Reference(ref.ref_id, ref.class_name, values, ref.source)

    base = [strip(r) for r in refs if r.ref_id not in held]
    batch = [strip(r) for r in refs if r.ref_id in held]
    return base, batch


def main() -> None:
    dataset = generate_pim_dataset("B", scale=0.6)
    base, batch = split(dataset)
    gold = dataset.gold.entity_of
    domain = PimDomainModel()
    print(f"base: {len(base)} references; new batch: {len(batch)} references")

    started = time.perf_counter()
    incremental = IncrementalReconciler(
        ReferenceStore(domain.schema, base), PimDomainModel(), EngineConfig()
    )
    incremental.initial()
    initial_seconds = time.perf_counter() - started
    before = incremental.reconciler.stats.recomputations

    started = time.perf_counter()
    result = incremental.add(batch)
    add_seconds = time.perf_counter() - started
    delta = incremental.reconciler.stats.recomputations - before
    scores = pairwise_scores(result.clusters("Person"), gold)
    print(
        f"incremental add: {add_seconds:.2f}s, {delta} recomputations "
        f"(initial run: {initial_seconds:.2f}s) -> Person F={scores.f_measure:.3f}"
    )

    started = time.perf_counter()
    full = Reconciler(
        ReferenceStore(domain.schema, base + batch), PimDomainModel(), EngineConfig()
    )
    full_result = full.run()
    full_seconds = time.perf_counter() - started
    full_scores = pairwise_scores(full_result.clusters("Person"), gold)
    print(
        f"full re-run:     {full_seconds:.2f}s, "
        f"{full.stats.recomputations} recomputations "
        f"-> Person F={full_scores.f_measure:.3f}"
    )


if __name__ == "__main__":
    main()
