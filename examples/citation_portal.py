"""Deduplicate a citation corpus (the paper's Cora scenario, §5.4).

Generates the Cora-like benchmark — ~1300 noisy citations of 112
papers — and reconciles papers, authors and venues *collectively*:
reconciled papers imply reconciled venues and boost author matching,
which is what lifts venue recall far beyond anything attribute-wise
matching achieves (Table 7's story, including its precision cost).

Run:  python examples/citation_portal.py
"""

from repro import CoraDomainModel, EngineConfig, Reconciler, generate_cora_dataset
from repro.baselines import indepdec_config
from repro.evaluation import pairwise_scores


def main() -> None:
    print("generating the Cora-like citation corpus ...")
    dataset = generate_cora_dataset()
    summary = dataset.summary()
    print(
        f"  {summary['references']} references / {summary['entities']} entities "
        f"(ratio {summary['ratio']})"
    )

    domain = CoraDomainModel()
    gold = dataset.gold.entity_of
    outcomes = {}
    for label, config in (
        ("InDepDec", indepdec_config(domain)),
        ("DepGraph", EngineConfig()),
    ):
        result = Reconciler(dataset.store, CoraDomainModel(), config).run()
        outcomes[label] = result
        print(f"\n{label}:")
        for class_name in ("Article", "Person", "Venue"):
            scores = pairwise_scores(result.clusters(class_name), gold)
            print(
                f"  {class_name:8s} P={scores.precision:.3f} "
                f"R={scores.recall:.3f} F={scores.f_measure:.3f}"
            )

    # Show one reconciled venue: every surface form gathered together.
    venue_clusters = sorted(
        outcomes["DepGraph"].clusters("Venue"), key=len, reverse=True
    )
    print("\nlargest reconciled venue cluster — surface forms:")
    forms = set()
    for ref_id in venue_clusters[0]:
        forms.update(dataset.store.get(ref_id).get("name"))
    for form in sorted(forms)[:12]:
        print(f"   {form}")

    # And one heavily-cited paper.
    article_clusters = sorted(
        outcomes["DepGraph"].clusters("Article"), key=len, reverse=True
    )
    top = article_clusters[0]
    titles = {dataset.store.get(ref_id).first("title") for ref_id in top}
    print(f"\nmost-cited paper ({len(top)} citations) — title variants seen:")
    for title in sorted(t for t in titles if t)[:6]:
        print(f"   {title}")


if __name__ == "__main__":
    main()
