"""Table 4: per-dataset Person performance (robustness across owners).

Shape under test: DepGraph's F-measure and partition counts beat
InDepDec's on every dataset, and dataset D shows the owner-name-change
signature — DepGraph's recall there is *below* its recall elsewhere
(constraint 3 splits the owner), while precision stays high.
"""

from repro.evaluation import render_table4, table4_per_dataset


def test_table4_per_dataset(benchmark, scale):
    rows = benchmark.pedantic(
        table4_per_dataset, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(render_table4(rows))
    by_name = {row["dataset"]: row for row in rows}
    for row in rows:
        # Fewer (or equal) partitions = closer to the true entity count.
        assert row["DepGraph_partitions"] <= row["InDepDec_partitions"]
        assert row["DepGraph_f"] >= row["InDepDec_f"] - 0.02
    # Dataset A has the largest variety, hence the largest gain.
    gain_a = by_name["A"]["DepGraph_recall"] - by_name["A"]["InDepDec_recall"]
    assert gain_a > 0.05
    # Dataset D: the owner's name+account change costs DepGraph recall.
    other_recall = min(
        by_name[name]["DepGraph_recall"] for name in ("A", "B", "C")
    )
    assert by_name["D"]["DepGraph_recall"] <= other_recall + 0.05
