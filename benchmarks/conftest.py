"""Shared benchmark configuration.

``REPRO_SCALE`` controls dataset size for the PIM benchmarks: 1.0 (the
default) is roughly one tenth of the paper's reference counts and runs
the whole suite in minutes; 10 approximates the paper's sizes. Cora is
always generated at its natural size (1295 citations of 112 papers).
"""

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "1.0"))
