"""Weight learning (§7 future work #2): tuned vs. hand-set profiles.

Trains the Person S_rv profile on one dataset's gold labels and
evaluates on a *different* dataset (B -> C), testing that learned
weights transfer without hurting the hand-calibrated model.
"""

from repro.core import EngineConfig, Reconciler
from repro.domains import PimDomainModel
from repro.domains.tuning import tune_domain
from repro.evaluation import pim_dataset
from repro.evaluation.metrics import pairwise_scores


def test_learned_weights_transfer(benchmark, scale):
    train = pim_dataset("B", scale)
    test = pim_dataset("C", scale)

    def run():
        tuned = tune_domain(
            train.store, PimDomainModel(), train.gold.entity_of, ["Person"]
        )
        base_result = Reconciler(
            test.store, PimDomainModel(), EngineConfig()
        ).run()
        tuned_result = Reconciler(test.store, tuned, EngineConfig()).run()
        return tuned, base_result, tuned_result

    tuned, base_result, tuned_result = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    gold = test.gold.entity_of
    base_scores = pairwise_scores(base_result.clusters("Person"), gold)
    tuned_scores = pairwise_scores(tuned_result.clusters("Person"), gold)
    weights = tuned._learned.get("Person", {})
    print()
    print(f"learned Person profile (trained on B): "
          + ", ".join(f"{k}={v:.2f}" for k, v in weights.items()))
    print(f"hand-set on C:  P={base_scores.precision:.3f} R={base_scores.recall:.3f} "
          f"F={base_scores.f_measure:.3f}")
    print(f"tuned on C:     P={tuned_scores.precision:.3f} R={tuned_scores.recall:.3f} "
          f"F={tuned_scores.f_measure:.3f}")
    # The learned layer must not damage the calibrated model when
    # transferred across datasets.
    assert tuned_scores.f_measure >= base_scores.f_measure - 0.05
    assert weights, "training set produced no profile"
