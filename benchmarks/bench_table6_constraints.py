"""Table 6: effect of negative evidence (constraints) on PIM A.

Shape under test: enforcing constraints recovers precision (fewer
real-world entities involved in false positives) while keeping recall,
at a modest dependency-graph size overhead.
"""

from repro.evaluation import render_table6, table6_constraints


def test_table6_constraints(benchmark, scale):
    rows = benchmark.pedantic(
        table6_constraints, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(render_table6(rows))
    by_method = {row["method"]: row for row in rows}
    with_constraints = by_method["DepGraph"]
    without = by_method["Non-Constraint"]
    assert with_constraints["precision"] >= without["precision"]
    assert (
        with_constraints["entities_with_false_positives"]
        <= without["entities_with_false_positives"]
    )
    # Constraints cost only a little recall.
    assert with_constraints["recall"] >= without["recall"] - 0.12
