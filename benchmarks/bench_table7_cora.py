"""Table 7: the Cora citation benchmark.

Shape under test: DepGraph's F beats InDepDec's on every class; the
venue column shows the paper's two-fold propagation effect — a large
recall jump bought with a precision drop (venues mentioned wrongly in
citations of one paper get merged too).
"""

from repro.evaluation import render_table7, table7_cora


def test_table7_cora(benchmark):
    rows = benchmark.pedantic(table7_cora, rounds=1, iterations=1)
    print()
    print(render_table7(rows))
    by_class = {row["class"]: row for row in rows}
    for row in rows:
        assert row["DepGraph_f"] >= row["InDepDec_f"] - 0.01, row["class"]
    venue = by_class["Venue"]
    # The two-fold venue effect.
    assert venue["DepGraph_recall"] > venue["InDepDec_recall"] + 0.2
    assert venue["DepGraph_precision"] < venue["InDepDec_precision"]
    # Person and article reconciliation stay highly precise.
    assert by_class["Person"]["DepGraph_precision"] > 0.95
    assert by_class["Article"]["DepGraph_precision"] > 0.95
