"""Table 5 + Figure 6: the evidence x mode ablation grid on PIM A.

Shape under test (§5.3's component analysis):

* partitions fall monotonically along the evidence axis in FULL mode
  (each evidence kind contributes);
* FULL <= MERGE and FULL <= PROPAGATION <= TRADITIONAL at the Contact
  level (each mechanism contributes; enrichment beats propagation);
* Article adds nothing in TRADITIONAL mode (person pairs are computed
  before articles merge — the paper's own observation);
* the bottom-right cell (DepGraph) reduces the partition gap by a
  large factor relative to the top-left cell (InDepDec).
"""

from repro.evaluation import figure6_series, render_figure6, render_table5, table5_ablation_grid


def test_table5_figure6_ablation(benchmark, scale):
    grid = benchmark.pedantic(
        table5_ablation_grid, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(render_table5(grid))
    print()
    print(render_figure6(figure6_series(scale)))

    cells = grid["cells"]

    # Monotone along the evidence axis in Full mode.
    full_row = [
        cells[("Full", name)]
        for name in ("Attr-wise", "Name&Email", "Article", "Contact")
    ]
    assert full_row == sorted(full_row, reverse=True)

    # Name&Email dramatically improves recall (paper's observation).
    assert cells[("Full", "Name&Email")] < cells[("Full", "Attr-wise")]

    # Article provides no benefit in Traditional mode.
    assert (
        abs(cells[("Traditional", "Article")] - cells[("Traditional", "Name&Email")])
        <= max(2, cells[("Traditional", "Name&Email")] // 50)
    )

    # At Contact, Full is the best mode and Traditional the worst.
    contact = {mode: cells[(mode, "Contact")] for mode in
               ("Traditional", "Propagation", "Merge", "Full")}
    assert contact["Full"] <= min(contact.values()) + 2
    assert contact["Traditional"] >= max(contact.values()) - 2

    # Overall reduction of the partition gap is substantial (paper: 91.3%).
    assert grid["overall"] > 50.0
