"""Micro-benchmarks for the hot-path kernels behind the fast
comparators: bounded versus full edit distance, feature-based versus
string-based channel comparators, and the blocking index.

These quantify the per-call wins that `scripts/record_bench.py`
measures end-to-end; neither is a paper table.
"""

from repro.core.blocking import BlockingIndex
from repro.perf import FeatureCache
from repro.similarity import (
    title_features,
    title_similarity,
    title_similarity_features,
    venue_features,
    venue_name_similarity,
    venue_similarity_features,
)
from repro.similarity.strings import (
    damerau_levenshtein_distance,
    damerau_levenshtein_similarity_at_least,
)

_TITLE_PAIRS = [
    ("Distributed query processing in a relational data base system",
     "Distributed query processing in relational data base systems"),
    ("Access path selection in a relational database management system",
     "Query optimization in database systems"),
    ("The design and implementation of INGRES",
     "The design of POSTGRES"),
]

_VENUE_PAIRS = [
    ("Proceedings of the ACM SIGMOD International Conference on Management of Data",
     "Proc. ACM SIGMOD"),
    ("VLDB", "Very Large Data Bases"),
    ("ACM Transactions on Database Systems", "Communications of the ACM"),
]


def test_full_damerau_levenshtein(benchmark):
    benchmark(lambda: [damerau_levenshtein_distance(a, b) for a, b in _TITLE_PAIRS])


def test_bounded_damerau_levenshtein(benchmark):
    # The bar a title comparison actually runs at: the banded table
    # plus prefix/suffix stripping is the point of the fast path.
    benchmark(
        lambda: [
            damerau_levenshtein_similarity_at_least(a, b, 0.80)
            for a, b in _TITLE_PAIRS
        ]
    )


def test_title_slow_comparator(benchmark):
    benchmark(lambda: [title_similarity(a, b) for a, b in _TITLE_PAIRS])


def test_title_fast_comparator(benchmark):
    features = [(title_features(a), title_features(b)) for a, b in _TITLE_PAIRS]
    benchmark(lambda: [title_similarity_features(fa, fb, 0.25) for fa, fb in features])


def test_venue_slow_comparator(benchmark):
    benchmark(lambda: [venue_name_similarity(a, b) for a, b in _VENUE_PAIRS])


def test_venue_fast_comparator(benchmark):
    features = [(venue_features(a), venue_features(b)) for a, b in _VENUE_PAIRS]
    benchmark(lambda: [venue_similarity_features(fa, fb, 0.25) for fa, fb in features])


def test_feature_cache_hit_overhead(benchmark):
    cache = FeatureCache()
    extract = cache.extractor("title")
    titles = [a for a, _ in _TITLE_PAIRS]
    for value in titles:
        extract(value)

    benchmark(lambda: [extract(value) for value in titles])


def test_blocking_index_pairs(benchmark):
    index = BlockingIndex(max_block_size=100)
    for i in range(400):
        index.add(f"r{i}", [f"k{i % 37}", f"k{i % 53}"])

    benchmark(lambda: sum(1 for _ in index.pairs()))
