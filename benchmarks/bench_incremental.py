"""Incremental reconciliation versus full re-run (§7 future work).

Folding a batch of new references into an already-reconciled dataset
must (a) reach (almost) the same partition as reconciling everything
from scratch, and (b) recompute proportionally to the touched region,
not to the dataset.
"""

from repro.core import EngineConfig, IncrementalReconciler, Reconciler
from repro.core.references import ReferenceStore
from repro.datasets import generate_pim_dataset
from repro.domains import PimDomainModel
from repro.evaluation.metrics import pairwise_scores


def _split_dataset(scale):
    """Hold out the most recent person references as the "new" batch;
    links into the held-out region are stripped on both sides."""
    dataset = generate_pim_dataset("B", scale=scale)
    person_refs = [
        ref for ref in dataset.store if ref.class_name == "Person"
    ]
    held_out_ids = {ref.ref_id for ref in person_refs[-40:]}
    base, batch = [], []
    for ref in dataset.store:
        if ref.ref_id in held_out_ids:
            # Strip links to other held-out refs to keep both stores valid.
            values = {}
            for attr, vals in ref.values.items():
                if dataset.store.schema.cls(ref.class_name).attribute(attr).is_association:
                    vals = tuple(v for v in vals if v not in held_out_ids)
                    if not vals:
                        continue
                values[attr] = vals
            batch.append(type(ref)(ref.ref_id, ref.class_name, values, ref.source))
        else:
            values = {}
            for attr, vals in ref.values.items():
                if dataset.store.schema.cls(ref.class_name).attribute(attr).is_association:
                    vals = tuple(v for v in vals if v not in held_out_ids)
                    if not vals:
                        continue
                values[attr] = vals
            base.append(type(ref)(ref.ref_id, ref.class_name, values, ref.source))
    return dataset, base, batch


def test_incremental_vs_full(benchmark, scale):
    dataset, base, batch = _split_dataset(scale)
    domain = PimDomainModel()

    def run_both():
        incremental = IncrementalReconciler(
            ReferenceStore(domain.schema, base), PimDomainModel(), EngineConfig()
        )
        incremental.initial()
        base_recomputations = incremental.reconciler.stats.recomputations
        inc_result = incremental.add(batch)
        inc_recomputations = (
            incremental.reconciler.stats.recomputations - base_recomputations
        )
        full = Reconciler(
            ReferenceStore(domain.schema, base + batch),
            PimDomainModel(),
            EngineConfig(),
        )
        full_result = full.run()
        return inc_result, inc_recomputations, full_result, full.stats.recomputations

    inc_result, inc_recomp, full_result, full_recomp = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    gold = dataset.gold.entity_of
    inc_scores = pairwise_scores(inc_result.clusters("Person"), gold)
    full_scores = pairwise_scores(full_result.clusters("Person"), gold)
    print()
    print(
        f"incremental: F={inc_scores.f_measure:.3f} "
        f"(+{inc_recomp} recomputations for {len(batch)} new refs)"
    )
    print(f"full re-run: F={full_scores.f_measure:.3f} ({full_recomp} recomputations)")
    # Same quality, far less work for the update.
    assert abs(inc_scores.f_measure - full_scores.f_measure) < 0.02
    assert inc_recomp < full_recomp * 0.5
