"""Table 2: average P/R/F per class, InDepDec vs DepGraph, PIM A-D.

Shape under test (the paper's headline claim): DepGraph equals or
outperforms InDepDec on every class, with the largest recall gains on
Venue and Person references.
"""

from repro.evaluation import render_table2, table2_class_averages


def test_table2_class_averages(benchmark, scale):
    rows = benchmark.pedantic(
        table2_class_averages, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(render_table2(rows))
    by_class = {row["class"]: row for row in rows}
    for class_name, row in by_class.items():
        assert row["DepGraph_f"] >= row["InDepDec_f"] - 0.01, class_name
    # The venue and person recall gains are the paper's headline.
    assert (
        by_class["Venue"]["DepGraph_recall"]
        > by_class["Venue"]["InDepDec_recall"] + 0.10
    )
    assert (
        by_class["Person"]["DepGraph_recall"]
        > by_class["Person"]["InDepDec_recall"] + 0.03
    )
    # Precision never collapses.
    for row in rows:
        assert row["DepGraph_precision"] >= 0.9
