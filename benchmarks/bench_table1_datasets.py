"""Table 1: dataset properties (reference/entity counts and ratio)."""

from repro.evaluation import render_table1, table1_dataset_properties


def test_table1_dataset_properties(benchmark, scale):
    rows = benchmark.pedantic(
        table1_dataset_properties, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(render_table1(rows))
    # Shape assertions: reconciliation must matter on every dataset.
    for row in rows:
        assert row["entities"] > 0
        assert row["ratio"] >= 4.0, f"{row['dataset']} too few refs per entity"
    cora = next(row for row in rows if row["dataset"] == "Cora")
    assert 15.0 <= cora["ratio"] <= 25.0
