"""Table 3: Person reconciliation on Full / PArticle / PEmail subsets.

Shape under test: DepGraph's recall gain is largest on PArticle (each
reference is a bare name; associations compensate), present on PEmail,
and solid on the full datasets.
"""

from repro.evaluation import render_table3, table3_person_subsets


def test_table3_person_subsets(benchmark, scale):
    rows = benchmark.pedantic(
        table3_person_subsets, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(render_table3(rows))
    by_subset = {row["dataset"]: row for row in rows}
    for row in rows:
        assert row["DepGraph_recall"] >= row["InDepDec_recall"] - 0.01
    gain = {
        name: by_subset[name]["DepGraph_recall"] - by_subset[name]["InDepDec_recall"]
        for name in ("Full", "PArticle", "PEmail")
    }
    # PArticle shows the largest improvement (paper: +30.7% vs +7.6%).
    assert gain["PArticle"] >= gain["PEmail"]
    assert gain["PArticle"] > 0.10
