"""Scaling behaviour: runtime and graph size versus dataset size.

Not a paper table — the paper reports no timings — but a downstream
user needs to know how the engine scales. Blocking keeps candidate
generation near-linear; the dependency graph grows with the number of
*plausible* pairs, not quadratically in references.
"""

from repro.core import EngineConfig, Reconciler
from repro.datasets import generate_pim_dataset
from repro.domains import PimDomainModel


def _run_at(scale_factor: float):
    dataset = generate_pim_dataset("B", scale=scale_factor)
    reconciler = Reconciler(dataset.store, PimDomainModel(), EngineConfig())
    reconciler.run()
    return dataset, reconciler


def test_scaling_sweep(benchmark, scale):
    factors = [0.5 * scale, 1.0 * scale, 2.0 * scale]

    def sweep():
        return [(_factor, *_run_at(_factor)) for _factor in factors]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        f"{'scale':>6s} {'#refs':>7s} {'pairs':>9s} {'nodes':>9s}"
        f" {'recomp':>8s} {'build_s':>8s} {'iter_s':>8s}"
    )
    previous = None
    for factor, dataset, reconciler in rows:
        stats = reconciler.stats
        n_refs = len(dataset.store)
        print(
            f"{factor:6.2f} {n_refs:7d} {stats.candidate_pairs:9d}"
            f" {stats.graph_nodes:9d} {stats.recomputations:8d}"
            f" {stats.build_seconds:8.2f} {stats.iterate_seconds:8.2f}"
        )
        if previous is not None:
            prev_refs, prev_pairs = previous
            ref_growth = n_refs / prev_refs
            pair_growth = stats.candidate_pairs / max(prev_pairs, 1)
            # Blocking keeps pair growth well below quadratic.
            assert pair_growth < ref_growth**2
        previous = (n_refs, stats.candidate_pairs)
