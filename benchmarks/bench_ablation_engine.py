"""Engine-design ablations (DESIGN.md extras, not a paper table).

* Queue ordering: §3.2 pushes strong-boolean reactivations to the
  *front* of the queue. Compared against plain FIFO, the result is
  identical (fixed point) but the recomputation count should not be
  worse — the heuristic resolves implied merges before unrelated work
  re-examines stale state.
* Enrichment mechanics: reference enrichment implemented as local node
  fusion (§3.3) versus switched off entirely, measuring its cost and
  its effect on the partition count.
"""

from repro.baselines import CONTACT, ablation_config
from repro.core import MERGE, PROPAGATION, EngineConfig, Reconciler
from repro.domains import PimDomainModel
from repro.evaluation import pim_dataset


def _run(dataset, config):
    reconciler = Reconciler(dataset.store, PimDomainModel(), config)
    result = reconciler.run()
    return reconciler, result


def test_queue_ordering_ablation(benchmark, scale):
    dataset = pim_dataset("A", scale)

    def both():
        front_rec, front_res = _run(dataset, EngineConfig(strong_to_front=True))
        fifo_rec, fifo_res = _run(dataset, EngineConfig(strong_to_front=False))
        return front_rec, front_res, fifo_rec, fifo_res

    front_rec, front_res, fifo_rec, fifo_res = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    print()
    print(
        f"strong-to-front: {front_rec.stats.recomputations} recomputations, "
        f"{front_res.partition_count('Person')} person partitions"
    )
    print(
        f"plain FIFO:      {fifo_rec.stats.recomputations} recomputations, "
        f"{fifo_res.partition_count('Person')} person partitions"
    )
    # Same fixed point (monotone evidence => order-independent result).
    assert front_res.partition_count("Person") == fifo_res.partition_count("Person")
    assert front_res.partition_count("Venue") == fifo_res.partition_count("Venue")


def test_enrichment_mechanics_ablation(benchmark, scale):
    dataset = pim_dataset("A", scale)
    contact_full = ablation_config(CONTACT, MERGE)

    from repro.core import TRADITIONAL

    def all_three():
        with_fusion = _run(dataset, contact_full)
        without = _run(dataset, ablation_config(CONTACT, PROPAGATION))
        neither = _run(dataset, ablation_config(CONTACT, TRADITIONAL))
        return with_fusion, without, neither

    (enr_rec, enr_res), (prop_rec, prop_res), (_, trad_res) = benchmark.pedantic(
        all_three, rounds=1, iterations=1
    )
    print()
    print(
        f"enrichment (Merge mode): {enr_rec.stats.fusions} fusions, "
        f"{enr_res.partition_count('Person')} partitions, "
        f"{enr_rec.stats.recomputations} recomputations"
    )
    print(
        f"propagation only:        {prop_rec.stats.fusions} fusions, "
        f"{prop_res.partition_count('Person')} partitions, "
        f"{prop_rec.stats.recomputations} recomputations"
    )
    print(f"neither (Traditional):   {trad_res.partition_count('Person')} partitions")
    # Each mechanism on its own beats the traditional pipeline. (The
    # paper additionally found Merge > Propagation on its dataset A;
    # on the synthetic corpora the two are close and may swap — see
    # EXPERIMENTS.md.)
    assert enr_res.partition_count("Person") < trad_res.partition_count("Person")
    assert prop_res.partition_count("Person") < trad_res.partition_count("Person")
    assert enr_rec.stats.fusions > 0
    assert prop_rec.stats.fusions == 0


def test_premerge_optimisation(benchmark, scale):
    """§3.4's cheap pre-merge should shrink the graph, not change it."""
    dataset = pim_dataset("B", scale)

    def both():
        on = _run(dataset, EngineConfig())
        off = _run(dataset, EngineConfig(premerge_keys=False))
        return on, off

    (on_rec, on_res), (off_rec, off_res) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    print()
    print(
        f"premerge on:  {on_rec.stats.pair_nodes} pair nodes, "
        f"{on_res.partition_count('Person')} partitions"
    )
    print(
        f"premerge off: {off_rec.stats.pair_nodes} pair nodes, "
        f"{off_res.partition_count('Person')} partitions"
    )
    assert on_rec.stats.pair_nodes < off_rec.stats.pair_nodes
    # Key-equal references merge through the key channel either way.
    delta = abs(on_res.partition_count("Person") - off_res.partition_count("Person"))
    assert delta <= max(3, on_res.partition_count("Person") // 25)
