"""Tests for person-name parsing, compatibility and similarity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity.names import (
    NameCompat,
    full_name_pair,
    name_compatibility,
    name_similarity,
    parse_name,
)

MERGE = 0.85  # the paper's reference merge threshold
T_RV = 0.7  # the paper's boolean-evidence gate for persons


class TestParseName:
    def test_natural_order(self):
        parsed = parse_name("Michael R. Stonebraker")
        assert parsed.given == "michael"
        assert parsed.middle == ("r",)
        assert parsed.surname == "stonebraker"
        assert parsed.is_full

    def test_comma_order(self):
        parsed = parse_name("Stonebraker, Michael")
        assert parsed.given == "michael"
        assert parsed.surname == "stonebraker"

    def test_comma_initials(self):
        parsed = parse_name("Epstein, R.S.")
        assert parsed.surname == "epstein"
        assert parsed.given == "r"
        assert parsed.middle == ("s",)
        assert parsed.given_is_initial
        assert not parsed.is_full

    def test_mononym(self):
        parsed = parse_name("mike")
        assert parsed.is_single_token
        assert parsed.given == "mike"
        assert parsed.surname == ""

    def test_suffixes_dropped(self):
        parsed = parse_name("Martin Luther King Jr.")
        assert parsed.surname == "king"

    def test_empty(self):
        assert parse_name("").raw == ""
        assert parse_name("  ,  ").given == ""

    def test_accented(self):
        assert parse_name("José García").surname == "garcia"


class TestCompatibility:
    @pytest.mark.parametrize(
        "left,right,expected",
        [
            ("Michael Stonebraker", "Michael Stonebraker", NameCompat.EQUAL),
            ("Michael Stonebraker", "Stonebraker, Michael", NameCompat.EQUAL),
            ("Michael Stonebraker", "Stonebraker, M.", NameCompat.COMPATIBLE),
            ("Michael Stonebraker", "M. Stonebraker", NameCompat.COMPATIBLE),
            ("Mike Stonebraker", "Michael Stonebraker", NameCompat.COMPATIBLE),
            ("mike", "Michael Stonebraker", NameCompat.COMPATIBLE),
            ("mike", "Stonebraker, M.", NameCompat.COMPATIBLE),
            ("Michael Stonebraker", "Michael Carey", NameCompat.CONFLICT),
            ("Michael Stonebraker", "David Stonebraker", NameCompat.CONFLICT),
            ("Matt", "Michael Stonebraker", NameCompat.CONFLICT),
            ("Michael Stonebraker", "Eugene Wong", NameCompat.UNRELATED),
            # A typo'd given name lands in the SIMILAR tier (0.80: no
            # attribute-wise merge, context can push it over).
            ("Micheal Stonebraker", "Michael Stonebraker", NameCompat.SIMILAR),
            # A surname within the 0.9 typo band still counts as
            # agreeing, so the pair is COMPATIBLE.
            ("Michael Stonebraker", "Michael Stonebarker", NameCompat.COMPATIBLE),
        ],
    )
    def test_pairs(self, left, right, expected):
        assert name_compatibility(left, right) is expected

    def test_symmetric(self):
        pairs = [
            ("Michael Stonebraker", "Stonebraker, M."),
            ("mike", "Michael Stonebraker"),
            ("Matt", "Michael Stonebraker"),
        ]
        for left, right in pairs:
            assert name_compatibility(left, right) is name_compatibility(right, left)

    def test_typo_mononyms_never_conflict(self):
        # 'debb' is likelier a typo of the nickname 'deb' than a person.
        assert name_compatibility("debb", "Deborah Bennett") is not NameCompat.CONFLICT
        assert name_compatibility("ddeb", "deb") is not NameCompat.CONFLICT

    def test_typo_surnames_never_conflict(self):
        assert (
            name_compatibility("Deborah Bnnett", "Deborah Bennet")
            is not NameCompat.CONFLICT
        )

    def test_near_names_stay_below_merge_threshold(self):
        # "Ramesh" and "Rajesh" are one edit apart — lexically
        # indistinguishable from a typo, so the pair classifies as
        # SIMILAR; what matters is that the score alone cannot merge.
        assert name_similarity("Krishnan, Ramesh", "Krishnan, Rajesh") < MERGE


class TestSimilarityCalibration:
    """The score tiers encode the paper's evidence policy."""

    def test_full_equal_is_decisive(self):
        assert name_similarity("Eugene Wong", "Eugene Wong") == 1.0
        assert name_similarity("Eugene Wong", "Wong, Eugene") == 1.0

    def test_full_compatible_merges_alone(self):
        assert name_similarity("Deb Bennett", "Deborah Bennett") >= MERGE

    def test_initial_match_needs_context(self):
        score = name_similarity("Epstein, R.S.", "Robert S. Epstein")
        assert T_RV <= score < MERGE

    def test_equal_abbreviated_merges(self):
        assert name_similarity("Wong, E.", "E. Wong") >= MERGE

    def test_mononyms_stay_below_trv(self):
        assert name_similarity("jianguo", "jianguo") < T_RV
        assert name_similarity("mike", "Stonebraker, M.") < T_RV
        assert name_similarity("amy", "Amy Clark") < T_RV

    def test_conflicts_score_zero(self):
        assert name_similarity("Michael Stonebraker", "Michael Carey") == 0.0
        assert name_similarity("Matt", "Michael Stonebraker") == 0.0

    @given(
        st.sampled_from(
            [
                "Michael Stonebraker",
                "Stonebraker, M.",
                "mike",
                "Eugene Wong",
                "Wong, E.",
                "Epstein, R.S.",
                "",
                "Deborah Bennett",
            ]
        ),
        st.sampled_from(
            [
                "Michael Stonebraker",
                "M. Stonebraker",
                "matt",
                "Eugene Wong",
                "deb",
                "Robert S. Epstein",
            ]
        ),
    )
    @settings(max_examples=48)
    def test_range_and_symmetry(self, left, right):
        score = name_similarity(left, right)
        assert 0.0 <= score <= 1.0
        assert score == pytest.approx(name_similarity(right, left))


class TestFullNamePair:
    def test_full_pair(self):
        assert full_name_pair("Michael Stonebraker", "Eugene Wong")
        assert not full_name_pair("Stonebraker, M.", "Eugene Wong")
        assert not full_name_pair("mike", "Eugene Wong")
