"""Engine behaviour tests: the paper's worked examples, modes,
configuration switches, invariants, and determinism."""

import pytest

from repro.baselines import (
    ARTICLE,
    ATTR_WISE,
    CONTACT,
    NAME_EMAIL,
    ablation_config,
    indepdec_config,
)
from repro.core import (
    FULL,
    MERGE,
    PROPAGATION,
    TRADITIONAL,
    EngineConfig,
    Reconciler,
    Reference,
    ReferenceStore,
)
from repro.core.nodes import NodeStatus
from repro.domains import PimDomainModel

from .conftest import example1_references


def run_example1(config=None, mutate=None):
    refs = example1_references()
    if mutate:
        refs = mutate(refs)
    domain = PimDomainModel()
    store = ReferenceStore(domain.schema, refs)
    reconciler = Reconciler(store, domain, config or EngineConfig())
    return reconciler, reconciler.run()


class TestExample1:
    """Figure 1(c), the paper's canonical walk-through."""

    def test_full_depgraph_reproduces_figure_1c(self):
        _, result = run_example1()
        assert result.clusters("Article") == [["a1", "a2"]]
        assert result.clusters("Venue") == [["c1", "c2"]]
        assert result.clusters("Person") == [
            ["p1", "p4"],
            ["p2", "p5", "p8", "p9"],
            ["p3", "p6", "p7"],
        ]

    def test_matt_blocked_by_constraints(self):
        """§3.4's negative-evidence example: "Matt" must not join the
        Michael Stonebraker cluster."""

        def swap_mike(refs):
            return [
                Reference("p9", "Person", {"name": ("Matt",), "email": ("stonebraker@csail.mit.edu",)})
                if ref.ref_id == "p9"
                else ref
                for ref in refs
            ]

        _, result = run_example1(mutate=swap_mike)
        assert not result.same_entity("p9", "p2")
        assert not result.same_entity("p9", "p5")
        # But p8 and Matt share an address: one mailbox.
        assert result.same_entity("p8", "p9")

    def test_matt_wrongly_merged_without_constraints(self):
        """Without §3.4 the algorithm makes exactly the mistake the
        paper warns about."""

        def swap_mike(refs):
            return [
                Reference("p9", "Person", {"name": ("Matt",), "email": ("stonebraker@csail.mit.edu",)})
                if ref.ref_id == "p9"
                else ref
                for ref in refs
            ]

        _, result = run_example1(EngineConfig(constraints=False), mutate=swap_mike)
        assert result.same_entity("p9", "p5")

    def test_indepdec_misses_context_merges(self):
        domain = PimDomainModel()
        _, result = run_example1(indepdec_config(domain))
        # Name-equal full names merge; abbreviated pairs do not.
        assert result.same_entity("p3", "p7")
        assert not result.same_entity("p1", "p4")
        assert not result.same_entity("p5", "p8")
        # Key attribute still honoured.
        assert result.same_entity("p8", "p9")

    def test_coauthor_constraint_installed(self):
        reconciler, result = run_example1()
        # Authors of one paper are pairwise distinct.
        assert not result.same_entity("p1", "p2")
        assert not result.same_entity("p2", "p3")
        assert reconciler.stats.constraint_pairs >= 6


class TestModes:
    def test_traditional_misses_propagation_merges(self):
        _, full_result = run_example1(ablation_config(CONTACT, FULL))
        _, trad_result = run_example1(ablation_config(CONTACT, TRADITIONAL))
        assert full_result.partition_count("Person") <= trad_result.partition_count(
            "Person"
        )

    def test_enrichment_alone_gets_partway(self):
        """MERGE mode (enrichment, no propagation): the pooled p8+p9
        evidence reaches p2 within the single person pass, but the
        p5 chain needs article propagation on top (FULL mode)."""
        _, merge_result = run_example1(ablation_config(CONTACT, MERGE))
        assert merge_result.same_entity("p2", "p8")
        assert merge_result.same_entity("p2", "p9")
        assert not merge_result.same_entity("p5", "p8")
        _, full_result = run_example1(ablation_config(CONTACT, FULL))
        assert full_result.same_entity("p5", "p8")

    def test_attr_wise_is_weakest(self):
        _, attr_result = run_example1(ablation_config(ATTR_WISE, FULL))
        _, contact_result = run_example1(ablation_config(CONTACT, FULL))
        assert contact_result.partition_count("Person") <= attr_result.partition_count(
            "Person"
        )

    def test_evidence_levels_monotone_on_example(self):
        counts = []
        for evidence in (ATTR_WISE, NAME_EMAIL, ARTICLE, CONTACT):
            _, result = run_example1(ablation_config(evidence, FULL))
            counts.append(result.partition_count("Person"))
        assert counts == sorted(counts, reverse=True)


class TestInvariants:
    def test_determinism(self):
        _, first = run_example1()
        _, second = run_example1()
        assert first.partitions == second.partitions

    def test_fifo_reaches_same_fixed_point(self):
        _, front = run_example1(EngineConfig(strong_to_front=True))
        _, fifo = run_example1(EngineConfig(strong_to_front=False))
        assert front.partitions == fifo.partitions

    def test_scores_in_range_and_statuses_final(self):
        reconciler, _ = run_example1()
        for node in reconciler.graph.nodes():
            assert 0.0 <= node.score <= 1.0
            assert node.status in (
                NodeStatus.MERGED,
                NodeStatus.INACTIVE,
                NodeStatus.NON_MERGE,
            )

    def test_merged_nodes_connected_non_merge_disconnected(self):
        reconciler, _ = run_example1()
        for node in reconciler.graph.nodes():
            if node.status is NodeStatus.MERGED:
                assert reconciler.uf.connected(node.left, node.right)
            if node.status is NodeStatus.NON_MERGE:
                assert not reconciler.uf.connected(node.left, node.right)

    def test_queue_drains(self):
        reconciler, _ = run_example1()
        assert len(reconciler.queue) == 0

    def test_max_recomputations_budget(self):
        reconciler, result = run_example1(EngineConfig(max_recomputations=3))
        assert reconciler.stats.recomputations <= 3
        # Still returns a valid (partial) partition.
        assert sum(len(c) for c in result.clusters("Person")) == 9

    def test_run_builds_lazily_and_is_idempotent_on_build(self):
        domain = PimDomainModel()
        store = ReferenceStore(domain.schema, example1_references())
        reconciler = Reconciler(store, domain, EngineConfig())
        reconciler.build()
        nodes_after_build = reconciler.graph.pair_nodes_created
        result = reconciler.run()
        assert reconciler.graph.pair_nodes_created >= nodes_after_build
        assert result.partition_count("Article") == 1


class TestConfigSwitches:
    def test_disabled_channel_removes_evidence(self):
        config = EngineConfig(disabled_channels=frozenset({"name_email"}))
        _, result = run_example1(config)
        # Without the cross channel, p5 cannot reach p8/p9.
        assert not result.same_entity("p5", "p8")

    def test_disabled_strong_removes_article_propagation(self):
        config = EngineConfig(
            disabled_strong=frozenset({("Article", "Person")}),
            disabled_channels=frozenset({"name_email"}),
            disabled_weak=frozenset({"Person"}),
        )
        _, result = run_example1(config)
        assert not result.same_entity("p1", "p4")

    def test_premerge_toggle_same_result(self):
        _, with_premerge = run_example1(EngineConfig(premerge_keys=True))
        _, without = run_example1(EngineConfig(premerge_keys=False))
        assert with_premerge.partitions == without.partitions


class TestStats:
    def test_stats_populated(self):
        reconciler, _ = run_example1()
        stats = reconciler.stats
        assert stats.pair_nodes > 0
        assert stats.value_nodes > 0
        assert stats.graph_nodes == stats.pair_nodes + stats.value_nodes
        assert stats.merges > 0
        assert stats.recomputations >= stats.merges
        assert stats.build_seconds >= 0
        assert stats.per_class_nodes["Person"] >= 5
