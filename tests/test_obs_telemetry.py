"""Unit tests for the observability primitives: event log, tracer,
metrics registry, schema validators and stats renderers."""

import io
import json
import math

import pytest

from repro.core.engine import EngineStats
from repro.obs import (
    LEVELS,
    NULL_TELEMETRY,
    Counter,
    EventLog,
    Gauge,
    Histogram,
    MetricsRegistry,
    SchemaError,
    Telemetry,
    Tracer,
    hit_rate,
    parse_prometheus,
    render_degradations,
    render_stats,
    validate_chrome_trace,
    validate_event,
    validate_event_log,
    validate_metrics_snapshot,
)


class FakeClock:
    """Deterministic monotonic clock for timing-sensitive assertions."""

    def __init__(self, start: float = 0.0, step: float = 0.5) -> None:
        self.value = start
        self.step = step

    def __call__(self) -> float:
        self.value += self.step
        return self.value


class TestEventLog:
    def test_writes_jsonl_with_level_filtering(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, level="info", clock=lambda: 42.0) as log:
            log.emit("debug", "ignored", detail="below threshold")
            log.emit("info", "run_start", dataset="B")
            log.emit("warning", "degradation", kind="budget")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [entry["event"] for entry in lines] == ["run_start", "degradation"]
        assert lines[0] == {
            "ts": 42.0, "level": "info", "event": "run_start", "dataset": "B",
        }
        for entry in lines:
            validate_event(entry)

    def test_append_mode_continues_existing_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("info", "run_start")
        with EventLog(path) as log:
            log.emit("info", "resume")
        events = [json.loads(line)["event"] for line in path.read_text().splitlines()]
        assert events == ["run_start", "resume"]
        assert validate_event_log(path) == 2

    def test_stream_sink(self):
        stream = io.StringIO()
        log = EventLog(stream=stream, level="debug")
        log.emit("debug", "probe", x=1)
        assert json.loads(stream.getvalue())["event"] == "probe"

    def test_unknown_level_dropped(self):
        stream = io.StringIO()
        log = EventLog(stream=stream, level="debug")
        log.emit("loud", "boom")  # unknown levels rank below every threshold
        assert stream.getvalue() == ""
        assert log.emitted == 0

    def test_levels_are_ordered(self):
        assert LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"] < LEVELS["error"]


class TestTracer:
    def test_nested_spans_record_depth_and_duration(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("build", "engine"):
            with tracer.span("build_class:Person", "engine", pairs=3):
                pass
        spans = {s.name: s for s in tracer.spans}
        assert spans["build"].depth == 0
        assert spans["build_class:Person"].depth == 1
        assert spans["build_class:Person"].args == {"pairs": 3}
        # Inner span closes before outer, so it must be strictly shorter.
        assert spans["build_class:Person"].duration < spans["build"].duration

    def test_phase_timings_sum_same_name(self):
        tracer = Tracer(clock=FakeClock(step=1.0))
        tracer.complete("iterate_chunk", start=0.0, duration=2.0)
        tracer.complete("iterate_chunk", start=2.0, duration=3.0)
        assert tracer.phase_timings()["iterate_chunk"] == pytest.approx(5.0)

    def test_chrome_trace_is_valid_and_microseconds(self, tmp_path):
        tracer = Tracer(clock=FakeClock(step=0.25))
        with tracer.span("iterate", "engine"):
            tracer.instant("checkpoint_saved", step=0)
        trace = tracer.chrome_trace()
        assert validate_chrome_trace(trace) >= 3  # metadata + span + instant
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert complete and complete[0]["name"] == "iterate"
        # FakeClock advances 0.25 s per tick; the span covers at least
        # the instant's tick, so its duration is >= 250000 us.
        assert complete[0]["dur"] >= 250_000
        path = tracer.write(tmp_path / "trace.json")
        validate_chrome_trace(json.loads(path.read_text()))

    def test_exception_still_closes_span(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert [s.name for s in tracer.spans] == ["doomed"]


class TestMetrics:
    def test_counter_gauge_histogram_basics(self):
        counter = Counter("repro_merges_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        gauge = Gauge("repro_queue_size")
        gauge.set(17)
        assert gauge.value == 17
        hist = Histogram("repro_latency_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(5.55)
        assert hist.cumulative() == [(0.1, 1), (1.0, 2), (math.inf, 3)]

    def test_registry_create_or_get(self):
        registry = MetricsRegistry()
        assert registry.counter("repro_x_total") is registry.counter("repro_x_total")
        with pytest.raises(TypeError):
            registry.gauge("repro_x_total")  # same name, different kind

    def test_absorb_stats_maps_engine_counters(self):
        stats = EngineStats()
        stats.merges = 7
        stats.recomputations = 21
        stats.feature_cache_hits = 90
        stats.feature_cache_misses = 10
        registry = MetricsRegistry()
        registry.absorb_stats(stats)
        snapshot = registry.snapshot()
        assert snapshot["repro_merges_total"]["value"] == 7
        assert snapshot["repro_recomputations_total"]["value"] == 21
        assert registry.cache_hit_rates()["feature"] == pytest.approx(0.9)
        assert validate_metrics_snapshot(snapshot) == len(snapshot)

    def test_snapshot_histogram_schema_roundtrip(self, tmp_path):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_recompute_seconds")
        for value in (0.0001, 0.001, 0.5):
            hist.observe(value)
        path = registry.write(tmp_path / "metrics.json")
        snapshot = json.loads(path.read_text())
        assert validate_metrics_snapshot(snapshot) == 1
        restored = snapshot["repro_recompute_seconds"]
        assert restored["count"] == 3
        assert restored["buckets"]["+Inf"] == 3

    def test_prometheus_text_parses(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("repro_merges_total", "merge decisions").inc(3)
        registry.gauge("repro_build_seconds").set(1.5)
        registry.histogram("repro_queue_depth", buckets=(1, 10)).observe(4)
        text = registry.to_prometheus()
        samples = parse_prometheus(text)
        assert samples["repro_merges_total"] == 3
        assert samples["repro_build_seconds"] == 1.5
        assert samples['repro_queue_depth_bucket{le="10"}'] == 1
        assert samples['repro_queue_depth_bucket{le="+Inf"}'] == 1
        assert samples["repro_queue_depth_count"] == 1
        # The .prom suffix selects the Prometheus exposition format.
        path = registry.write(tmp_path / "metrics.prom")
        assert parse_prometheus(path.read_text()) == samples

    def test_broken_snapshot_rejected(self):
        with pytest.raises(SchemaError):
            validate_metrics_snapshot({"x": {"type": "teapot"}})
        with pytest.raises(SchemaError):
            # +Inf bucket disagreeing with count is a truncated export.
            validate_metrics_snapshot({
                "x": {"type": "histogram", "count": 3, "sum": 1.0,
                      "buckets": {"+Inf": 2}},
            })


class TestNullTelemetry:
    def test_null_sinks_are_inert(self):
        assert NULL_TELEMETRY.active is False
        NULL_TELEMETRY.emit("error", "anything", detail="dropped")
        NULL_TELEMETRY.instant("anything")
        with NULL_TELEMETRY.span("anything"):
            pass
        NULL_TELEMETRY.close()
        assert NULL_TELEMETRY.log is None
        assert NULL_TELEMETRY.tracer is None
        assert NULL_TELEMETRY.metrics is None
        assert NULL_TELEMETRY.provenance is None

    def test_enabled_constructor_wires_requested_sinks(self, tmp_path):
        telemetry = Telemetry.enabled(
            log_path=tmp_path / "e.jsonl", trace=True, metrics=True,
            provenance=True,
        )
        assert telemetry.active is True
        assert telemetry.log is not None
        assert telemetry.tracer is not None
        assert telemetry.metrics is not None
        assert telemetry.provenance is not None
        telemetry.close()

    def test_partial_telemetry_span_without_tracer(self):
        telemetry = Telemetry(metrics=MetricsRegistry())
        assert telemetry.active is True
        with telemetry.span("no_tracer_installed"):
            pass  # must not raise


class TestRenderers:
    def test_hit_rate_formats(self):
        assert hit_rate(9, 1) == "90.0% (9/10)"
        assert hit_rate(0, 0) == "n/a"

    def test_render_stats_contains_counters(self):
        stats = EngineStats()
        stats.candidate_pairs = 12
        stats.pair_nodes = 10
        stats.merges = 4
        text = render_stats(stats)
        assert "candidate_pairs=12" in text
        assert "merges=4" in text
        assert text.startswith("engine stats:")

    def test_render_degradations_empty_when_clean(self, tiny_pim_a):
        from repro.core import EngineConfig, Reconciler
        from repro.domains import PimDomainModel

        result = Reconciler(
            tiny_pim_a.store, PimDomainModel(), EngineConfig()
        ).run()
        assert result.completed
        assert render_degradations(result) == ""
