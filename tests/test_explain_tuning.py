"""Tests for merge explanations and weight tuning."""

import pytest

from repro.core import EngineConfig, Reconciler, ReferenceStore
from repro.core.explain import explain_merge
from repro.domains import PimDomainModel
from repro.domains.tuning import (
    TunedDomainModel,
    collect_training_pairs,
    fit_profile_weights,
    tune_domain,
)

from .conftest import example1_references


@pytest.fixture(scope="module")
def example1_run():
    domain = PimDomainModel()
    store = ReferenceStore(domain.schema, example1_references())
    reconciler = Reconciler(store, domain, EngineConfig())
    result = reconciler.run()
    return reconciler, result


EXAMPLE1_GOLD = {
    "a1": "paper", "a2": "paper",
    "p1": "epstein", "p4": "epstein",
    "p2": "stonebraker", "p5": "stonebraker", "p8": "stonebraker", "p9": "stonebraker",
    "p3": "wong", "p6": "wong", "p7": "wong",
    "c1": "sigmod", "c2": "sigmod",
}


class TestExplain:
    def test_direct_merge(self, example1_run):
        reconciler, _ = example1_run
        explanation = explain_merge(reconciler, "p3", "p7")
        assert explanation.connected
        assert explanation.steps
        assert "p3" in explanation.describe()

    def test_chain_merge(self, example1_run):
        reconciler, _ = example1_run
        explanation = explain_merge(reconciler, "p2", "p9")
        assert explanation.connected
        assert len(explanation.steps) >= 1
        # Evidence is surfaced.
        assert any(step.evidence for step in explanation.steps)

    def test_key_premerge(self, example1_run):
        reconciler, _ = example1_run
        explanation = explain_merge(reconciler, "p8", "p9")
        assert explanation.connected
        assert explanation.steps
        channels = {ch for step in explanation.steps for ch in step.evidence}
        assert "key" in channels or "email" in channels

    def test_not_connected(self, example1_run):
        reconciler, _ = example1_run
        explanation = explain_merge(reconciler, "p1", "p2")
        assert not explanation.connected
        assert "NOT" in explanation.describe()

    def test_self(self, example1_run):
        reconciler, _ = example1_run
        assert explain_merge(reconciler, "p1", "p1").connected

    def test_article_merge(self, example1_run):
        reconciler, _ = example1_run
        explanation = explain_merge(reconciler, "a1", "a2")
        assert explanation.connected
        channels = {ch for step in explanation.steps for ch in step.evidence}
        assert "title" in channels


class TestTuning:
    def test_collect_training_pairs(self):
        domain = PimDomainModel()
        store = ReferenceStore(domain.schema, example1_references())
        training = collect_training_pairs(store, domain, "Person", EXAMPLE1_GOLD)
        assert training.channels == ("name", "email", "name_email")
        assert training.pairs
        # On the tiny example every candidate pair happens to be a true
        # match (blocking already filtered the rest).
        assert training.n_matches > 0

    def test_collect_labels_negatives(self):
        """Marking p9 as somebody else yields negative examples."""
        domain = PimDomainModel()
        store = ReferenceStore(domain.schema, example1_references())
        gold = dict(EXAMPLE1_GOLD, p9="somebody-else")
        training = collect_training_pairs(store, domain, "Person", gold)
        assert 0 < training.n_matches < len(training.pairs)

    def test_fit_weights(self):
        domain = PimDomainModel()
        store = ReferenceStore(domain.schema, example1_references())
        gold = dict(EXAMPLE1_GOLD, p9="somebody-else")
        training = collect_training_pairs(store, domain, "Person", gold)
        weights = fit_profile_weights(training)
        assert set(weights) == {"name", "email", "name_email"}
        assert all(weight >= 0 for weight in weights.values())

    def test_tuned_model_monotone_wrapper(self):
        domain = PimDomainModel()
        tuned = TunedDomainModel(domain, {"Person": {"name": 0.5, "email": 0.5}})
        evidence = {"name": 0.9, "email": 0.9}
        assert tuned.rv_score("Person", evidence) >= domain.rv_score(
            "Person", evidence
        )
        # Untuned classes delegate exactly.
        article_evidence = {"title": 0.9, "pages": 1.0}
        assert tuned.rv_score("Article", article_evidence) == domain.rv_score(
            "Article", article_evidence
        )

    def test_tuned_model_reconciles_example1(self):
        base = PimDomainModel()
        store = ReferenceStore(base.schema, example1_references())
        tuned = tune_domain(store, base, EXAMPLE1_GOLD, ["Person"])
        store2 = ReferenceStore(base.schema, example1_references())
        result = Reconciler(store2, tuned, EngineConfig()).run()
        # Tuning on the gold labels must not lose the gold merges.
        assert result.same_entity("p2", "p9")
        assert result.same_entity("p3", "p7")
        assert not result.same_entity("p1", "p2")

    def test_tuning_improves_or_preserves_f(self, tiny_pim_a):
        """Learned weights on gold labels never hurt much at test time
        (trained and evaluated on the same references — a sanity check
        of the machinery, not a generalisation claim)."""
        from repro.evaluation.metrics import pairwise_scores

        base = PimDomainModel()
        gold = tiny_pim_a.gold.entity_of
        tuned = tune_domain(tiny_pim_a.store, base, gold, ["Person"])
        base_result = Reconciler(
            tiny_pim_a.store, PimDomainModel(), EngineConfig()
        ).run()
        tuned_result = Reconciler(tiny_pim_a.store, tuned, EngineConfig()).run()
        base_f = pairwise_scores(base_result.clusters("Person"), gold).f_measure
        tuned_f = pairwise_scores(tuned_result.clusters("Person"), gold).f_measure
        assert tuned_f >= base_f - 0.05
