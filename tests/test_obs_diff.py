"""Cross-run diffing: a run against itself is clean (exit 0); two runs
differing in one channel threshold localize the flip to that channel
with the recorded before/after scores and a root-cause chain that
terminates at a seed decision."""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.core import EngineConfig, Reconciler
from repro.datasets import generate_pim_dataset
from repro.domains import PimDomainModel
from repro.obs import (
    ProvenanceLog,
    Telemetry,
    build_manifest,
    diff_runs,
    render_diff,
    write_manifest,
)
from repro.obs.diffing import final_merges, root_cause_chain

TWEAKED_CHANNEL = "name"
TWEAKED_THRESHOLD = 0.97


def _tweaked_domain():
    """A PIM domain whose Person name channel discards sub-0.97
    evidence — one knob turned, everything else identical."""
    domain = PimDomainModel()
    domain._atomic["Person"] = tuple(
        dataclasses.replace(channel, liberal_threshold=TWEAKED_THRESHOLD)
        if channel.name == TWEAKED_CHANNEL
        else channel
        for channel in domain._atomic["Person"]
    )
    return domain


def _record_run(dataset, domain, run_dir):
    run_dir.mkdir(parents=True, exist_ok=True)
    log = ProvenanceLog(run_dir / "provenance.jsonl")
    engine = Reconciler(
        dataset.store, domain, EngineConfig(), telemetry=Telemetry(provenance=log)
    )
    engine.attach_convergence(dataset.gold.entity_of, every=50)
    result = engine.run()
    manifest = build_manifest(
        dataset=dataset,
        reconciler=engine,
        result=result,
        artifacts={"provenance": "provenance.jsonl"},
    )
    write_manifest(manifest, run_dir)
    log.close()
    return manifest, log


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    root = tmp_path_factory.mktemp("diff_runs")
    dataset = generate_pim_dataset("B", scale=0.15)
    base = _record_run(dataset, PimDomainModel(), root / "base")
    tweaked = _record_run(dataset, _tweaked_domain(), root / "tweaked")
    return {"root": root, "base": base, "tweaked": tweaked}


class TestSelfDiff:
    def test_verdict_is_clean(self, runs):
        manifest, provenance = runs["base"]
        verdict = diff_runs(
            manifest, manifest, provenance_a=provenance, provenance_b=provenance
        )
        assert not verdict.regressed
        assert not verdict.quality_regressions
        assert not verdict.flipped_pairs
        assert not verdict.partition_changed
        assert verdict.to_dict()["regressed"] is False

    def test_cli_self_diff_exits_zero(self, runs, tmp_path, capsys):
        base_dir = str(runs["root"] / "base")
        verdict_path = tmp_path / "verdict.json"
        code = main(["diff", base_dir, base_dir, "--json", str(verdict_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "verdict: clean" in out
        payload = json.loads(verdict_path.read_text())
        assert payload["regressed"] is False
        assert payload["flipped_pairs"] == []


class TestThresholdTweak:
    def test_flip_attributed_to_the_tweaked_channel(self, runs):
        manifest_a, provenance_a = runs["base"]
        manifest_b, provenance_b = runs["tweaked"]
        verdict = diff_runs(
            manifest_a,
            manifest_b,
            provenance_a=provenance_a,
            provenance_b=provenance_b,
        )
        assert verdict.regressed
        assert verdict.partition_changed
        assert verdict.flips_total >= 1
        flips = [
            flip
            for flip in verdict.flipped_pairs
            if flip["attribution"]["channel"] == TWEAKED_CHANNEL
        ]
        assert flips, "no flip attributed to the tweaked channel"
        for flip in flips:
            attribution = flip["attribution"]
            pair = tuple(flip["pair"])
            # before/after channel scores must be the recorded ones
            record_a = provenance_a.last_decision(*pair)
            expected_a = record_a.channels.get(TWEAKED_CHANNEL, 0.0)
            assert attribution["channel_score_a"] == pytest.approx(expected_a)
            record_b = provenance_b.last_decision(*pair)
            expected_b = (
                record_b.channels.get(TWEAKED_CHANNEL, 0.0) if record_b else 0.0
            )
            assert (attribution["channel_score_b"] or 0.0) == pytest.approx(expected_b)
        # raising a liberal threshold can only lose merges
        assert all(
            flip["direction"] == "merged->unmerged" for flip in verdict.flipped_pairs
        )

    def test_quality_regression_detected(self, runs):
        manifest_a, _ = runs["base"]
        manifest_b, _ = runs["tweaked"]
        verdict = diff_runs(manifest_a, manifest_b)
        recalls = [
            entry
            for entry in verdict.quality_regressions
            if entry["metric"] == "recall" and entry["class"] == "Person"
        ]
        assert recalls, "Person recall should regress when name evidence is cut"
        for entry in recalls:
            assert entry["delta"] < 0
            assert entry["a"] == manifest_a["quality"]["Person"][entry["family"]]["recall"]
            assert entry["b"] == manifest_b["quality"]["Person"][entry["family"]]["recall"]

    def test_root_cause_chain_terminates_at_seed(self, runs):
        _, provenance = runs["base"]
        merges = final_merges(provenance)
        propagated = [
            record
            for record in merges.values()
            if record.trigger not in ("seed", "incremental")
        ]
        assert propagated, "expected at least one propagation-triggered merge"
        seed_rooted = 0
        for record in propagated[:10]:
            chain = root_cause_chain(provenance, record)
            assert chain[-1]["pair"] == list(record.pair)
            root = chain[0]
            if root["trigger"] in ("seed", "incremental"):
                seed_rooted += 1
                continue
            # the only other legal root is a decision with no upstream
            # link to walk (e.g. a fusion-triggered merge)
            root_records = provenance.decisions_for(*root["pair"])
            assert any(
                rec.trigger == root["trigger"] and not rec.trigger_pair
                for rec in root_records
            ), chain
        assert seed_rooted, "no chain walked back to a seed decision"

    def test_cli_diff_exits_nonzero_and_renders(self, runs, capsys):
        base_dir = str(runs["root"] / "base")
        tweaked_dir = str(runs["root"] / "tweaked")
        code = main(["diff", base_dir, tweaked_dir])
        assert code == 1
        out = capsys.readouterr().out
        assert "verdict: REGRESSED" in out
        assert f"channel {TWEAKED_CHANNEL}:" in out
        assert "root cause:" in out

    def test_render_diff_is_byte_stable(self, runs):
        manifest_a, provenance_a = runs["base"]
        manifest_b, provenance_b = runs["tweaked"]
        texts = [
            render_diff(
                diff_runs(
                    manifest_a,
                    manifest_b,
                    provenance_a=provenance_a,
                    provenance_b=provenance_b,
                )
            )
            for _ in range(2)
        ]
        assert texts[0] == texts[1]
        assert texts[0].endswith("verdict: REGRESSED")


class TestPhaseAndDegradation:
    def test_phase_slowdown_needs_tolerance_and_floor(self):
        manifest_a = {
            "run": {"dataset": "X"},
            "execution": {
                "build_seconds": 1.0,
                "iterate_seconds": 0.01,
                "phase_seconds": {"build": 1.0, "iterate": 0.01},
            },
        }
        manifest_b = {
            "run": {"dataset": "X"},
            "execution": {
                "build_seconds": 1.5,
                "iterate_seconds": 0.02,
                "phase_seconds": {"build": 1.5, "iterate": 0.02},
            },
        }
        verdict = diff_runs(manifest_a, manifest_b)
        phases = {entry["phase"] for entry in verdict.phase_regressions}
        # build: +50% and +0.5s -> gated; iterate: +100% but only +0.01s
        # (under the floor) -> ignored
        assert phases == {"build"}
        assert verdict.regressed

    def test_new_degradation_and_completion_gate(self):
        manifest_a = {"run": {"completed": True}, "degradations": []}
        manifest_b = {
            "run": {"completed": False},
            "degradations": [{"kind": "deadline", "detail": "budget"}],
        }
        verdict = diff_runs(manifest_a, manifest_b)
        assert verdict.completed_regression
        assert verdict.new_degradations == ["deadline"]
        assert verdict.regressed
