"""`repro doctor` / `repro hotspots` end-to-end, plus golden-text
byte-stability for their renderers.

Contracts under test:

* the renderers are pure — fixed inputs render the exact same bytes,
  render after render (golden constants below);
* a clean `--run-dir` run leaves no crash bundle and doctor exits 0;
* a guard-tripped run, a chaos-killed worker, and an unhandled engine
  exception each leave a schema-valid, atomically-written bundle and
  doctor exits 1 — deterministically, run after run;
* `repro watch` tailing tolerates a partially-written final JSONL line
  (satellite: buffer the fragment, never raise or drop it);
* `repro report` renders explicit "not recorded" placeholders for
  absent optional artifacts instead of omitting sections.
"""

import json

import pytest

from repro.cli import main
from repro.obs import load_crash_bundle, validate_crash_bundle
from repro.obs.live import read_events
from repro.obs.render import render_doctor, render_hotspots

HOTSPOTS_SUMMARY = {
    "sketch_capacity": 128,
    "pair_updates": 42,
    "pair_seconds_error_bound": 0.000123,
    "top_blocks": [
        {"block": "Person/t:smith", "candidate_pairs": 45, "max_error": 0},
        {"block": "Venue/v:sigmod", "candidate_pairs": 10, "max_error": 2},
    ],
    "top_pairs": [
        {
            "pair": "Person:r1|r2",
            "seconds": 0.004321,
            "recomputations": 3,
            "max_error_seconds": 0.0,
        },
    ],
    "channels": [
        {"channel": "name", "comparisons": 120},
        {"channel": "email", "comparisons": 30},
    ],
    "skew": {
        "Person": {
            "blocks": 12,
            "references": 40,
            "gini": 0.5132,
            "max_block": "t:smith",
            "max_block_size": 10,
            "max_pair_share": 0.6,
            "oversized": 1,
        },
        "Venue": {
            "blocks": 0,
            "references": 0,
            "gini": 0.0,
            "max_block": None,
            "max_block_size": 0,
            "max_pair_share": 0.0,
            "oversized": 0,
        },
    },
}

HOTSPOTS_GOLDEN = """\
hotspot attribution (sketch capacity 128, 42 pair timings, error bound 0.000123s):
  blocking skew:
    Person: 12 blocks, gini 0.5132, max t:smith (10 refs, 60.0% of pairs), oversized 1
    Venue: no blocks recorded
  top blocks by candidate pairs:
    Person/t:smith  45
    Venue/v:sigmod  10
  top pairs by recompute seconds:
    Person:r1|r2  0.004321s x3
  channel comparisons:
    name  120
    email  30"""

CRASH_BUNDLE = {
    "bundle_version": 1,
    "kind": "repro_crash_bundle",
    "reason": "unhandled ValueError during run",
    "phase": "iterate",
    "stop_reason": None,
    "exception": {"type": "ValueError", "message": "boom", "traceback": []},
    "config": {},
    "stats": {},
    "rings": {
        "ring_size": 256,
        "noted": 9,
        "events": [{"seq": 1, "event": "build_start"}],
        "decisions": [
            {
                "seq": 5,
                "pair": ["a", "b"],
                "class": "Person",
                "decision": "merge",
                "score": 0.91,
            },
            {
                "seq": 6,
                "pair": ["a", "c"],
                "class": "Person",
                "decision": "defer",
                "score": None,
            },
        ],
        "chunks": [
            {"seq": 7, "lane": "build pool", "seconds": 0.25},
            {"seq": 8, "lane": "build pool", "seconds": 0.125},
        ],
        "degradations": [
            {"seq": 9, "kind": "pool_rebuild", "detail": "worker died"}
        ],
    },
    "stacks": {},
    "worker_lanes": {
        "lanes": {"4242": {"process_name": "scoring worker", "recent": []}},
        "deaths": [
            {"pid": 4242, "reason": "exit code -9", "lane": "scoring worker"}
        ],
    },
}

DOCTOR_CRASHED_GOLDEN = """\
doctor: unhandled ValueError during run
  phase: iterate
  exception: ValueError: boom
  degradations (1 recorded):
    [pool_rebuild] worker died
  last decisions (2 of 2 retained):
    a <-> b [Person] merge score=0.9100
    a <-> c [Person] defer score=n/a
  chunks: 2 retained, slowest build pool 0.250s
  worker lanes: 1 with retained rings, 1 death(s)
    died: scoring worker pid=4242: exit code -9
  hint: an unhandled exception ended the run; the decisions ring in crash_bundle.json shows the last work before it
  hint: worker processes died under supervision; rerun with --workers 1 to isolate the fault, and check memory limits
  hint: parallel scoring degraded (pool rebuilt or serial fallback); results are unchanged but slower
  verdict: crashed"""


class TestGoldenRenderers:
    def test_hotspots_golden(self):
        assert render_hotspots(HOTSPOTS_SUMMARY) == HOTSPOTS_GOLDEN
        assert render_hotspots(HOTSPOTS_SUMMARY) == render_hotspots(
            HOTSPOTS_SUMMARY
        )

    def test_hotspots_empty_golden(self):
        assert render_hotspots({}) == (
            "hotspot attribution (sketch capacity 0, 0 pair timings, "
            "error bound 0.000000s):\n  (nothing recorded)"
        )

    def test_doctor_crashed_golden(self):
        assert render_doctor(CRASH_BUNDLE) == DOCTOR_CRASHED_GOLDEN
        assert render_doctor(CRASH_BUNDLE) == render_doctor(CRASH_BUNDLE)

    def test_doctor_nothing_golden(self):
        assert render_doctor(None, None) == (
            "doctor: nothing to diagnose "
            "(no crash_bundle.json or run.json found)\n  verdict: unknown"
        )

    def test_doctor_clean_golden(self):
        manifest = {
            "run": {"completed": True, "stop_reason": "converged"},
            "degradations": [],
        }
        assert render_doctor(None, manifest) == (
            "doctor: clean run (converged; no crash bundle)\n  verdict: clean"
        )

    def test_doctor_degraded_manifest_only_golden(self):
        manifest = {
            "run": {"completed": False, "stop_reason": "deadline"},
            "degradations": [
                {"kind": "deadline", "detail": "wall clock exceeded 1s"}
            ],
        }
        assert render_doctor(None, manifest) == (
            "doctor: degraded run (no crash bundle recorded)\n"
            "  stop_reason: deadline\n"
            "    [deadline] wall clock exceeded 1s\n"
            "  hint: a run guard tripped; raise --deadline / "
            "--max-recomputations or reduce the dataset scale\n"
            "  verdict: degraded"
        )


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("doctor_cli") / "dataset"
    assert main(["generate", "A", str(directory), "--scale", "0.15"]) == 0
    return directory


class TestDoctorExitCodes:
    def test_clean_run_no_bundle_exit_zero(self, dataset_dir, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main(["evaluate", str(dataset_dir), "--run-dir", str(run_dir)]) == 0
        assert not (run_dir / "crash_bundle.json").exists()
        assert main(["doctor", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "verdict: clean" in out

    def test_guard_trip_dumps_bundle_and_exit_one(
        self, dataset_dir, tmp_path, capsys
    ):
        run_dir = tmp_path / "run"
        assert (
            main(
                [
                    "evaluate",
                    str(dataset_dir),
                    "--run-dir",
                    str(run_dir),
                    "--max-recomputations",
                    "40",
                ]
            )
            == 0
        )
        bundle = load_crash_bundle(run_dir)
        assert bundle is not None
        validate_crash_bundle(bundle)
        assert bundle["reason"] == "degraded run: budget"
        assert bundle["stop_reason"] == "budget"
        assert bundle["rings"]["degradations"][-1]["kind"] == "budget"
        # The bundle is a recorded artifact of the run.
        manifest = json.loads((run_dir / "run.json").read_text())
        assert manifest["artifacts"]["crash_bundle"] == "crash_bundle.json"
        capsys.readouterr()  # drain the evaluate's own output
        assert main(["doctor", str(run_dir)]) == 1
        first = capsys.readouterr().out
        assert "verdict: degraded" in first
        assert "hint: a run guard tripped" in first
        # Byte-determinism: a second diagnosis renders identical text.
        assert main(["doctor", str(run_dir)]) == 1
        assert capsys.readouterr().out == first

    def test_stale_bundle_cleared_by_fresh_clean_run(self, dataset_dir, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "crash_bundle.json").write_text("{}")
        assert main(["evaluate", str(dataset_dir), "--run-dir", str(run_dir)]) == 0
        assert not (run_dir / "crash_bundle.json").exists()
        assert main(["doctor", str(run_dir)]) == 0

    def test_nothing_to_diagnose_exit_two(self, tmp_path, capsys):
        assert main(["doctor", str(tmp_path)]) == 2
        assert "nothing to diagnose" in capsys.readouterr().out

    def test_unhandled_exception_dumps_bundle(
        self, dataset_dir, tmp_path, monkeypatch
    ):
        from repro.core import Reconciler

        def explode(self, *args, **kwargs):
            raise RuntimeError("injected mid-iterate failure")

        monkeypatch.setattr(Reconciler, "_iterate_loop", explode)
        run_dir = tmp_path / "run"
        with pytest.raises(RuntimeError, match="injected mid-iterate"):
            main(["evaluate", str(dataset_dir), "--run-dir", str(run_dir)])
        bundle = load_crash_bundle(run_dir)
        assert bundle is not None
        validate_crash_bundle(bundle)
        assert bundle["reason"] == "unhandled RuntimeError during run"
        assert bundle["exception"]["type"] == "RuntimeError"
        assert bundle["phase"] == "iterate"  # the build had finished
        assert bundle["rings"]["events"]  # build landmarks survived
        assert main(["doctor", str(run_dir)]) == 1

    def test_chaos_killed_worker_dumps_bundle_with_lanes(
        self, dataset_dir, tmp_path, monkeypatch, capsys
    ):
        """The CI crash-bundle scenario: a chaos-killed build worker on a
        parallel run leaves a schema-valid bundle carrying worker-lane
        rings, and doctor diagnoses it nonzero."""
        run_dir = tmp_path / "run"
        monkeypatch.setenv("REPRO_CHAOS", '{"kill_at_chunk": 1}')
        assert (
            main(
                [
                    "evaluate",
                    str(dataset_dir),
                    "--run-dir",
                    str(run_dir),
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        bundle = load_crash_bundle(run_dir)
        assert bundle is not None
        validate_crash_bundle(bundle)
        kinds = {entry["kind"] for entry in bundle["rings"]["degradations"]}
        assert kinds & {"task_retry", "pool_rebuild", "pair_poisoned"}
        # Chunk 0's payload shipped before the chunk-1 kill, so at least
        # one worker lane retained a ring.
        assert bundle["worker_lanes"]["lanes"]
        assert main(["doctor", str(run_dir)]) == 1
        assert "verdict: degraded" in capsys.readouterr().out


class TestHotspotsCommand:
    def test_hotspots_text_and_json(self, dataset_dir, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main(["evaluate", str(dataset_dir), "--run-dir", str(run_dir)]) == 0
        capsys.readouterr()
        assert main(["hotspots", str(run_dir)]) == 0
        text = capsys.readouterr().out
        assert text.startswith("hotspot attribution")
        assert "blocking skew:" in text
        assert main(["hotspots", str(run_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pair_updates"] > 0
        assert "skew" in payload
        # Determinism: same run dir, same bytes.
        assert main(["hotspots", str(run_dir)]) == 0
        assert capsys.readouterr().out == text

    def test_hotspots_missing_manifest_exit_two(self, tmp_path, capsys):
        assert main(["hotspots", str(tmp_path)]) == 2
        assert "no run.json" in capsys.readouterr().err

    def test_hotspots_manifest_without_attribution_exit_two(
        self, tmp_path, capsys
    ):
        (tmp_path / "run.json").write_text(
            json.dumps({"execution": {"hotspots": None}})
        )
        assert main(["hotspots", str(tmp_path)]) == 2
        assert "no hotspot attribution" in capsys.readouterr().err


class TestWatchPartialLine:
    def test_read_events_holds_back_unterminated_tail(self, tmp_path):
        path = tmp_path / "events.jsonl"
        complete = {"event": "build_start", "level": "info"}
        path.write_text(json.dumps(complete) + "\n" + '{"event": "build_')
        events = read_events(path)
        assert events == [complete]  # fragment buffered, not raised/dropped

    def test_fragment_is_picked_up_once_completed(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "run_start"}\n{"event": "run_')
        assert len(read_events(path)) == 1
        with path.open("a") as handle:
            handle.write('end"}\n')
        assert [event["event"] for event in read_events(path)] == [
            "run_start",
            "run_end",
        ]

    def test_interior_corruption_still_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "a"}\nnot json at all\n{"event": "b"}\n')
        assert [event["event"] for event in read_events(path)] == ["a", "b"]


class TestReportPlaceholders:
    def test_absent_artifacts_render_explicit_placeholders(
        self, dataset_dir, tmp_path, capsys
    ):
        run_dir = tmp_path / "run"
        assert main(["evaluate", str(dataset_dir), "--run-dir", str(run_dir)]) == 0
        assert main(["report", str(run_dir)]) == 0
        html = (run_dir / "report.html").read_text()
        # Serial run without --trace/--profile: every optional section is
        # present with an explicit "not recorded" note, never omitted.
        assert "No trace recorded" in html
        assert "No profile recorded" in html
        assert "No poisoned-pair log recorded" in html
        assert "<h2>Workload hotspots</h2>" in html
        assert "blocking skew" in html.lower() or "Gini" in html
