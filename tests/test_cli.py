"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli") / "dataset"
    code = main(["generate", "A", str(directory), "--scale", "0.2"])
    assert code == 0
    return directory


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(["generate", "cora", "/tmp/x"])
        assert args.command == "generate"
        assert args.dataset == "cora"

    def test_bad_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "Z", "/tmp/x"])


class TestCommands:
    def test_generate_writes_files(self, dataset_dir):
        assert (dataset_dir / "meta.json").exists()
        assert (dataset_dir / "references.jsonl").exists()
        assert (dataset_dir / "gold.jsonl").exists()

    def test_reconcile_to_file(self, dataset_dir, tmp_path, capsys):
        output = tmp_path / "partition.json"
        code = main(["reconcile", str(dataset_dir), "--output", str(output)])
        assert code == 0
        payload = json.loads(output.read_text())
        assert set(payload) == {"Person", "Article", "Venue"}
        assert all(isinstance(cluster, list) for cluster in payload["Person"])

    def test_reconcile_to_stdout(self, dataset_dir, capsys):
        code = main(["reconcile", str(dataset_dir)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "Person" in payload

    def test_evaluate(self, dataset_dir, capsys):
        code = main(["evaluate", str(dataset_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "pairwise" in out and "b3" in out
        assert "Person" in out

    def test_evaluate_indepdec(self, dataset_dir, capsys):
        code = main(["evaluate", str(dataset_dir), "--algorithm", "indepdec"])
        assert code == 0
        assert "indepdec" in capsys.readouterr().out

    def test_explain(self, dataset_dir, capsys):
        from repro.datasets.io import load_dataset

        dataset = load_dataset(dataset_dir)
        refs = dataset.gold.refs_of_class("Person")[:2]
        code = main(["explain", str(dataset_dir), refs[0], refs[1]])
        assert code == 0
        assert refs[0] in capsys.readouterr().out

    def test_explain_unknown_ref(self, dataset_dir, capsys):
        code = main(["explain", str(dataset_dir), "nope", "nada"])
        assert code == 2

    def test_tables_table1(self, capsys):
        code = main(["tables", "1", "--scale", "0.2"])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out

    def test_tables_fig6(self, capsys):
        code = main(["tables", "fig6", "--scale", "0.2"])
        assert code == 0
        assert "Figure 6" in capsys.readouterr().out
