"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli") / "dataset"
    code = main(["generate", "A", str(directory), "--scale", "0.2"])
    assert code == 0
    return directory


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(["generate", "cora", "/tmp/x"])
        assert args.command == "generate"
        assert args.dataset == "cora"

    def test_bad_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "Z", "/tmp/x"])


class TestCommands:
    def test_generate_writes_files(self, dataset_dir):
        assert (dataset_dir / "meta.json").exists()
        assert (dataset_dir / "references.jsonl").exists()
        assert (dataset_dir / "gold.jsonl").exists()

    def test_reconcile_to_file(self, dataset_dir, tmp_path, capsys):
        output = tmp_path / "partition.json"
        code = main(["reconcile", str(dataset_dir), "--output", str(output)])
        assert code == 0
        payload = json.loads(output.read_text())
        assert set(payload) == {"Person", "Article", "Venue"}
        assert all(isinstance(cluster, list) for cluster in payload["Person"])

    def test_reconcile_to_stdout(self, dataset_dir, capsys):
        code = main(["reconcile", str(dataset_dir)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "Person" in payload

    def test_evaluate(self, dataset_dir, capsys):
        code = main(["evaluate", str(dataset_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "pairwise" in out and "b3" in out
        assert "Person" in out

    def test_evaluate_indepdec(self, dataset_dir, capsys):
        code = main(["evaluate", str(dataset_dir), "--algorithm", "indepdec"])
        assert code == 0
        assert "indepdec" in capsys.readouterr().out

    def test_explain(self, dataset_dir, capsys):
        from repro.datasets.io import load_dataset

        dataset = load_dataset(dataset_dir)
        refs = dataset.gold.refs_of_class("Person")[:2]
        code = main(["explain", str(dataset_dir), refs[0], refs[1]])
        assert code == 0
        assert refs[0] in capsys.readouterr().out

    def test_explain_unknown_ref(self, dataset_dir, capsys):
        code = main(["explain", str(dataset_dir), "nope", "nada"])
        assert code == 2

    def test_tables_table1(self, capsys):
        code = main(["tables", "1", "--scale", "0.2"])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out

    def test_tables_fig6(self, capsys):
        code = main(["tables", "fig6", "--scale", "0.2"])
        assert code == 0
        assert "Figure 6" in capsys.readouterr().out


class TestRuntimeFlags:
    def test_deadline_degrades_gracefully(self, dataset_dir, capsys):
        code = main(["evaluate", str(dataset_dir), "--deadline", "0"])
        assert code == 0
        captured = capsys.readouterr()
        assert "pairwise" in captured.out
        assert "run degraded: stop_reason=deadline" in captured.err

    def test_max_recomputations_flag(self, dataset_dir, capsys):
        code = main(["evaluate", str(dataset_dir), "--max-recomputations", "3"])
        assert code == 0
        assert "stop_reason=budget" in capsys.readouterr().err

    def test_checkpoint_then_resume_matches(self, dataset_dir, tmp_path, capsys):
        ckpt_dir = tmp_path / "ckpt"
        first = tmp_path / "first.json"
        code = main([
            "reconcile", str(dataset_dir),
            "--checkpoint-dir", str(ckpt_dir),
            "--checkpoint-every", "20",
            "--output", str(first),
        ])
        assert code == 0
        assert (ckpt_dir / "checkpoint.json").exists()
        second = tmp_path / "second.json"
        code = main([
            "reconcile", str(dataset_dir),
            "--resume", str(ckpt_dir / "checkpoint.json"),
            "--output", str(second),
        ])
        assert code == 0
        assert json.loads(first.read_text()) == json.loads(second.read_text())

    def test_lenient_flag_quarantines(self, tmp_path, capsys):
        from repro.runtime import inject_malformed_lines

        directory = tmp_path / "dataset"
        assert main(["generate", "A", str(directory), "--scale", "0.15"]) == 0
        capsys.readouterr()
        inject_malformed_lines(directory / "references.jsonl", rate=0.05, seed=7)
        with pytest.raises(Exception):
            main(["evaluate", str(directory)])  # strict load fails fast
        code = main(["evaluate", str(directory), "--lenient"])
        assert code == 0
        captured = capsys.readouterr()
        assert "quarantined" in captured.err
        assert (directory / "quarantine.jsonl").exists()
