"""Tests for normalisation, tokenisation and acronym handling."""

from hypothesis import given
from hypothesis import strategies as st

from repro.similarity.tokens import (
    acronym_of,
    expand_whitespace,
    is_acronym_of,
    normalize,
    strip_accents,
    token_counts,
    tokenize,
)


class TestNormalize:
    def test_accents(self):
        assert strip_accents("Müller-Gärtner") == "Muller-Gartner"
        assert strip_accents("José") == "Jose"

    def test_whitespace(self):
        assert expand_whitespace("  a \t b\n c ") == "a b c"

    def test_normalize_keeps_punctuation(self):
        assert normalize("Stonebraker, M.") == "stonebraker, m."

    @given(st.text(max_size=30))
    def test_normalize_idempotent(self, text):
        assert normalize(normalize(text)) == normalize(text)


class TestTokenize:
    def test_alnum_tokens(self):
        assert tokenize("Query-Processing (2nd ed.)") == [
            "query",
            "processing",
            "2nd",
            "ed",
        ]

    def test_stopwords(self):
        assert tokenize("the art of computer programming", drop_stopwords=True) == [
            "art",
            "computer",
            "programming",
        ]

    def test_counts(self):
        counts = token_counts("data data base")
        assert counts["data"] == 2
        assert counts["base"] == 1

    @given(st.text(max_size=30))
    def test_tokens_are_lowercase_alnum(self, text):
        for token in tokenize(text):
            assert token == token.lower()
            assert token.isalnum()


class TestAcronyms:
    def test_acronym_of(self):
        assert acronym_of("Very Large Data Bases") == "vldb"
        assert acronym_of("ACM Conference on Management of Data") == "acmd"

    def test_is_acronym_full_cover(self):
        assert is_acronym_of("vldb", "Very Large Data Bases")
        assert is_acronym_of("sosp", "Symposium on Operating Systems Principles")

    def test_is_acronym_with_brand_prefix_skip(self):
        assert is_acronym_of("icde", "IEEE International Conference on Data Engineering")
        assert is_acronym_of("vldb", "International Conference on Very Large Data Bases")

    def test_loose_subsequences_rejected(self):
        # "acm" is NOT an acronym of a phrase merely containing a..c..m
        # initials somewhere.
        assert not is_acronym_of("acm", "Proceedings of the ACM Conference on Management of Data")
        assert not is_acronym_of("kdd", "Knowledge Discovery and Dissemination Domains Extra")

    def test_too_short(self):
        assert not is_acronym_of("ab", "Aardvark Breeding")
        assert not is_acronym_of("x", "X-rays")

    def test_multi_token_candidate_rejected(self):
        assert not is_acronym_of("very large", "Very Large Data Bases")
