"""Tests for the PIM and Cora domain models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.domains import CoraDomainModel, PimDomainModel
from repro.domains.base import max_of_profiles
from repro.domains.pim import _person_conflict


@pytest.fixture(scope="module")
def pim():
    return PimDomainModel()


@pytest.fixture(scope="module")
def cora():
    return CoraDomainModel()


class TestWiring:
    def test_pim_channels(self, pim):
        names = {c.name for c in pim.atomic_channels("Person")}
        assert names == {"name", "email", "name_email"}
        cross = next(c for c in pim.atomic_channels("Person") if c.name == "name_email")
        assert cross.is_cross
        key = next(c for c in pim.atomic_channels("Person") if c.name == "email")
        assert key.is_key

    def test_cora_person_has_name_only(self, cora):
        assert {c.name for c in cora.atomic_channels("Person")} == {"name"}

    def test_strong_dependencies(self, pim):
        deps = {(d.source_class, d.target_class) for d in pim.strong_dependencies()}
        assert deps == {("Article", "Person"), ("Article", "Venue")}
        venue_dep = next(
            d for d in pim.strong_dependencies() if d.target_class == "Venue"
        )
        assert venue_dep.ensure_target_nodes

    def test_weak_dependencies(self, pim, cora):
        (pim_weak,) = pim.weak_dependencies()
        assert set(pim_weak.attrs) == {"coAuthor", "emailContact"}
        (cora_weak,) = cora.weak_dependencies()
        assert set(cora_weak.attrs) == {"coAuthor"}

    def test_paper_parameters(self, pim):
        for class_name in ("Person", "Article", "Venue"):
            assert pim.merge_threshold(class_name) == 0.85
            assert pim.gamma(class_name) == 0.05
        assert pim.beta("Venue") == 0.2
        assert pim.beta("Person") == 0.1
        assert pim.t_rv("Venue") == 0.1
        assert pim.t_rv("Person") == 0.7

    def test_class_order_values_before_dependents(self, pim):
        order = pim.class_order()
        assert order.index("Venue") < order.index("Article")
        assert order.index("Person") < order.index("Article")


class TestRvScores:
    def test_missing_channels_skip_profiles(self, pim):
        assert pim.rv_score("Person", {}) == 0.0
        assert pim.rv_score("Person", {"name": 0.9}) == pytest.approx(0.9)

    def test_cross_profile(self, pim):
        score = pim.rv_score("Person", {"name": 0.72, "name_email": 0.9})
        assert score == pytest.approx(0.4 * 0.72 + 0.6 * 0.9)

    def test_article_needs_title(self, pim):
        assert pim.rv_score("Article", {"pages": 1.0, "authors": 1.0}) == 0.0
        assert pim.rv_score("Article", {"title": 1.0, "pages": 1.0}) == 1.0

    @given(
        st.dictionaries(
            st.sampled_from(["name", "email", "name_email"]),
            st.floats(0, 1),
            max_size=3,
        ),
        st.sampled_from(["name", "email", "name_email"]),
        st.floats(0, 0.3),
    )
    @settings(max_examples=60)
    def test_monotone_in_every_channel(self, pim, evidence, channel, bump):
        """§3.2's termination requirement: raising any input never
        lowers S_rv."""
        before = pim.rv_score("Person", evidence)
        raised = dict(evidence)
        raised[channel] = min(1.0, raised.get(channel, 0.0) + bump)
        after = pim.rv_score("Person", raised)
        assert after >= before - 1e-12

    def test_max_of_profiles_bounds(self):
        profiles = ((("a", 0.7), ("b", 0.5)),)
        assert max_of_profiles({"a": 1.0, "b": 1.0}, profiles) == 1.0  # clipped


class TestConflicts:
    def test_constraint2_name_conflict(self, pim):
        left = {"name": ("Michael Stonebraker",)}
        right = {"name": ("Michael Carey",)}
        assert pim.conflict("Person", left, right)

    def test_constraint2_shared_email_escape(self, pim):
        left = {"name": ("Michael Stonebraker",), "email": ("m@x.edu",)}
        right = {"name": ("Michael Carey",), "email": ("m@x.edu",)}
        assert not pim.conflict("Person", left, right)

    def test_constraint3_same_server_different_accounts(self, pim):
        left = {"email": ("jsmith@cs.washington.edu",)}
        right = {"email": ("john.smith27@cs.washington.edu",)}
        assert pim.conflict("Person", left, right)

    def test_constraint3_webmail_exempt(self, pim):
        left = {"email": ("jsmith@gmail.com",)}
        right = {"email": ("john.smith@gmail.com",)}
        assert not pim.conflict("Person", left, right)

    def test_constraint3_typo_tolerated(self, pim):
        left = {"email": ("stonebraker@mit.edu",)}
        right = {"email": ("stonebroker@mit.edu",)}
        assert not pim.conflict("Person", left, right)

    def test_non_person_never_conflicts(self, pim):
        assert not pim.conflict("Venue", {"name": ("A",)}, {"name": ("B",)})

    def test_person_conflict_helper_symmetric(self):
        left = {"name": ("Michael Stonebraker",)}
        right = {"name": ("Michael Carey",)}
        assert _person_conflict(left, right) == _person_conflict(right, left)


class TestDistinctPairs:
    def test_coauthors_of_one_article(self, pim, example1_store):
        pairs = set(pim.distinct_pairs(example1_store))
        assert ("p1", "p2") in pairs
        assert ("p4", "p6") in pairs
        assert all(left != right for left, right in pairs)
        # 2 articles x C(3,2) author pairs.
        assert len(pairs) == 6

    def test_cora_distinct_pairs(self, cora):
        from repro.core import Reference

        refs = [
            Reference("p1", "Person", {"name": ("A. B.",)}),
            Reference("p2", "Person", {"name": ("C. D.",)}),
            Reference(
                "a1", "Article", {"title": ("T",), "authoredBy": ("p1", "p2")}
            ),
        ]
        assert list(cora.distinct_pairs(refs)) == [("p1", "p2")]


class TestKeysAndGates:
    def test_person_key_values(self, pim):
        from repro.core import Reference

        ref = Reference("r", "Person", {"email": ("A@B.edu", "not an email")})
        assert list(pim.key_values(ref)) == ["em:a@b.edu"]

    def test_venue_key_values(self, pim):
        from repro.core import Reference

        ref = Reference("v", "Venue", {"name": ("ACM  SIGMOD!",)})
        assert list(pim.key_values(ref)) == ["vn:acm sigmod"]

    def test_boolean_gate_requires_structure_or_cross(self, pim):
        bare = {"name": ("ping",)}
        structured = {"name": ("Ping Luo",)}
        assert pim.boolean_evidence_allowed("Person", structured, structured)
        assert not pim.boolean_evidence_allowed("Person", bare, structured)
        # A surname-encoding account opens the gate.
        with_email = {"name": ("mike",), "email": ("stonebraker@csail.mit.edu",)}
        other = {"name": ("Stonebraker, M.",)}
        assert pim.boolean_evidence_allowed("Person", with_email, other)
