"""The merge-provenance audit log and `explain` replay.

Every merge / non-merge decision the engine takes must leave a
:class:`DecisionRecord` carrying the evidence at decision time, the
records must round-trip through JSONL against the schema, and
:func:`explain_merge` must answer from those records — matching the
live decisions exactly.
"""

import json

import pytest

from repro.core import EngineConfig, Reconciler, ReferenceStore
from repro.core.explain import explain_merge
from repro.domains import PimDomainModel
from repro.obs import (
    DecisionRecord,
    ProvenanceLog,
    SchemaError,
    Telemetry,
    validate_decision,
    validate_provenance_jsonl,
)
from repro.obs.provenance import DECISIONS, MERGE, TRIGGERS

from .conftest import example1_references


@pytest.fixture(scope="module")
def audited():
    """One engine run over Example 1 with a provenance log attached."""
    domain = PimDomainModel()
    store = ReferenceStore(domain.schema, example1_references())
    telemetry = Telemetry.enabled(provenance=True)
    engine = Reconciler(store, domain, EngineConfig(), telemetry=telemetry)
    engine.run()
    return engine


@pytest.fixture(scope="module")
def audited_pim():
    """An audited run over a generated dataset, which — unlike Example 1,
    where propagation eventually reconciles every deferred pair — leaves
    some pairs genuinely apart."""
    from repro.datasets import generate_pim_dataset

    dataset = generate_pim_dataset("A", scale=0.15)
    telemetry = Telemetry.enabled(provenance=True)
    engine = Reconciler(
        dataset.store, PimDomainModel(), EngineConfig(), telemetry=telemetry
    )
    engine.run()
    return engine


class TestDecisionRecords:
    def test_every_decision_validates(self, audited):
        prov = audited.telemetry.provenance
        assert len(prov) > 0
        for record in prov.records:
            validate_decision(record.to_dict())
            assert record.decision in DECISIONS
            assert record.trigger in TRIGGERS

    def test_merges_and_non_merges_are_both_audited(self, audited):
        prov = audited.telemetry.provenance
        assert prov.merged_pairs()
        assert prov.non_merged_pairs()
        # The engine's own counter and the audit log must agree.
        merge_records = [r for r in prov.records if r.decision == MERGE]
        assert len(merge_records) == audited.stats.merges

    def test_merge_record_carries_decision_time_evidence(self, audited):
        prov = audited.telemetry.provenance
        record = prov.merge_record("p2", "p5")  # Stonebraker, via propagation
        if record is None:  # enrich mode may key the node by roots
            pairs = [r for r in prov.records if r.decision == MERGE]
            record = pairs[0]
        assert record.score >= record.threshold
        assert record.channels  # at least one attribute channel scored
        assert record.trigger in TRIGGERS

    def test_propagated_merges_record_their_trigger(self, audited):
        prov = audited.telemetry.provenance
        triggers = {r.trigger for r in prov.records}
        # Example 1 is the paper's propagation showcase: some decision
        # must have been (re)activated by a strong/weak/real edge.
        assert triggers - {"seed"}

    def test_sequence_is_strictly_increasing(self, audited):
        seqs = [r.seq for r in audited.telemetry.provenance.records]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_jsonl_roundtrip(self, audited, tmp_path):
        prov = audited.telemetry.provenance
        path = prov.to_jsonl(tmp_path / "prov.jsonl")
        assert validate_provenance_jsonl(path) == len(prov)
        restored = ProvenanceLog.from_jsonl(path)
        assert [r.to_dict() for r in restored.records] == [
            r.to_dict() for r in prov.records
        ]
        # The pair index survives the round trip.
        for left, right in prov.merged_pairs():
            assert restored.merge_record(left, right) is not None

    def test_streaming_jsonl_matches_in_memory(self, tmp_path):
        domain = PimDomainModel()
        store = ReferenceStore(domain.schema, example1_references())
        path = tmp_path / "stream.jsonl"
        telemetry = Telemetry.enabled(provenance=True, provenance_path=path)
        Reconciler(store, domain, EngineConfig(), telemetry=telemetry).run()
        telemetry.close()
        prov = telemetry.provenance
        streamed = [json.loads(line) for line in path.read_text().splitlines()]
        assert streamed == [r.to_dict() for r in prov.records]

    def test_bad_record_rejected(self):
        record = DecisionRecord(
            seq=0, pair=("a", "b"), class_name="Person", decision="merge",
            score=0.9, threshold=0.8, s_rv=0.9, t_rv=0.8,
            strong_support=0, weak_support=0, channels={}, trigger="seed",
            trigger_pair=None, recompute_index=0,
        )
        data = record.to_dict()
        validate_decision(data)
        with pytest.raises(SchemaError):
            validate_decision({**data, "decision": "coin_flip"})
        with pytest.raises(SchemaError):
            validate_decision({**data, "trigger": "astrology"})


class TestExplainReplay:
    def test_merged_pair_replays_its_record(self, audited):
        prov = audited.telemetry.provenance
        left, right = prov.merged_pairs()[0]
        explanation = explain_merge(audited, left, right)
        assert explanation.connected
        replayed = [step for step in explanation.steps if step.from_record]
        assert replayed, "no step replayed from the audit log"
        for step in replayed:
            record = prov.merge_record(step.left, step.right)
            assert record is not None
            assert step.score == record.score
            assert step.strong_support == record.strong_support
            assert step.weak_support == record.weak_support
            assert step.trigger == record.trigger
        assert "[replayed from decision record]" in explanation.describe()

    def test_non_merged_pair_reports_last_decision(self, audited_pim):
        prov = audited_pim.telemetry.provenance
        found = None
        for left, right in prov.non_merged_pairs():
            if not audited_pim.uf.connected(left, right):
                found = (left, right)
                break
        assert found is not None
        explanation = explain_merge(audited_pim, *found)
        assert not explanation.connected
        last = explanation.last_decision
        assert last is not None
        assert last["decision"] != "merge"
        assert last["score"] == prov.last_decision(*found).score
        text = explanation.describe()
        assert "NOT reconciled" in text
        assert "last decision" in text

    def test_replay_matches_live_decision_scores(self, audited):
        """Replayed chains agree with a fresh unaudited run's outcome."""
        domain = PimDomainModel()
        store = ReferenceStore(domain.schema, example1_references())
        live = Reconciler(store, domain, EngineConfig())
        live.run()
        assert live.uf.connected("p2", "p5")
        replayed = explain_merge(audited, "p2", "p5")
        fresh = explain_merge(live, "p2", "p5")
        assert replayed.connected == fresh.connected
        # Same chain of pairs, whatever the evidence source.
        assert [(s.left, s.right) for s in replayed.steps] == [
            (s.left, s.right) for s in fresh.steps
        ]

    def test_without_provenance_explain_still_works(self):
        domain = PimDomainModel()
        store = ReferenceStore(domain.schema, example1_references())
        engine = Reconciler(store, domain, EngineConfig())
        engine.run()
        explanation = explain_merge(engine, "p2", "p5")
        assert explanation.connected
        assert all(not step.from_record for step in explanation.steps)
        assert explain_merge(engine, "p1", "c1").last_decision is None


class TestActivationBookkeeping:
    def test_take_activation_defaults_to_seed(self):
        prov = ProvenanceLog()
        assert prov.take_activation(("x", "y")) == ("seed", None)

    def test_note_then_take_consumes_the_cause(self):
        prov = ProvenanceLog()
        prov.note_activation(("x", "y"), "strong", ("a", "b"))
        assert prov.take_activation(("x", "y")) == ("strong", ("a", "b"))
        assert prov.take_activation(("x", "y")) == ("seed", None)
