"""Golden byte-stability for the text renderers: the --stats block,
degradation and quarantine notices, and the diff text must render the
exact same bytes for the same inputs, run after run."""

from types import SimpleNamespace

from repro.core import EngineConfig, Reconciler
from repro.core.engine import EngineStats
from repro.datasets import generate_pim_dataset
from repro.domains import PimDomainModel
from repro.obs import (
    render_degradations,
    render_diff,
    render_quarantine,
    render_stats,
)
from repro.obs.diffing import DiffVerdict, diff_runs
from repro.runtime.guards import DegradationEvent
from repro.similarity import clear_similarity_caches

STATS_GOLDEN = """\
engine stats:
  build 1.25s, iterate 0.50s (workers=1)
  candidate_pairs=120 pair_nodes=80 value_nodes=40 graph_nodes=120
  recomputations=150 merges=30 non_merges=50 fusions=4
  cache effectiveness:
    values cache   62.5% (5/8)
    contacts cache n/a
    feature cache  50.0% (2/4)
    pair-score memo 75.0% (3/4), prefilter skips 7"""


def _stats():
    return EngineStats(
        build_seconds=1.25,
        iterate_seconds=0.5,
        parallel_workers=1,
        candidate_pairs=120,
        pair_nodes=80,
        value_nodes=40,
        graph_nodes=120,
        recomputations=150,
        merges=30,
        non_merges=50,
        fusions=4,
        values_cache_hits=5,
        values_cache_misses=3,
        feature_cache_hits=2,
        feature_cache_misses=2,
        pair_memo_hits=3,
        pair_memo_misses=1,
        prefilter_skips=7,
    )


class TestGoldenText:
    def test_stats_golden(self):
        assert render_stats(_stats()) == STATS_GOLDEN
        assert render_stats(_stats()) == render_stats(_stats())

    def test_degradations_golden(self):
        clean = SimpleNamespace(completed=True, stop_reason="converged", degradations=[])
        assert render_degradations(clean) == ""
        degraded = SimpleNamespace(
            completed=False,
            stop_reason="budget",
            degradations=[
                DegradationEvent(kind="deadline", detail="wall clock exceeded 10s"),
                DegradationEvent(kind="recompute_cap", detail="hit 150 recomputations"),
            ],
        )
        assert render_degradations(degraded) == (
            "run degraded: stop_reason=budget\n"
            "  [deadline] wall clock exceeded 10s\n"
            "  [recompute_cap] hit 150 recomputations"
        )

    def test_quarantine_golden(self):
        assert render_quarantine([]) == ""
        assert render_quarantine([1, 2, 3]) == (
            "quarantined 3 bad records (see quarantine.jsonl)"
        )

    def test_empty_diff_golden(self):
        verdict = DiffVerdict(
            run_a="a",
            run_b="b",
            datasets=("PIM B", "PIM B"),
            config_changes=[],
            partition_changed=False,
            quality_regressions=[],
            quality_improvements=[],
            flipped_pairs=[],
            flips_total=0,
            phase_regressions=[],
            new_degradations=[],
            completed_regression=False,
        )
        assert render_diff(verdict) == (
            "run diff: a vs b\n"
            "  datasets: PIM B\n"
            "  partition: identical\n"
            "  quality: unchanged\n"
            "  flipped merge decisions: none\n"
            "  verdict: clean"
        )


class TestCrossRunStability:
    def test_stats_stable_across_identical_runs(self):
        """Two cold runs over the same dataset render the same --stats
        block once wall-clock is pinned — every counter and cache rate
        is deterministic."""
        texts = []
        for _ in range(2):
            clear_similarity_caches()
            dataset = generate_pim_dataset("A", scale=0.15)
            engine = Reconciler(dataset.store, PimDomainModel(), EngineConfig())
            engine.run()
            engine.stats.build_seconds = 1.0
            engine.stats.iterate_seconds = 1.0
            texts.append(render_stats(engine.stats))
        assert texts[0] == texts[1]

    def test_diff_text_stable_across_recomputation(self):
        manifests = []
        for _ in range(2):
            clear_similarity_caches()
            dataset = generate_pim_dataset("A", scale=0.15)
            engine = Reconciler(dataset.store, PimDomainModel(), EngineConfig())
            engine.attach_convergence(dataset.gold.entity_of, every=25)
            from repro.obs import build_manifest

            manifests.append(
                build_manifest(
                    dataset=dataset, reconciler=engine, result=engine.run()
                )
            )
        texts = {
            render_diff(diff_runs(manifests[0], manifests[1])) for _ in range(2)
        }
        assert len(texts) == 1
        assert texts.pop().endswith("verdict: clean")
