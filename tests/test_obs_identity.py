"""Telemetry must be strictly observational.

The contract: a run with every sink attached produces the *same*
partition (and the same engine counters) as a run with the null
telemetry, on every benchmark dataset; telemetry state never enters
checkpoints; and a resumed run append-continues the original event
log instead of clobbering it.
"""

import json

import pytest

from repro.core import EngineConfig, Reconciler
from repro.datasets import generate_cora_dataset, generate_pim_dataset
from repro.datasets.cora import CoraConfig
from repro.domains import CoraDomainModel, PimDomainModel
from repro.obs import NULL_TELEMETRY, Telemetry, validate_event_log
from repro.runtime import Checkpointer, CrashAtStep, InjectedFault
from repro.runtime.checkpoint import engine_state
from repro.similarity import clear_similarity_caches


def _dataset(name):
    if name == "cora":
        return (
            generate_cora_dataset(
                CoraConfig(n_papers=30, n_citations=260, n_authors=60, n_venues=12)
            ),
            CoraDomainModel,
        )
    return generate_pim_dataset(name, scale=0.15), PimDomainModel


def _run(dataset, domain_factory, telemetry=None):
    # Fresh domain per run: the feature cache lives on the domain model
    # and its counters are cumulative, so sharing one across runs would
    # make the second run's stats look inflated.
    clear_similarity_caches()
    engine = Reconciler(
        dataset.store, domain_factory(), EngineConfig(), telemetry=telemetry
    )
    return engine, engine.run()


@pytest.mark.parametrize("name", ["A", "B", "C", "D", "cora"])
def test_partition_identical_with_all_sinks_attached(name, tmp_path):
    dataset, domain_factory = _dataset(name)
    _, baseline = _run(dataset, domain_factory)
    telemetry = Telemetry.enabled(
        log_path=tmp_path / "events.jsonl",
        log_level="debug",
        trace=True,
        metrics=True,
        provenance=True,
        provenance_path=tmp_path / "prov.jsonl",
    )
    engine, observed = _run(dataset, domain_factory, telemetry=telemetry)
    telemetry.close()
    assert observed.partitions == baseline.partitions
    # The sinks actually saw the run — this was not a no-op telemetry.
    assert validate_event_log(tmp_path / "events.jsonl") > 0
    assert len(telemetry.tracer.spans) > 0
    assert len(telemetry.provenance) > 0
    assert "repro_merges_total" in telemetry.metrics


@pytest.mark.parametrize("name", ["A", "B", "C", "D", "cora"])
def test_parallel_run_identical_with_full_observability(name, tmp_path):
    """The PR-8 contract: every observer at once — all four sinks, the
    cross-process relay (implied by workers + telemetry), the sampling
    profiler and the live HUD — on a parallel engine, and the partition
    still matches a bare serial run."""
    import io

    from repro.obs.live import LiveHud
    from repro.obs.profile import SamplingProfiler

    dataset, domain_factory = _dataset(name)
    _, baseline = _run(dataset, domain_factory)
    clear_similarity_caches()
    telemetry = Telemetry.enabled(
        log_path=tmp_path / "events.jsonl",
        log_level="debug",
        trace=True,
        metrics=True,
        provenance=True,
        provenance_path=tmp_path / "prov.jsonl",
    )
    config = EngineConfig(workers=2, iterate_workers=2, iterate_batch=16)
    engine = Reconciler(
        dataset.store, domain_factory(), config, telemetry=telemetry
    )
    hud = LiveHud(io.StringIO(), interval=0.0)
    with SamplingProfiler(interval=0.005):
        result = engine.run(step_hook=hud.step_hook)
    hud.close()
    telemetry.close()
    assert result.partitions == baseline.partitions
    # The relay actually engaged: the build's scoring ran in workers.
    assert engine._relay is not None
    assert engine._relay.payloads > 0


def test_counters_identical_with_and_without_telemetry(tiny_pim_a):
    plain, plain_result = _run(tiny_pim_a, PimDomainModel)
    telemetry = Telemetry.enabled(trace=True, metrics=True, provenance=True)
    observed, observed_result = _run(tiny_pim_a, PimDomainModel, telemetry=telemetry)
    assert observed_result.partitions == plain_result.partitions
    # Every counter — wall-clock aside — must match exactly, including
    # cache hits/misses, which an intrusive capture path would perturb.
    plain.stats.build_seconds = observed.stats.build_seconds = 0.0
    plain.stats.iterate_seconds = observed.stats.iterate_seconds = 0.0
    assert observed.stats == plain.stats


def test_default_engine_shares_the_null_singleton(tiny_pim_a):
    engine = Reconciler(tiny_pim_a.store, PimDomainModel(), EngineConfig())
    assert engine.telemetry is NULL_TELEMETRY
    assert engine.telemetry.active is False


def test_engine_state_carries_no_telemetry(tiny_pim_a):
    """Checkpoint payloads are identical with telemetry on or off."""
    plain, _ = _run(tiny_pim_a, PimDomainModel)
    telemetry = Telemetry.enabled(trace=True, metrics=True, provenance=True)
    observed, _ = _run(tiny_pim_a, PimDomainModel, telemetry=telemetry)

    def canonical(engine):
        state = engine_state(engine)
        # Wall-clock is legitimately different between the two runs;
        # everything else — counters included — must match to the byte.
        state["stats"]["build_seconds"] = 0.0
        state["stats"]["iterate_seconds"] = 0.0
        return json.dumps(state, sort_keys=True)

    assert canonical(observed) == canonical(plain)


def test_resume_append_continues_the_event_log(tmp_path):
    dataset, domain_factory = _dataset("A")
    log_path = tmp_path / "events.jsonl"
    checkpointer = Checkpointer(tmp_path, every=1)

    clear_similarity_caches()
    telemetry = Telemetry.enabled(log_path=log_path, log_level="debug")
    engine = Reconciler(
        dataset.store, domain_factory(), EngineConfig(), telemetry=telemetry
    )
    with pytest.raises(InjectedFault):
        engine.run(checkpointer=checkpointer, step_hook=CrashAtStep(5))
    telemetry.close()
    events_before_crash = validate_event_log(log_path)
    assert events_before_crash > 0

    resumed = Reconciler.resume(
        checkpointer.path,
        store=dataset.store,
        domain=domain_factory(),
        telemetry=Telemetry.enabled(log_path=log_path, log_level="debug"),
    )
    result = resumed.run()
    resumed.telemetry.close()

    clear_similarity_caches()
    uninterrupted = Reconciler(dataset.store, domain_factory(), EngineConfig()).run()
    assert result.partitions == uninterrupted.partitions

    events = [
        json.loads(line) for line in log_path.read_text().splitlines()
    ]
    assert len(events) > events_before_crash  # appended, not truncated
    names = [event["event"] for event in events]
    assert "resume" in names
    # The crashed run's events survive in front of the resumed run's.
    assert names.index("resume") >= events_before_crash - 1
    assert validate_event_log(log_path) == len(events)


def test_null_sink_overhead_smoke(tiny_pim_a):
    """The disabled path must not be grossly slower than the seed engine.

    A wall-clock ratio test on shared CI hardware would flake; instead
    assert the structural property that makes overhead impossible: the
    null telemetry is inert (``active`` False) and the engine consults
    that one flag, so the iterate loop takes the uninstrumented branch.
    """
    import time

    domain = PimDomainModel()
    clear_similarity_caches()
    start = time.perf_counter()
    engine = Reconciler(tiny_pim_a.store, domain, EngineConfig())
    engine.run()
    plain_seconds = time.perf_counter() - start
    assert engine.telemetry.active is False
    # Generous ceiling: catches a pathological regression (e.g. telemetry
    # accidentally enabled by default), not micro-variance.
    clear_similarity_caches()
    start = time.perf_counter()
    telemetry = Telemetry.enabled(trace=True, metrics=True)
    Reconciler(
        tiny_pim_a.store, domain, EngineConfig(), telemetry=telemetry
    ).run()
    instrumented_seconds = time.perf_counter() - start
    assert instrumented_seconds < max(plain_seconds * 5, plain_seconds + 5.0)
